//! The `serve` binary: answer JSON-lines prediction requests over
//! stdin/stdout or TCP, hosting one or more registry-loaded models
//! behind one front door.
//!
//! ```text
//! serve --registry DIR --model SPEC [--model SPEC ...]
//!       [--default-model NAME] [--workers N] [--cache-mb N]
//!       [--precision f64|f32]
//!       [--model-quota NAME=K ...] [--workload-file PATH]
//!       [--tcp ADDR] [--max-conns N] [--reactor-threads N]
//!       [--shard-id N] [--cache-snapshot PATH]
//! serve --registry DIR --list
//! ```
//!
//! Each `--model SPEC` adds one model to the catalog: `NAME` serves the
//! registry entry `NAME` under that name, `ALIAS=NAME` serves it under
//! `ALIAS`, and `ALIAS=PATH` (any value with a path separator or an
//! `.atlas.json` suffix) loads an explicit model file. The first spec is
//! the default model unless `--default-model` picks another. Requests
//! route by their optional `model` field; see `docs/PROTOCOL.md` for the
//! full wire reference.
//!
//! The catalog is only the *starting* set: the `load_model` and
//! `unload_model` verbs add and remove hosted models at runtime.
//! `--model-quota NAME=K` caps how many workers model `NAME`'s cold
//! (uncached) requests may occupy at once — models without a flag share
//! the pool fairly (`workers / hosted models`). `--workload-file PATH`
//! makes the `register_workload` library durable: registrations append
//! to the JSON-lines journal and are replayed at the next startup.
//! `--precision f32` runs every hosted model's encoder at reduced
//! precision: embeddings cost half the bytes, so the same `--cache-mb`
//! budget holds twice the traces, at the f32 accuracy delta instead of
//! bit parity.
//!
//! In stdio mode each stdin line is a request and each stdout line the
//! matching response; EOF shuts the service down. In TCP mode
//! `--reactor-threads N` epoll reactor threads (default 1) multiplex
//! every connection — each with its own `SO_REUSEPORT` listener where
//! the kernel allows it — so the whole process runs on
//! `--workers + N + 1` OS threads regardless of connection count.
//!
//! `--shard-id N` stamps this process's identity in a shard fleet into
//! its stats and snapshots (requests route through the `atlas-shard`
//! proxy; see `docs/ARCHITECTURE.md`). `--cache-snapshot PATH` warm-starts
//! the embedding cache: the file is restored (entry-by-entry validated,
//! never fatal) before serving and rewritten when the process drains.

use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::Arc;

use atlas_core::Precision;
use atlas_serve::reactor::{ReactorConfig, ReactorPool};
use atlas_serve::{
    protocol, AtlasService, ModelCatalog, ModelRegistry, RequestLine, ServiceConfig,
};

struct Args {
    registry: String,
    models: Vec<String>,
    default_model: Option<String>,
    list: bool,
    workers: usize,
    cache_mb: usize,
    precision: Precision,
    tcp: Option<String>,
    max_conns: usize,
    reactor_threads: usize,
    shard_id: Option<u32>,
    cache_snapshot: Option<String>,
    model_quotas: Vec<(String, usize)>,
    workload_file: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        registry: String::new(),
        models: Vec::new(),
        default_model: None,
        list: false,
        workers: 4,
        cache_mb: 256,
        precision: Precision::F64,
        tcp: None,
        max_conns: ReactorConfig::default().max_connections,
        reactor_threads: 1,
        shard_id: None,
        cache_snapshot: None,
        model_quotas: Vec::new(),
        workload_file: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--registry" => args.registry = value("--registry")?,
            "--model" => args.models.push(value("--model")?),
            "--default-model" => args.default_model = Some(value("--default-model")?),
            "--list" => args.list = true,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--cache-mb" => {
                args.cache_mb = value("--cache-mb")?
                    .parse()
                    .map_err(|e| format!("--cache-mb: {e}"))?;
            }
            "--model-quota" => {
                let spec = value("--model-quota")?;
                let (name, k) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--model-quota `{spec}`: expected NAME=K"))?;
                let k: usize = k
                    .parse()
                    .map_err(|e| format!("--model-quota {name}: {e}"))?;
                args.model_quotas.push((name.to_owned(), k));
            }
            "--precision" => {
                args.precision = value("--precision")?
                    .parse()
                    .map_err(|e| format!("--precision: {e}"))?;
            }
            "--workload-file" => args.workload_file = Some(value("--workload-file")?),
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--max-conns" => {
                args.max_conns = value("--max-conns")?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?;
            }
            "--reactor-threads" => {
                args.reactor_threads = value("--reactor-threads")?
                    .parse()
                    .map_err(|e| format!("--reactor-threads: {e}"))?;
                if args.reactor_threads == 0 {
                    return Err("--reactor-threads must be positive".into());
                }
            }
            "--shard-id" => {
                args.shard_id = Some(
                    value("--shard-id")?
                        .parse()
                        .map_err(|e| format!("--shard-id: {e}"))?,
                );
            }
            "--cache-snapshot" => args.cache_snapshot = Some(value("--cache-snapshot")?),
            "--help" | "-h" => {
                println!(
                    "usage: serve --registry DIR (--model SPEC [--model SPEC ...] \
                     [--default-model NAME] [--workers N] [--cache-mb N] \
                     [--precision f64|f32] \
                     [--model-quota NAME=K ...] [--workload-file PATH] \
                     [--tcp ADDR] [--max-conns N] [--reactor-threads N] \
                     [--shard-id N] [--cache-snapshot PATH] | --list)\n\
                     SPEC is NAME, ALIAS=NAME, or ALIAS=PATH (an .atlas.json file)\n\
                     --precision f32 halves embedding bytes (the --cache-mb budget \
                     holds twice the traces) at the f32 accuracy delta\n\
                     --model-quota caps workers tied up in NAME's cold requests \
                     (default: workers / hosted models)\n\
                     --workload-file journals register_workload calls and replays \
                     them at startup\n\
                     --reactor-threads runs N epoll reactors with SO_REUSEPORT \
                     listeners (TCP mode)\n\
                     --shard-id stamps this process's shard identity into stats \
                     and snapshots\n\
                     --cache-snapshot restores the embedding cache at startup and \
                     rewrites it on drain"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.registry.is_empty() {
        return Err("--registry is required".into());
    }
    if !args.list && args.models.is_empty() {
        return Err("either --model SPEC or --list is required".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let registry = match ModelRegistry::open(&args.registry) {
        Ok(registry) => registry,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.list {
        match registry.list() {
            Ok(names) => {
                for name in names {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Assemble the catalog: every --model spec is validated (format
    // version + config fingerprint) before the service starts.
    let mut catalog = ModelCatalog::new();
    for spec in &args.models {
        match catalog.load_spec(&registry, spec) {
            Ok(name) => eprintln!("loaded model `{name}` (from `{spec}`)"),
            Err(e) => {
                eprintln!("error: --model {spec}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(name) = &args.default_model {
        if let Err(e) = catalog.set_default(name) {
            eprintln!("error: --default-model {name}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let service = match AtlasService::start_catalog(
        catalog,
        ServiceConfig {
            workers: args.workers,
            embedding_cache_bytes: args.cache_mb.saturating_mul(1 << 20),
            precision: args.precision,
            model_quotas: args.model_quotas.iter().cloned().collect(),
            workload_file: args.workload_file.as_ref().map(Into::into),
            shard_id: args.shard_id,
            ..ServiceConfig::default()
        },
    ) {
        Ok(service) => Arc::new(service),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let hosted: Vec<String> = service.models().into_iter().map(|m| m.name).collect();
    eprintln!(
        "serving {} model(s) [{}] (default `{}`) with {} workers at {} precision",
        hosted.len(),
        hosted.join(", "),
        service.default_model(),
        args.workers,
        args.precision,
    );

    // Warm start: re-admit a previous run's cache snapshot before the
    // first request arrives. Never fatal — a bad file is a cold start.
    if let Some(path) = &args.cache_snapshot {
        let report = service.restore_cache(path);
        eprintln!(
            "cache snapshot {path}: restored {} entries, skipped {}",
            report.restored, report.skipped,
        );
    }

    let code = match &args.tcp {
        Some(addr) => serve_tcp(
            Arc::clone(&service),
            addr,
            args.max_conns,
            args.reactor_threads,
        ),
        None => {
            serve_stdio(&service);
            ExitCode::SUCCESS
        }
    };

    // Drain: persist the warm cache so the next run of this shard can
    // answer its first repeat request without recomputing anything.
    if let Some(path) = &args.cache_snapshot {
        match service.snapshot_cache(path) {
            Ok(n) => eprintln!("cache snapshot {path}: wrote {n} entries"),
            Err(e) => eprintln!("error: {e}"),
        }
    }
    code
}

/// One request line → one response line (the synchronous stdio path; the
/// TCP path goes through the reactor instead).
fn answer(service: &AtlasService, line: &str) -> String {
    match protocol::parse_line(line) {
        Ok(RequestLine::Predict(request)) => {
            let id = request.id;
            protocol::render_result(&service.call(request).map_err(|e| (id, e)))
        }
        Ok(RequestLine::PredictDelta(request)) => {
            let id = request.id;
            protocol::render_delta_result(&service.call_delta(request).map_err(|e| (id, e)))
        }
        Ok(RequestLine::Sweep(request)) => answer_sweep(service, request),
        Ok(RequestLine::Stats { id }) => {
            protocol::render_stats(&protocol::stats_response(id, &service.stats()))
        }
        Ok(RequestLine::Models { id }) => protocol::render_line(&protocol::models_response(
            id,
            service.default_model(),
            service.models(),
        )),
        Ok(RequestLine::LoadModel(req)) => match service.load_model_file(&req.name, &req.path) {
            Ok(model) => protocol::render_line(&protocol::LoadModelResponse {
                id: req.id,
                verb: "load_model".to_owned(),
                model,
                default_model: service.default_model().to_owned(),
            }),
            Err(e) => protocol::render_result(&Err((req.id, e))),
        },
        Ok(RequestLine::UnloadModel(req)) => match service.unload_model(&req.name) {
            Ok(()) => protocol::render_line(&protocol::UnloadModelResponse {
                id: req.id,
                verb: "unload_model".to_owned(),
                name: req.name,
            }),
            Err(e) => protocol::render_result(&Err((req.id, e))),
        },
        Ok(RequestLine::Workloads { id }) => {
            protocol::render_line(&protocol::workloads_response(id, service.workloads()))
        }
        Ok(RequestLine::RegisterWorkload(req)) => {
            match service.register_workload(&req.name, req.phases) {
                Ok((workload, replaced)) => {
                    protocol::render_line(&protocol::RegisterWorkloadResponse {
                        id: req.id,
                        verb: "register_workload".to_owned(),
                        workload,
                        replaced,
                    })
                }
                Err(e) => protocol::render_result(&Err((req.id, e))),
            }
        }
        Ok(RequestLine::LoadDesign(req)) => match service.load_design(&req.name, &req.verilog) {
            Ok(design) => protocol::render_line(&protocol::LoadDesignResponse {
                id: req.id,
                verb: "load_design".to_owned(),
                design,
            }),
            Err(e) => protocol::render_result(&Err((req.id, e))),
        },
        Ok(RequestLine::ShardMap { id }) => protocol::render_line(&protocol::ShardMapResponse {
            id,
            verb: "shard_map".to_owned(),
            shard_id: service.shard_id(),
            shards: Vec::new(),
        }),
        Err(e) => protocol::render_result(&Err((protocol::salvage_id(line), e))),
    }
}

/// The stdio spelling of a `sweep`: the exact frames the TCP reactor
/// streams, joined into one multi-line response (stdio answers
/// synchronously, so the items run in order instead of fanning out).
fn answer_sweep(service: &AtlasService, request: protocol::SweepRequest) -> String {
    let invalid = |msg: String| {
        protocol::render_result(&Err((
            request.id,
            atlas_serve::ServeError::InvalidRequest(msg),
        )))
    };
    let items = request.items.len();
    if items == 0 {
        return invalid("a sweep needs at least one item".to_owned());
    }
    if items > protocol::MAX_SWEEP_ITEMS {
        return invalid(format!(
            "sweep has {items} items, limit is {}",
            protocol::MAX_SWEEP_ITEMS
        ));
    }
    let chunk = request
        .chunk_cycles
        .unwrap_or(protocol::DEFAULT_SERIES_CHUNK)
        .clamp(1, protocol::MAX_SERIES_CHUNK);
    let started = std::time::Instant::now();
    let mut frames = vec![protocol::render_line(&protocol::SweepStartFrame {
        id: request.id,
        verb: "sweep".to_owned(),
        frame: "start".to_owned(),
        items,
    })];
    let mut errors = 0usize;
    for (item, spec) in request.items.into_iter().enumerate() {
        let predict = protocol::PredictRequest {
            id: request.id,
            model: request.model.clone(),
            design: request.design.clone(),
            workload: spec.workload,
            workload_name: spec.workload_name,
            cycles: request.cycles,
            phases: spec.phases,
        };
        match service.call(predict) {
            Ok(response) => {
                frames.push(protocol::render_line(&protocol::SweepItemFrame {
                    id: request.id,
                    verb: "sweep".to_owned(),
                    frame: "item".to_owned(),
                    item,
                    workload: response.workload,
                    cache_hit: response.cache_hit,
                    design_cache_hit: response.design_cache_hit,
                    mean_total_w: response.mean_total_w,
                    peak_total_w: response.peak_total_w,
                    groups: response.groups,
                }));
                let series = response.per_cycle_total_w;
                let total_cycles = series.len();
                let mut offset = 0;
                while offset < total_cycles {
                    let end = (offset + chunk).min(total_cycles);
                    frames.push(protocol::render_line(&protocol::SweepSeriesFrame {
                        id: request.id,
                        verb: "sweep".to_owned(),
                        frame: "series".to_owned(),
                        item,
                        offset,
                        total_cycles,
                        per_cycle_total_w: series[offset..end].to_vec(),
                    }));
                    offset = end;
                }
            }
            Err(e) => {
                errors += 1;
                frames.push(protocol::render_line(&protocol::SweepErrorFrame {
                    id: request.id,
                    verb: "sweep".to_owned(),
                    frame: "error".to_owned(),
                    item,
                    error: e.to_string(),
                    kind: e.kind().to_owned(),
                }));
            }
        }
    }
    frames.push(protocol::render_line(&protocol::SweepEndFrame {
        id: request.id,
        verb: "sweep".to_owned(),
        frame: "end".to_owned(),
        items,
        errors,
        latency_ms: started.elapsed().as_secs_f64() * 1e3,
    }));
    frames.join("\n")
}

fn serve_stdio(service: &AtlasService) {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = answer(service, &line);
        let mut out = stdout.lock();
        let _ = writeln!(out, "{response}");
        let _ = out.flush();
    }
    let stats = service.stats();
    eprintln!(
        "served {} requests ({} errors); embedding cache {}/{} hits, {}/{} bytes",
        stats.requests,
        stats.errors,
        stats.embedding_cache.hits,
        stats.embedding_cache.hits + stats.embedding_cache.misses,
        stats.embedding_cache.weight,
        stats.embedding_cache.budget,
    );
    for m in &stats.models {
        eprintln!(
            "  model `{}`: {} requests, {} embeddings computed, cache {}/{} bytes",
            m.model,
            m.requests,
            m.embeddings_computed,
            m.embedding_cache.weight,
            m.embedding_cache.budget,
        );
    }
}

fn serve_tcp(service: Arc<AtlasService>, addr: &str, max_conns: usize, threads: usize) -> ExitCode {
    let pool = match ReactorPool::bind(
        service,
        addr,
        ReactorConfig {
            max_connections: max_conns,
            ..ReactorConfig::default()
        },
        threads,
    ) {
        Ok(pool) => pool,
        Err(e) => {
            eprintln!("error: bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "listening on {} ({} epoll reactor(s), {}, max {max_conns} connections each)",
        pool.local_addr(),
        threads,
        if pool.reuseport() {
            "SO_REUSEPORT"
        } else {
            "shared accept queue"
        },
    );
    let handle = match pool.spawn() {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: spawn reactors: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Main parks here; the process runs at workers + reactors + 1 OS
    // threads regardless of connection count.
    match handle.join() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: reactor: {e}");
            ExitCode::FAILURE
        }
    }
}
