//! The `serve` binary: answer JSON-lines prediction requests over
//! stdin/stdout or TCP from a registry-loaded model.
//!
//! ```text
//! serve --registry DIR --model NAME [--workers N] [--cache N] [--tcp ADDR]
//! serve --registry DIR --list
//! ```
//!
//! In stdio mode each stdin line is a request and each stdout line the
//! matching response; EOF shuts the service down. In TCP mode every
//! connection gets the same per-line protocol.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;

use atlas_serve::{protocol, AtlasService, ModelRegistry, ServiceConfig};

struct Args {
    registry: String,
    model: Option<String>,
    list: bool,
    workers: usize,
    cache: usize,
    tcp: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        registry: String::new(),
        model: None,
        list: false,
        workers: 4,
        cache: 32,
        tcp: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--registry" => args.registry = value("--registry")?,
            "--model" => args.model = Some(value("--model")?),
            "--list" => args.list = true,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--cache" => {
                args.cache = value("--cache")?
                    .parse()
                    .map_err(|e| format!("--cache: {e}"))?;
            }
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--help" | "-h" => {
                println!(
                    "usage: serve --registry DIR (--model NAME [--workers N] \
                     [--cache N] [--tcp ADDR] | --list)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.registry.is_empty() {
        return Err("--registry is required".into());
    }
    if !args.list && args.model.is_none() {
        return Err("either --model NAME or --list is required".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let registry = match ModelRegistry::open(&args.registry) {
        Ok(registry) => registry,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.list {
        match registry.list() {
            Ok(names) => {
                for name in names {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let name = args.model.as_deref().expect("checked in parse_args");
    let saved = match registry.load(name) {
        Ok(saved) => saved,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "serving model `{name}` (config fingerprint {:#018x}) with {} workers",
        saved.header.config_fingerprint, args.workers
    );
    let service = Arc::new(AtlasService::start(
        saved,
        ServiceConfig {
            workers: args.workers,
            embedding_cache: args.cache,
            ..ServiceConfig::default()
        },
    ));

    match &args.tcp {
        Some(addr) => serve_tcp(&service, addr),
        None => {
            serve_stdio(&service);
            ExitCode::SUCCESS
        }
    }
}

/// One request line → one response line.
fn answer(service: &AtlasService, line: &str) -> String {
    let result = match protocol::parse_request(line) {
        Ok(request) => {
            let id = request.id;
            service.call(request).map_err(|e| (id, e))
        }
        Err(e) => Err((None, e)),
    };
    protocol::render_result(&result)
}

fn serve_stdio(service: &AtlasService) {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = answer(service, &line);
        let mut out = stdout.lock();
        let _ = writeln!(out, "{response}");
        let _ = out.flush();
    }
    let stats = service.stats();
    eprintln!(
        "served {} requests ({} errors); embedding cache {}/{} hits",
        stats.requests,
        stats.errors,
        stats.embedding_cache.hits,
        stats.embedding_cache.hits + stats.embedding_cache.misses
    );
}

fn serve_tcp(service: &Arc<AtlasService>, addr: &str) -> ExitCode {
    let listener = match TcpListener::bind(addr) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("error: bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("listening on {addr}");
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let service = Arc::clone(service);
        std::thread::spawn(move || serve_connection(&service, stream));
    }
    ExitCode::SUCCESS
}

fn serve_connection(service: &AtlasService, stream: TcpStream) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".into());
    let reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = answer(service, &line);
        if writeln!(writer, "{response}").is_err() {
            break;
        }
    }
    eprintln!("connection {peer} closed");
}
