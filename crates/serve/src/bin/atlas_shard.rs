//! The `atlas-shard` binary: the shard fleet's front door.
//!
//! ```text
//! atlas-shard --tcp ADDR --shard ID=ADDR [--shard ID=ADDR ...]
//!             [--vnodes N] [--max-conns N] [--reactor-threads N]
//! ```
//!
//! Routes every `predict` line to the serve process owning its trace
//! key on a consistent-hash ring (see `atlas_serve::shard`), so repeat
//! requests always land on the shard whose embedding cache is warm for
//! them. `shard_map` answers the full ring; `stats` answers the proxy's
//! own counters; per-shard verbs (`models`, `load_model`, ...) must be
//! addressed to the shard's own port and get a structured error here.
//!
//! The proxy reuses the exact same epoll reactor (and `--reactor-threads`
//! pool) as `serve` itself; backend connections are established lazily
//! and re-established after a shard restart.

use std::process::ExitCode;
use std::sync::Arc;

use atlas_serve::reactor::{ReactorConfig, ReactorPool};
use atlas_serve::shard::{ShardProxy, DEFAULT_VNODES};
use atlas_serve::ShardInfo;

struct Args {
    tcp: String,
    shards: Vec<ShardInfo>,
    max_conns: usize,
    reactor_threads: usize,
    default_model: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tcp: String::new(),
        shards: Vec::new(),
        max_conns: ReactorConfig::default().max_connections,
        reactor_threads: 1,
        default_model: None,
    };
    let mut vnodes = DEFAULT_VNODES;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--tcp" => args.tcp = value("--tcp")?,
            "--shard" => {
                let spec = value("--shard")?;
                let (id, addr) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--shard `{spec}`: expected ID=ADDR"))?;
                let id: u32 = id.parse().map_err(|e| format!("--shard {spec}: {e}"))?;
                args.shards.push(ShardInfo {
                    id,
                    addr: addr.to_owned(),
                    vnodes: 0, // filled from --vnodes below
                });
            }
            "--vnodes" => {
                vnodes = value("--vnodes")?
                    .parse()
                    .map_err(|e| format!("--vnodes: {e}"))?;
                if vnodes == 0 {
                    return Err("--vnodes must be positive".into());
                }
            }
            "--max-conns" => {
                args.max_conns = value("--max-conns")?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?;
            }
            "--default-model" => args.default_model = Some(value("--default-model")?),
            "--reactor-threads" => {
                args.reactor_threads = value("--reactor-threads")?
                    .parse()
                    .map_err(|e| format!("--reactor-threads: {e}"))?;
                if args.reactor_threads == 0 {
                    return Err("--reactor-threads must be positive".into());
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: atlas-shard --tcp ADDR --shard ID=ADDR [--shard ID=ADDR ...] \
                     [--vnodes N] [--max-conns N] [--reactor-threads N] [--default-model NAME]\n\
                     routes predict requests across serve processes by trace key \
                     (consistent hashing, N vnodes per shard)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.tcp.is_empty() {
        return Err("--tcp is required".into());
    }
    if args.shards.is_empty() {
        return Err("at least one --shard ID=ADDR is required".into());
    }
    for shard in &mut args.shards {
        shard.vnodes = vnodes;
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let proxy = match ShardProxy::new(args.shards) {
        Ok(proxy) => {
            let proxy = match args.default_model {
                Some(name) => proxy.with_default_model(name),
                None => proxy,
            };
            Arc::new(proxy)
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    for shard in proxy.ring().shards() {
        eprintln!(
            "shard {} -> {} ({} vnodes)",
            shard.id, shard.addr, shard.vnodes
        );
    }
    let pool = match ReactorPool::bind(
        proxy,
        args.tcp.as_str(),
        ReactorConfig {
            max_connections: args.max_conns,
            ..ReactorConfig::default()
        },
        args.reactor_threads,
    ) {
        Ok(pool) => pool,
        Err(e) => {
            eprintln!("error: bind {}: {e}", args.tcp);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "shard proxy listening on {} ({} reactor(s), {})",
        pool.local_addr(),
        args.reactor_threads,
        if pool.reuseport() {
            "SO_REUSEPORT"
        } else {
            "shared accept queue"
        },
    );
    let handle = match pool.spawn() {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: spawn reactors: {e}");
            return ExitCode::FAILURE;
        }
    };
    match handle.join() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: reactor: {e}");
            ExitCode::FAILURE
        }
    }
}
