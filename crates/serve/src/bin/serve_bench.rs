//! Load generator for the prediction service: measures cold-start vs
//! cache-hit latency, warm throughput, reactor behavior under idle
//! connections, and single-flight deduplication, writing
//! `BENCH_serve.json`.
//!
//! ```text
//! serve_bench [--out PATH] [--scale F] [--train-cycles N] [--cycles N]
//!             [--clients N] [--repeat N] [--idle-conns N] [--dup-clients N]
//!             [--embed-threads N] [--storm-clients N]
//! ```
//!
//! The bench trains a small model, starts an in-process service, then
//! runs nine scenarios:
//!
//! * **cold** — every (design, workload) pair of the unseen test designs
//!   on an empty cache (each request pays design generation, simulation,
//!   and encoder forwards);
//! * **warm** — `--repeat` rounds fired from `--clients` concurrent
//!   client threads (every request is an embedding-cache hit, paying
//!   only the GBDT heads);
//! * **idle** — an epoll reactor serving the same service over TCP with
//!   `--idle-conns` parked connections; warm requests through one active
//!   connection measure whether idle sockets tax the serving path, and
//!   the process thread count is sampled to prove they cost no threads;
//! * **dupkey** — `--dup-clients` concurrent cold requests for one
//!   never-seen key; single-flight must collapse them into exactly one
//!   embedding computation;
//! * **regwl** — a schedule registered once via the workload library,
//!   then referenced by name for `--repeat` requests; all but the first
//!   must be cache hits;
//! * **multimodel** — one model hosted under two serving names; a
//!   name-addressed request must answer bit-identically to the
//!   default-addressed one, and each model must account its cache
//!   occupancy separately;
//! * **reload** — a model file hot-loaded and unloaded in a loop while
//!   warm traffic runs on the default model; the churn must answer zero
//!   errors on the stable model, the loaded copy must answer
//!   bit-identically, and the unloaded name must yield a structured
//!   `unknown_model` error;
//! * **quota-storm** — `--storm-clients` clients hammer distinct cold
//!   keys on a quota-1 model while another model's warm p50 is measured;
//!   the victim's p50 must stay within 3x of its idle p50 (gated here
//!   and in `scripts/check_bench.rs`);
//! * **shard-scaleout** — a working set sized to thrash one shard's
//!   embedding-cache budget is served through the consistent-hash shard
//!   proxy against one, then two, `--shard-server` child processes
//!   (re-executions of this binary). Routing by trace key makes the
//!   per-shard caches additive, so the two-shard fleet turns the
//!   single shard's recompute churn into cache hits and must clear
//!   ≥1.6x its throughput. One shard is then drained (writing a cache
//!   snapshot on exit) and restarted from the snapshot; its first warm
//!   round must be all cache hits with **zero** embeddings recomputed
//!   and bit-identical answers, and its restored warm p50 must stay
//!   within 2x of the steady warm p50 (gated here and in
//!   `scripts/check_bench.rs --shard`).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use atlas_core::pipeline::{train_atlas, ExperimentConfig};
use atlas_serve::reactor::{PoolHandle, Reactor, ReactorConfig, ReactorPool};
use atlas_serve::shard::{trace_route_key, ShardProxy, ShardRing};
use atlas_serve::{
    AtlasService, DeltaBase, ModelCatalog, ModelRegistry, PredictDeltaRequest, PredictRequest,
    PredictResponse, ServeError, ServiceConfig, ShardInfo, StatsResponse,
};
use atlas_sim::WorkloadPhase;
use serde::Serialize;

struct Args {
    out: String,
    scale: f64,
    train_cycles: usize,
    cycles: usize,
    clients: usize,
    repeat: usize,
    idle_conns: usize,
    dup_clients: usize,
    embed_threads: usize,
    storm_clients: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: "BENCH_serve.json".into(),
        scale: 0.2,
        train_cycles: 48,
        cycles: 32,
        clients: 4,
        repeat: 8,
        idle_conns: 512,
        dup_clients: 8,
        embed_threads: 1,
        storm_clients: 6,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--out" => args.out = value("--out")?,
            "--scale" => args.scale = value("--scale")?.parse().map_err(|e| format!("{e}"))?,
            "--train-cycles" => {
                args.train_cycles = value("--train-cycles")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--cycles" => args.cycles = value("--cycles")?.parse().map_err(|e| format!("{e}"))?,
            "--clients" => {
                args.clients = value("--clients")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--repeat" => args.repeat = value("--repeat")?.parse().map_err(|e| format!("{e}"))?,
            "--idle-conns" => {
                args.idle_conns = value("--idle-conns")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--dup-clients" => {
                args.dup_clients = value("--dup-clients")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--embed-threads" => {
                args.embed_threads = value("--embed-threads")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--storm-clients" => {
                args.storm_clients = value("--storm-clients")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.clients == 0 || args.repeat == 0 || args.cycles == 0 || args.dup_clients == 0 {
        return Err("--clients, --repeat, --cycles, and --dup-clients must be positive".into());
    }
    Ok(args)
}

/// Latency rollup of one phase, milliseconds.
#[derive(Debug, Clone, Serialize)]
struct Phase {
    requests: usize,
    mean_ms: f64,
    p50_ms: f64,
    p95_ms: f64,
    max_ms: f64,
    wall_s: f64,
    throughput_rps: f64,
}

fn phase(mut latencies_ms: Vec<f64>, wall_s: f64) -> Phase {
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let n = latencies_ms.len();
    assert!(n > 0, "phase() needs at least one latency sample");
    let pct = |p: f64| latencies_ms[((n as f64 * p) as usize).min(n - 1)];
    Phase {
        requests: n,
        mean_ms: latencies_ms.iter().sum::<f64>() / n as f64,
        p50_ms: pct(0.50),
        p95_ms: pct(0.95),
        max_ms: latencies_ms[n - 1],
        wall_s,
        throughput_rps: n as f64 / wall_s.max(1e-9),
    }
}

/// The idle-connection scenario: reactor behavior with parked sockets.
#[derive(Debug, Serialize)]
struct IdleScenario {
    /// Idle connections parked on the reactor for the whole phase.
    connections: usize,
    /// OS threads this process gained while those connections were open
    /// (must be 0: connections cost buffers, not threads).
    thread_delta: i64,
    /// Round-trip latency of warm requests through one active
    /// connection while every idle connection stayed parked.
    active: Phase,
}

/// The duplicate-key scenario: single-flight under concurrent cold load.
#[derive(Debug, Serialize)]
struct DupKeyScenario {
    /// Concurrent clients all requesting the same cold key.
    clients: usize,
    /// Embeddings actually computed (single-flight target: exactly 1).
    embeddings_computed: u64,
    /// Requests that waited on the in-flight computation.
    coalesced: u64,
    /// Requests that arrived after completion and hit the cache.
    cache_hits: u64,
    /// Per-request latency (leader pays the pipeline; followers the wait).
    latency: Phase,
}

/// The registered-workload scenario: one `register_workload`, many
/// `workload_name` uses.
#[derive(Debug, Serialize)]
struct RegisteredWorkloadScenario {
    /// Requests referencing the registered name.
    requests: usize,
    /// Cold pipelines run for them (target: exactly 1).
    embeddings_computed: u64,
    /// Requests answered from the embedding cache.
    cache_hits: u64,
    /// Per-request latency (first request pays the pipeline).
    latency: Phase,
}

/// One model's cache occupancy in the multi-model scenario.
#[derive(Debug, Serialize)]
struct ModelOccupancy {
    model: String,
    requests: u64,
    embeddings_computed: u64,
    embedding_cache_len: usize,
    embedding_cache_bytes: usize,
}

/// The multi-model scenario: one trained model hosted under two names.
#[derive(Debug, Serialize)]
struct MultiModelScenario {
    /// Hosted models.
    models: usize,
    /// Whether the name-addressed answer was bit-identical to the
    /// default-addressed one (must be true).
    name_addressed_parity: bool,
    /// Whether addressing the default model by name hit the cache the
    /// default-addressed request populated (must be true: one cache per
    /// model, shared across both addressing modes).
    named_route_shares_cache: bool,
    /// Per-model cache accounting after the scenario.
    per_model: Vec<ModelOccupancy>,
}

/// The hot-reload scenario: load/unload churn under live traffic.
#[derive(Debug, Serialize)]
struct ReloadScenario {
    /// Load → unload cycles completed while traffic ran.
    reload_cycles: u64,
    /// Warm requests answered on the default model during the churn.
    requests_during_churn: usize,
    /// Errors among them (gate: must be 0 — reloads never disturb other
    /// models' traffic).
    errors_during_churn: usize,
    /// Whether a hot-loaded copy of the same weights answered
    /// bit-identically to the default model (gate: must be true).
    loaded_model_parity: bool,
    /// Whether predicting on the unloaded name produced a structured
    /// `unknown_model` error (gate: must be true).
    unknown_after_unload: bool,
    /// Latency of the default-model warm traffic during the churn.
    during_churn: Phase,
}

/// The quota-storm scenario: one model's cold storm must not starve
/// another model's warm traffic.
#[derive(Debug, Serialize)]
struct QuotaStormScenario {
    /// Workers of the dedicated two-model service.
    workers: usize,
    /// Explicit cold-compute quota of the storm model.
    storm_quota: usize,
    /// Concurrent storm clients issuing distinct cold keys.
    storm_clients: usize,
    /// Victim warm p50 with no storm running (client-observed,
    /// includes queue wait).
    victim_idle_p50_ms: f64,
    /// Victim warm p50 while the storm saturates its quota.
    victim_storm_p50_ms: f64,
    /// `victim_storm_p50_ms / victim_idle_p50_ms` — gated ≤ 3x by
    /// `scripts/check_bench.rs`.
    p50_ratio: f64,
    /// Storm requests parked behind the saturated quota (must be > 0:
    /// proof the storm actually saturated).
    storm_queued: u64,
    /// Storm requests rejected at the parking bound.
    storm_rejected: u64,
    /// Cold pipelines the storm model ran.
    storm_embeddings_computed: u64,
}

/// Minimum `full p50 / delta p50` ratio the edit-loop scenario must
/// deliver. Mirrored by `DELTA_SPEEDUP_FLOOR` in `scripts/check_bench.rs`.
const DELTA_SPEEDUP_FLOOR: f64 = 2.0;

/// The edit-loop scenario: an interactive what-if session editing one
/// sub-module of an uploaded design. Every revision is predicted twice —
/// as a cold full `predict` and as a `predict_delta` against the
/// unedited base — and the incremental path must be bit-identical and at
/// least [`DELTA_SPEEDUP_FLOOR`]x faster at p50.
#[derive(Debug, Serialize)]
struct EditLoopScenario {
    /// Sub-modules in the uploaded design (the edit dirties exactly one).
    submodules: usize,
    /// Edited revisions measured on each path.
    edits: usize,
    /// Cold full-recompute `predict` per revision.
    full: Phase,
    /// `predict_delta` per revision, base = the unedited design's trace.
    delta: Phase,
    /// `full.p50_ms / delta.p50_ms` — gated ≥ [`DELTA_SPEEDUP_FLOOR`]
    /// here and in `scripts/check_bench.rs`.
    delta_speedup: f64,
    /// Every delta found its base trace warm.
    base_hit: bool,
    /// (sub-module × cycle) items donated by the base across all deltas.
    reused_cycles: u64,
    /// Items recomputed across all deltas (the edited sub-module).
    recomputed_cycles: u64,
    /// Every delta answer was bit-identical to the full recompute of the
    /// same revision.
    parity: bool,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    /// ISA features detected on the machine that produced this report
    /// (e.g. `avx2+fma`), for reading baselines across machine classes.
    isa: String,
    /// Matmul kernel variant the f64 path dispatched to (`avx2`/`scalar`).
    kernel: String,
    scale: f64,
    cycles: usize,
    clients: usize,
    /// Threads each worker uses inside `embed_trace` for a cold request.
    embed_threads: usize,
    train_s: f64,
    cold: Phase,
    warm: Phase,
    cold_over_warm_speedup: f64,
    cache_hit_latency_below_cold: bool,
    embedding_cache_hits: u64,
    embedding_cache_misses: u64,
    embedding_cache_bytes: usize,
    embedding_cache_budget_bytes: usize,
    idle: IdleScenario,
    dupkey: DupKeyScenario,
    regwl: RegisteredWorkloadScenario,
    multimodel: MultiModelScenario,
    reload: ReloadScenario,
    quota_storm: QuotaStormScenario,
    edit_loop: EditLoopScenario,
    shard_scaleout: ShardScaleoutScenario,
}

/// Current thread count of this process, from /proc (Linux).
fn os_threads() -> Option<i64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// Send one request line over TCP and wait for its response line.
fn roundtrip(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    request: &PredictRequest,
) -> Result<PredictResponse, String> {
    let mut line = serde_json::to_string(request).map_err(|e| e.to_string())?;
    line.push('\n');
    writer
        .write_all(line.as_bytes())
        .map_err(|e| e.to_string())?;
    let mut reply = String::new();
    reader.read_line(&mut reply).map_err(|e| e.to_string())?;
    serde_json::from_str(&reply).map_err(|e| format!("bad response `{}`: {e}", reply.trim()))
}

fn run_idle_scenario(
    service: &Arc<AtlasService>,
    keys: &[PredictRequest],
    idle_conns: usize,
    repeat: usize,
) -> Result<IdleScenario, String> {
    let frontend: Arc<AtlasService> = Arc::clone(service);
    let reactor = Reactor::bind(
        frontend,
        "127.0.0.1:0",
        ReactorConfig {
            max_connections: idle_conns + 16,
            ..ReactorConfig::default()
        },
    )
    .map_err(|e| format!("bind reactor: {e}"))?
    .spawn()
    .map_err(|e| format!("spawn reactor: {e}"))?;
    let addr = reactor.addr();

    // The reactor thread is up; every thread from here on would be a bug.
    let threads_before = os_threads().unwrap_or(0);
    let idle: Vec<TcpStream> = (0..idle_conns)
        .map(|_| TcpStream::connect(addr))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("idle connect: {e}"))?;
    // Wait until the reactor has admitted them all.
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    while (reactor.stats().active as usize) < idle_conns {
        if Instant::now() > deadline {
            return Err(format!(
                "reactor admitted only {} of {idle_conns} idle connections",
                reactor.stats().active
            ));
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let threads_after = os_threads().unwrap_or(0);

    // Warm requests through one active connection while all the idle
    // connections stay parked.
    let mut writer = TcpStream::connect(addr).map_err(|e| format!("active connect: {e}"))?;
    let _ = writer.set_nodelay(true);
    let mut reader = BufReader::new(writer.try_clone().map_err(|e| e.to_string())?);
    let t0 = Instant::now();
    let mut lat = Vec::new();
    for round in 0..repeat.max(1) {
        for (k, key) in keys.iter().enumerate() {
            let t = Instant::now();
            let resp = roundtrip(&mut writer, &mut reader, key)?;
            lat.push(t.elapsed().as_secs_f64() * 1e3);
            if round == 0 && k == 0 && !resp.cache_hit {
                return Err("idle scenario expects a pre-warmed cache".into());
            }
        }
    }
    let active = phase(lat, t0.elapsed().as_secs_f64());

    drop(idle);
    reactor.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    Ok(IdleScenario {
        connections: idle_conns,
        thread_delta: threads_after - threads_before,
        active,
    })
}

fn run_dupkey_scenario(
    service: &Arc<AtlasService>,
    cycles: usize,
    clients: usize,
) -> Result<DupKeyScenario, String> {
    // C6 is a training design never touched by the cold/warm passes, so
    // this key is guaranteed cold.
    let request = PredictRequest::new("C6", "W1", cycles);
    let before = service.stats();
    let barrier = Barrier::new(clients);
    let t0 = Instant::now();
    let lat: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let service = Arc::clone(service);
                let barrier = &barrier;
                let request = request.clone();
                scope.spawn(move || {
                    barrier.wait();
                    let t = Instant::now();
                    service
                        .call(request)
                        .map(|_| t.elapsed().as_secs_f64() * 1e3)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("dupkey client"))
            .collect::<Result<_, _>>()
    })
    .map_err(|e| format!("dupkey request failed: {e}"))?;
    let wall = t0.elapsed().as_secs_f64();
    let after = service.stats();
    Ok(DupKeyScenario {
        clients,
        embeddings_computed: after.embeddings_computed - before.embeddings_computed,
        coalesced: after.coalesced_requests - before.coalesced_requests,
        cache_hits: after.embedding_cache.hits - before.embedding_cache.hits,
        latency: phase(lat, wall),
    })
}

/// The registered-workload scenario: register a schedule once, then
/// reference it by name; every use after the first must hit the cache.
fn run_regwl_scenario(
    service: &Arc<AtlasService>,
    cycles: usize,
    repeat: usize,
) -> Result<RegisteredWorkloadScenario, String> {
    let phases = vec![
        WorkloadPhase {
            activity: 0.55,
            min_len: 3,
            max_len: 9,
        },
        WorkloadPhase {
            activity: 0.04,
            min_len: 8,
            max_len: 20,
        },
    ];
    service
        .register_workload("bench-bursty", phases)
        .map_err(|e| format!("register_workload: {e}"))?;
    let before = service.stats();
    let requests = repeat.max(2);
    let mut lat = Vec::new();
    let t0 = Instant::now();
    for i in 0..requests {
        // C4 keeps this key disjoint from the dupkey scenario's C6.
        let resp = service
            .call(PredictRequest::with_workload_name(
                "C4",
                "bench-bursty",
                cycles,
            ))
            .map_err(|e| format!("registered request: {e}"))?;
        lat.push(resp.latency_ms);
        if i > 0 && !resp.cache_hit {
            return Err(format!(
                "request {i} for a registered name missed the cache"
            ));
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let after = service.stats();
    Ok(RegisteredWorkloadScenario {
        requests,
        embeddings_computed: after.embeddings_computed - before.embeddings_computed,
        cache_hits: after.embedding_cache.hits - before.embedding_cache.hits,
        latency: phase(lat, wall),
    })
}

/// The multi-model scenario: the same weights hosted under two serving
/// names; routing must be bit-identical and cache accounting per-model.
fn run_multimodel_scenario(
    model: &atlas_core::AtlasModel,
    cfg: &ExperimentConfig,
    cycles: usize,
) -> Result<MultiModelScenario, String> {
    let mut catalog = ModelCatalog::new();
    catalog
        .insert_model("stable", model.clone(), cfg.clone())
        .map_err(|e| format!("catalog: {e}"))?;
    catalog
        .insert_model("canary", model.clone(), cfg.clone())
        .map_err(|e| format!("catalog: {e}"))?;
    let service = AtlasService::start_catalog(
        catalog,
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    )
    .map_err(|e| format!("start_catalog: {e}"))?;

    let req = PredictRequest::new("C2", "W1", cycles);
    let implicit = service
        .call(req.clone())
        .map_err(|e| format!("default-addressed: {e}"))?;
    let explicit = service
        .call(req.clone().on_model("stable"))
        .map_err(|e| format!("name-addressed: {e}"))?;
    let canary = service
        .call(req.on_model("canary"))
        .map_err(|e| format!("canary-addressed: {e}"))?;

    let stats = service.stats();
    Ok(MultiModelScenario {
        models: stats.models.len(),
        name_addressed_parity: explicit.per_cycle_total_w == implicit.per_cycle_total_w
            && canary.per_cycle_total_w == implicit.per_cycle_total_w,
        named_route_shares_cache: explicit.cache_hit && !canary.cache_hit,
        per_model: stats
            .models
            .iter()
            .map(|m| ModelOccupancy {
                model: m.model.clone(),
                requests: m.requests,
                embeddings_computed: m.embeddings_computed,
                embedding_cache_len: m.embedding_cache.len,
                embedding_cache_bytes: m.embedding_cache.weight,
            })
            .collect(),
    })
}

/// The hot-reload scenario: a model file is loaded and unloaded in a
/// tight loop while warm traffic runs on the default model; reload churn
/// must never disturb it, and the control-plane semantics (parity,
/// structured unknown_model after unload) must hold.
fn run_reload_scenario(
    service: &Arc<AtlasService>,
    model: &atlas_core::AtlasModel,
    cfg: &ExperimentConfig,
    cycles: usize,
    repeat: usize,
) -> Result<ReloadScenario, String> {
    let dir = std::env::temp_dir().join(format!("atlas-serve-bench-{}", std::process::id()));
    let registry = ModelRegistry::open(&dir).map_err(|e| format!("bench registry: {e}"))?;
    let path = registry
        .save("bench-hot", model, cfg)
        .map_err(|e| format!("save bench model: {e}"))?;

    // Semantics first: load, check parity against the (warm) default
    // model, unload, check the structured error.
    service
        .load_model_file("bench-hot", &path)
        .map_err(|e| format!("hot load: {e}"))?;
    let base = service
        .call(PredictRequest::new("C2", "W1", cycles))
        .map_err(|e| format!("default-model request: {e}"))?;
    let hot = service
        .call(PredictRequest::new("C2", "W1", cycles).on_model("bench-hot"))
        .map_err(|e| format!("loaded-model request: {e}"))?;
    let loaded_model_parity = hot.per_cycle_total_w == base.per_cycle_total_w;
    service
        .unload_model("bench-hot")
        .map_err(|e| format!("unload: {e}"))?;
    let unknown_after_unload = matches!(
        service.call(PredictRequest::new("C2", "W1", cycles).on_model("bench-hot")),
        Err(ServeError::UnknownModel(_))
    );

    // Churn while measuring the default model's warm traffic.
    let stop = AtomicBool::new(false);
    let requests = (repeat * 8).max(64);
    let (reload_cycles, errors, lat, wall_s) = std::thread::scope(|scope| {
        let churner = {
            let service = Arc::clone(service);
            let stop = &stop;
            let path = path.clone();
            scope.spawn(move || {
                let mut cycles = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if service.load_model_file("bench-hot", &path).is_ok()
                        && service.unload_model("bench-hot").is_ok()
                    {
                        cycles += 1;
                    }
                }
                cycles
            })
        };
        let mut lat = Vec::with_capacity(requests);
        let mut errors = 0usize;
        let t0 = Instant::now();
        for _ in 0..requests {
            let t = Instant::now();
            match service.call(PredictRequest::new("C2", "W1", cycles)) {
                Ok(_) => lat.push(t.elapsed().as_secs_f64() * 1e3),
                Err(_) => errors += 1,
            }
        }
        let wall_s = t0.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        let reload_cycles = churner.join().expect("churn thread");
        (reload_cycles, errors, lat, wall_s)
    });

    let _ = std::fs::remove_dir_all(&dir);
    Ok(ReloadScenario {
        reload_cycles,
        requests_during_churn: requests,
        errors_during_churn: errors,
        loaded_model_parity,
        unknown_after_unload,
        during_churn: phase(lat, wall_s),
    })
}

/// The quota-storm scenario: a dedicated two-model service where storm
/// clients hammer distinct cold keys on one model (quota 1) while the
/// victim model's warm p50 is measured; the quota must keep it near its
/// idle latency.
fn run_quota_storm_scenario(
    model: &atlas_core::AtlasModel,
    cfg: &ExperimentConfig,
    cycles: usize,
    storm_clients: usize,
) -> Result<QuotaStormScenario, String> {
    let workers = 4;
    let storm_quota = 1;
    let mut catalog = ModelCatalog::new();
    catalog
        .insert_model("victim", model.clone(), cfg.clone())
        .map_err(|e| format!("catalog: {e}"))?;
    catalog
        .insert_model("storm", model.clone(), cfg.clone())
        .map_err(|e| format!("catalog: {e}"))?;
    let service = Arc::new(
        AtlasService::start_catalog(
            catalog,
            ServiceConfig {
                workers,
                model_quotas: [("storm".to_owned(), storm_quota)].into_iter().collect(),
                ..ServiceConfig::default()
            },
        )
        .map_err(|e| format!("start_catalog: {e}"))?,
    );

    // Client-observed latency (includes queue wait — exactly what a
    // starved victim would pay; the server-side latency_ms field does
    // not see the queue).
    let victim_req = PredictRequest::new("C2", "W1", cycles).on_model("victim");
    let p50 = |service: &AtlasService, n: usize| -> Result<f64, String> {
        let mut lat = Vec::with_capacity(n);
        for _ in 0..n {
            let t = Instant::now();
            service
                .call(victim_req.clone())
                .map_err(|e| format!("victim request: {e}"))?;
            lat.push(t.elapsed().as_secs_f64() * 1e3);
        }
        lat.sort_by(|a, b| a.total_cmp(b));
        Ok(lat[lat.len() / 2])
    };
    service
        .call(victim_req.clone())
        .map_err(|e| format!("victim warm-up: {e}"))?;
    let victim_idle_p50_ms = p50(&service, 100)?;

    let stop = AtomicBool::new(false);
    let victim_storm_p50_ms = std::thread::scope(|scope| -> Result<f64, String> {
        for client in 0..storm_clients as u64 {
            let service = Arc::clone(&service);
            let stop = &stop;
            let clients = storm_clients as u64;
            scope.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Distinct cycles per (client, iteration): every
                    // request is a fresh cold key, nothing coalesces.
                    let storm_cycles = 16 + ((client + clients * i) % 256) as usize;
                    let reply = service
                        .call(PredictRequest::new("C4", "W2", storm_cycles).on_model("storm"));
                    assert!(
                        matches!(reply, Ok(_) | Err(ServeError::QuotaExceeded(_))),
                        "storm replies must be completions or quota rejections: {reply:?}"
                    );
                    i += 1;
                }
            });
        }
        // Wait until the storm has actually saturated its quota.
        let deadline = Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let stats = service.stats();
            let storm = stats
                .models
                .iter()
                .find(|m| m.model == "storm")
                .expect("storm model stats");
            if storm.queued > 0 {
                break;
            }
            if Instant::now() > deadline {
                stop.store(true, Ordering::Relaxed);
                return Err("storm never saturated its quota".into());
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let p50 = p50(&service, 200);
        stop.store(true, Ordering::Relaxed);
        p50
    })?;

    let stats = service.stats();
    let storm = stats
        .models
        .iter()
        .find(|m| m.model == "storm")
        .expect("storm model stats");
    Ok(QuotaStormScenario {
        workers,
        storm_quota,
        storm_clients,
        victim_idle_p50_ms,
        victim_storm_p50_ms,
        p50_ratio: victim_storm_p50_ms / victim_idle_p50_ms.max(1e-9),
        storm_queued: storm.queued,
        storm_rejected: storm.rejected_quota,
        storm_embeddings_computed: storm.embeddings_computed,
    })
}

/// An uploaded design shaped like an edit loop's subject: `submodules`
/// identical blocks fed only from shared primary inputs — no
/// inter-submodule wiring, so editing one block can never dirty another
/// block's toggle patterns. `variant` 0 is the base; `variant` v > 0
/// appends a v-cell inverter tail inside the LAST block only, i.e. a
/// 1-sub-module edit with every other block provably unchanged.
fn build_edit_design(submodules: usize, variant: usize) -> Result<atlas_netlist::Design, String> {
    use atlas_liberty::{CellClass, Drive};
    let fail = |e: atlas_netlist::BuildError| format!("edit design: {e}");
    let mut b = atlas_netlist::NetlistBuilder::new("editloop");
    let pis = b.add_inputs(8);
    for s in 0..submodules {
        let sm = b.add_submodule(format!("top.u{s}"), "block");
        // A register rank mixing the shared PIs...
        let mut regs = Vec::new();
        for (i, &pi) in pis.iter().enumerate() {
            let class = if i % 2 == 0 {
                CellClass::Xor2
            } else {
                CellClass::Nand2
            };
            let mixed = b
                .add_cell(class, Drive::X1, &[pi, pis[(i + 1) % pis.len()]], sm)
                .map_err(fail)?;
            regs.push(b.add_dff(mixed, sm).map_err(fail)?);
        }
        // ...fanned out three ways per register so each block carries
        // enough cells for the encoder forward to dominate its cost...
        let mut layer = Vec::new();
        for (i, &q) in regs.iter().enumerate() {
            let peer = regs[(i + 3) % regs.len()];
            layer.push(
                b.add_cell(CellClass::And2, Drive::X1, &[q, peer], sm)
                    .map_err(fail)?,
            );
            layer.push(
                b.add_cell(CellClass::Or2, Drive::X1, &[q, peer], sm)
                    .map_err(fail)?,
            );
            layer.push(
                b.add_cell(CellClass::Xor2, Drive::X1, &[q, peer], sm)
                    .map_err(fail)?,
            );
        }
        // ...reduced to one output by alternating-class pair trees.
        let mut depth = 0;
        while layer.len() > 1 {
            let class = match depth % 3 {
                0 => CellClass::Nand2,
                1 => CellClass::Nor2,
                _ => CellClass::Xnor2,
            };
            let mut next = Vec::new();
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 {
                    b.add_cell(class, Drive::X1, &[pair[0], pair[1]], sm)
                        .map_err(fail)?
                } else {
                    pair[0]
                });
            }
            layer = next;
            depth += 1;
        }
        let mut out = layer[0];
        if variant > 0 && s == submodules - 1 {
            for _ in 0..variant {
                out = b
                    .add_cell(CellClass::Inv, Drive::X1, &[out], sm)
                    .map_err(fail)?;
            }
        }
        b.mark_output(out);
    }
    b.finish().map_err(|e| format!("edit design: {e}"))
}

/// The edit-loop scenario: upload a base design, warm its trace once,
/// then predict a stream of 1-sub-module revisions both ways — cold full
/// `predict` vs `predict_delta` reusing the base's clean items.
fn run_edit_loop_scenario(
    model: &atlas_core::AtlasModel,
    cfg: &ExperimentConfig,
    cycles: usize,
    edits: usize,
) -> Result<EditLoopScenario, String> {
    const SUBMODULES: usize = 8;
    let edits = edits.max(2);
    let service = AtlasService::start_with(
        model.clone(),
        cfg.clone(),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    let upload = |name: &str, variant: usize| -> Result<(), String> {
        let design = build_edit_design(SUBMODULES, variant)?;
        service
            .load_design(name, &design.to_verilog())
            .map_err(|e| format!("load_design {name}: {e}"))?;
        Ok(())
    };
    // Each revision is uploaded twice under distinct names so the full
    // pass and the delta pass each see a cold trace key for identical
    // content; ingestion happens up front because it is not what this
    // scenario measures.
    upload("edit-v0", 0)?;
    for r in 1..=edits {
        upload(&format!("edit-full-{r}"), r)?;
        upload(&format!("edit-delta-{r}"), r)?;
    }
    // Warm the base trace the whole loop will reuse (not timed).
    service
        .call(PredictRequest::new("edit-v0", "W1", cycles))
        .map_err(|e| format!("base predict: {e}"))?;

    // Full-recompute path: a cold `predict` per revision.
    let mut full_lat = Vec::new();
    let mut references = Vec::new();
    let t0 = Instant::now();
    for r in 1..=edits {
        let resp = service
            .call(PredictRequest::new(format!("edit-full-{r}"), "W1", cycles))
            .map_err(|e| format!("full predict {r}: {e}"))?;
        if resp.cache_hit {
            return Err(format!("full predict {r} unexpectedly hit the cache"));
        }
        full_lat.push(resp.latency_ms);
        references.push(resp);
    }
    let full = phase(full_lat, t0.elapsed().as_secs_f64());

    // Incremental path: `predict_delta` against the v0 base.
    let mut delta_lat = Vec::new();
    let mut base_hit = true;
    let mut parity = true;
    let mut reused_cycles = 0u64;
    let mut recomputed_cycles = 0u64;
    let t1 = Instant::now();
    for r in 1..=edits {
        let resp = service
            .call_delta(PredictDeltaRequest {
                id: None,
                model: None,
                design: format!("edit-delta-{r}"),
                workload: Some("W1".to_owned()),
                workload_name: None,
                cycles,
                phases: None,
                base: Some(DeltaBase {
                    design: Some("edit-v0".to_owned()),
                    workload: None,
                    workload_name: None,
                    cycles: None,
                    phases: None,
                }),
                changed_submodules: Some(vec![SUBMODULES - 1]),
            })
            .map_err(|e| format!("delta predict {r}: {e}"))?;
        if resp.cache_hit {
            return Err(format!("delta predict {r} unexpectedly hit the cache"));
        }
        base_hit &= resp.base_hit;
        reused_cycles += resp.reused_cycles as u64;
        recomputed_cycles += resp.recomputed_cycles as u64;
        let reference = &references[r - 1];
        parity &= resp.per_cycle_total_w == reference.per_cycle_total_w
            && resp.mean_total_w == reference.mean_total_w
            && resp.peak_total_w == reference.peak_total_w;
        delta_lat.push(resp.latency_ms);
    }
    let delta = phase(delta_lat, t1.elapsed().as_secs_f64());
    Ok(EditLoopScenario {
        submodules: SUBMODULES,
        edits,
        delta_speedup: full.p50_ms / delta.p50_ms.max(1e-9),
        full,
        delta,
        base_hit,
        reused_cycles,
        recomputed_cycles,
        parity,
    })
}

/// The shard-scaleout scenario: serving a cache-thrashing working set
/// through the consistent-hash proxy, one shard vs two, then a
/// drain-snapshot-restart round trip on one shard.
#[derive(Debug, Serialize)]
struct ShardScaleoutScenario {
    /// Shard processes in the scaled-out fleet.
    shards: usize,
    /// Distinct trace keys in the working set.
    keys: usize,
    /// Embedding-cache byte budget of each shard process: one key more
    /// than the larger per-shard subset, so each shard fits its share
    /// of the ring but one shard cannot fit the whole working set.
    cache_budget_bytes_per_shard: usize,
    /// Exact bytes of all working-set embeddings together.
    working_set_bytes: usize,
    /// The whole working set through the proxy over one shard (its LRU
    /// thrashes: most requests recompute).
    single_shard: Phase,
    /// The same traffic through the proxy over two shards (each holds
    /// its ring share: requests hit).
    dual_shard: Phase,
    /// `dual_shard.throughput_rps / single_shard.throughput_rps` —
    /// gated ≥ 1.6x by `scripts/check_bench.rs --shard`.
    scaleout: f64,
    /// Entries the drained shard wrote to its cache snapshot (must equal
    /// its share of the working set).
    snapshot_entries: usize,
    /// Whether every first-round request to the restarted shard hit the
    /// restored cache (gate: must be true).
    restored_first_round_all_hits: bool,
    /// Cold pipelines the restarted shard ran for that first warm round
    /// (gate: must be 0 — the snapshot made it warm).
    restored_embeddings_computed: u64,
    /// Shard id the restarted process reports in its own `stats` verb.
    restored_shard_id: Option<u32>,
    /// Whether the restarted shard's answers were bit-identical to the
    /// pre-restart answers (gate: must be true).
    restored_parity: bool,
    /// Warm p50 of the drained shard's keys before the restart.
    steady_warm_p50_ms: f64,
    /// Warm p50 of the same keys after restarting from the snapshot.
    restored_warm_p50_ms: f64,
    /// `restored_warm_p50_ms / steady_warm_p50_ms` — gated ≤ 2x by
    /// `scripts/check_bench.rs --shard`.
    restored_p50_ratio: f64,
}

/// Child mode: `serve_bench --shard-server --registry DIR --model NAME
/// --shard-id N --workers N --embed-cache-bytes N [--cache-snapshot P]`.
///
/// Loads the model from the parent's temp registry, serves it behind a
/// two-reactor pool on an ephemeral port (printing `ADDR <addr>` on
/// stdout), restores the cache snapshot if one exists, and on stdin EOF
/// drains, writes the snapshot back, and exits — the parent's handle on
/// our stdin is the lifecycle control.
fn run_shard_server() -> ExitCode {
    let mut registry_dir = String::new();
    let mut model = String::new();
    let mut shard_id = 0u32;
    let mut workers = 2usize;
    let mut embed_cache_bytes = 256 << 20;
    let mut cache_snapshot: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        let parsed = match flag.as_str() {
            "--shard-server" => Ok(()),
            "--registry" => value("--registry").map(|v| registry_dir = v),
            "--model" => value("--model").map(|v| model = v),
            "--shard-id" => value("--shard-id")
                .and_then(|v| v.parse().map_err(|e| format!("--shard-id: {e}")))
                .map(|v| shard_id = v),
            "--workers" => value("--workers")
                .and_then(|v| v.parse().map_err(|e| format!("--workers: {e}")))
                .map(|v| workers = v),
            "--embed-cache-bytes" => value("--embed-cache-bytes")
                .and_then(|v| v.parse().map_err(|e| format!("--embed-cache-bytes: {e}")))
                .map(|v| embed_cache_bytes = v),
            "--cache-snapshot" => {
                value("--cache-snapshot").map(|v| cache_snapshot = Some(PathBuf::from(v)))
            }
            other => Err(format!("unknown --shard-server flag `{other}`")),
        };
        if let Err(msg) = parsed {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    }
    let registry = match ModelRegistry::open(&registry_dir) {
        Ok(registry) => registry,
        Err(e) => {
            eprintln!("error: open registry {registry_dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let saved = match registry.load(&model) {
        Ok(saved) => saved,
        Err(e) => {
            eprintln!("error: load model {model}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let service = Arc::new(AtlasService::start(
        saved,
        ServiceConfig {
            workers,
            embedding_cache_bytes: embed_cache_bytes,
            shard_id: Some(shard_id),
            ..ServiceConfig::default()
        },
    ));
    if let Some(path) = &cache_snapshot {
        let report = service.restore_cache(path);
        eprintln!(
            "shard {shard_id}: snapshot {}: restored {} entries, skipped {}",
            path.display(),
            report.restored,
            report.skipped
        );
    }
    let frontend: Arc<AtlasService> = Arc::clone(&service);
    let pool = match ReactorPool::bind(frontend, "127.0.0.1:0", ReactorConfig::default(), 2) {
        Ok(pool) => pool,
        Err(e) => {
            eprintln!("error: bind shard listener: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("ADDR {}", pool.local_addr());
    if std::io::stdout().flush().is_err() {
        return ExitCode::FAILURE;
    }
    let handle = match pool.spawn() {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: spawn shard reactors: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Park until the parent closes our stdin, then drain and snapshot.
    let mut line = String::new();
    loop {
        line.clear();
        match std::io::stdin().lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    if let Err(e) = handle.shutdown() {
        eprintln!("error: shard shutdown: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(path) = &cache_snapshot {
        match service.snapshot_cache(path) {
            Ok(entries) => eprintln!(
                "shard {shard_id}: wrote {entries} cache entries to {}",
                path.display()
            ),
            Err(e) => {
                eprintln!("error: shard snapshot: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// One `--shard-server` child process and its listen address.
struct ShardChild {
    child: Child,
    info: ShardInfo,
}

impl ShardChild {
    /// Close the child's stdin (its drain signal) and wait for it to
    /// snapshot and exit.
    fn shutdown(mut self) -> Result<(), String> {
        drop(self.child.stdin.take());
        let status = self
            .child
            .wait()
            .map_err(|e| format!("wait shard {}: {e}", self.info.id))?;
        if !status.success() {
            return Err(format!("shard {} exited with {status}", self.info.id));
        }
        Ok(())
    }
}

impl Drop for ShardChild {
    fn drop(&mut self) {
        // Already-reaped children make both of these no-ops.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Re-execute this binary as a `--shard-server` child and wait for its
/// `ADDR` line.
fn spawn_shard(
    registry_dir: &Path,
    model: &str,
    shard_id: u32,
    embed_cache_bytes: usize,
    snapshot: &Path,
) -> Result<ShardChild, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut child = Command::new(exe)
        .arg("--shard-server")
        .arg("--registry")
        .arg(registry_dir)
        .args(["--model", model])
        .args(["--shard-id", &shard_id.to_string()])
        .args(["--workers", "4"])
        .args(["--embed-cache-bytes", &embed_cache_bytes.to_string()])
        .arg("--cache-snapshot")
        .arg(snapshot)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawn shard {shard_id}: {e}"))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read shard {shard_id} address: {e}"))?;
    let addr = line
        .trim()
        .strip_prefix("ADDR ")
        .ok_or_else(|| format!("shard {shard_id} announced `{}`", line.trim()))?
        .to_owned();
    Ok(ShardChild {
        child,
        info: ShardInfo {
            id: shard_id,
            addr,
            vnodes: 0,
        },
    })
}

/// Serve a [`ShardProxy`] over the fleet on an ephemeral port, behind a
/// two-thread reactor pool (the same front door `atlas-shard` runs).
fn spawn_proxy(shards: Vec<ShardInfo>) -> Result<PoolHandle, String> {
    let proxy = Arc::new(ShardProxy::new(shards).map_err(|e| format!("proxy: {e}"))?);
    let pool = ReactorPool::bind(proxy, "127.0.0.1:0", ReactorConfig::default(), 2)
        .map_err(|e| format!("bind proxy: {e}"))?;
    pool.spawn().map_err(|e| format!("spawn proxy: {e}"))
}

/// One `stats` round trip against a serve process's own port.
fn tcp_stats(addr: &str) -> Result<StatsResponse, String> {
    let mut writer = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    writer
        .write_all(b"{\"verb\":\"stats\"}\n")
        .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(writer.try_clone().map_err(|e| e.to_string())?);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    serde_json::from_str(&line).map_err(|e| format!("bad stats `{}`: {e}", line.trim()))
}

/// Fire the working set at `addr` from `clients` concurrent connections
/// for `rounds` staggered rounds, measuring client-observed latency.
fn hammer(
    addr: &str,
    keys: &[PredictRequest],
    clients: usize,
    rounds: usize,
) -> Result<Phase, String> {
    let barrier = Barrier::new(clients);
    let t0 = Instant::now();
    let lat: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let barrier = &barrier;
                scope.spawn(move || -> Result<Vec<f64>, String> {
                    let mut writer =
                        TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
                    let _ = writer.set_nodelay(true);
                    let mut reader = BufReader::new(writer.try_clone().map_err(|e| e.to_string())?);
                    barrier.wait();
                    let mut lat = Vec::with_capacity(rounds * keys.len());
                    for round in 0..rounds {
                        for k in 0..keys.len() {
                            // Stagger offsets so clients spread over keys.
                            let req = &keys[(k + c + round) % keys.len()];
                            let t = Instant::now();
                            roundtrip(&mut writer, &mut reader, req)?;
                            lat.push(t.elapsed().as_secs_f64() * 1e3);
                        }
                    }
                    Ok(lat)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("hammer client"))
            .collect::<Result<Vec<_>, _>>()
            .map(|all| all.into_iter().flatten().collect())
    })?;
    Ok(phase(lat, t0.elapsed().as_secs_f64()))
}

/// The shard-scaleout scenario. See the module docs for the storyline;
/// the short version: same traffic, one shard thrashes, two shards are
/// warm, and a drained shard restarts warm from its snapshot.
fn run_shard_scaleout_scenario(
    model: &atlas_core::AtlasModel,
    cfg: &ExperimentConfig,
    cycles: usize,
) -> Result<ShardScaleoutScenario, String> {
    // Plan the working set against the ring the real fleet will use
    // (ring geometry depends only on shard ids and vnode counts, so the
    // planning ring with placeholder addresses routes identically).
    let planning_ring = ShardRing::new(vec![
        ShardInfo {
            id: 0,
            addr: String::new(),
            vnodes: 0,
        },
        ShardInfo {
            id: 1,
            addr: String::new(),
            vnodes: 0,
        },
    ])
    .map_err(|e| format!("planning ring: {e}"))?;
    let mut keys: Vec<PredictRequest> = Vec::new();
    let mut owners: Vec<usize> = Vec::new();
    'grow: for extra in 0..4usize {
        for design in ["C1", "C2", "C3", "C4", "C5", "C6"] {
            for workload in ["W1", "W2"] {
                let key_cycles = cycles + extra;
                owners.push(
                    planning_ring.route_index(trace_route_key(None, design, workload, key_cycles)),
                );
                keys.push(PredictRequest::new(design, workload, key_cycles));
                let on_a = owners.iter().filter(|&&o| o == 0).count();
                let on_b = owners.len() - on_a;
                if keys.len() >= 12 && on_a >= 4 && on_b >= 4 {
                    break 'grow;
                }
            }
        }
    }
    let shard_b_keys: Vec<PredictRequest> = keys
        .iter()
        .zip(&owners)
        .filter(|(_, &owner)| owner == 1)
        .map(|(key, _)| key.clone())
        .collect();
    if shard_b_keys.len() < 4 || keys.len() - shard_b_keys.len() < 4 {
        return Err(format!(
            "degenerate ring split: {} of {} keys on shard 1",
            shard_b_keys.len(),
            keys.len()
        ));
    }

    // Measure every key's exact embedding weight on a throwaway
    // in-process service with an effectively unbounded cache, then size
    // the per-shard budget to hold either shard's subset but not both.
    let meter = AtlasService::start_with(
        model.clone(),
        cfg.clone(),
        ServiceConfig {
            workers: 1,
            embedding_cache_bytes: 1 << 30,
            ..ServiceConfig::default()
        },
    );
    let mut weights = Vec::with_capacity(keys.len());
    for key in &keys {
        let before = meter.stats().embedding_cache.weight;
        meter
            .call(key.clone())
            .map_err(|e| format!("weight probe {}/{:?}: {e}", key.design, key.workload))?;
        let weight = meter.stats().embedding_cache.weight - before;
        if weight == 0 {
            return Err(format!(
                "weight probe {}/{:?} cached nothing",
                key.design, key.workload
            ));
        }
        weights.push(weight);
    }
    drop(meter);
    let bytes_on = |owner: usize| -> usize {
        weights
            .iter()
            .zip(&owners)
            .filter(|(_, &o)| o == owner)
            .map(|(w, _)| w)
            .sum()
    };
    let (bytes_a, bytes_b) = (bytes_on(0), bytes_on(1));
    let working_set_bytes = bytes_a + bytes_b;
    let budget = bytes_a.max(bytes_b) + 1;

    let dir = std::env::temp_dir().join(format!("atlas-shard-bench-{}", std::process::id()));
    let scenario = (|| -> Result<ShardScaleoutScenario, String> {
        let registry_dir = dir.join("registry");
        let registry = ModelRegistry::open(&registry_dir).map_err(|e| format!("registry: {e}"))?;
        registry
            .save("bench-shard", model, cfg)
            .map_err(|e| format!("save bench-shard: {e}"))?;
        let snapshot_a = dir.join("shard0.snapshot");
        let snapshot_b = dir.join("shard1.snapshot");

        // Phase 1: the whole working set against one shard whose cache
        // budget cannot hold it — the LRU sheds keys just before their
        // next use, so throughput is recompute-bound.
        let shard_a = spawn_shard(&registry_dir, "bench-shard", 0, budget, &snapshot_a)?;
        let single_proxy = spawn_proxy(vec![shard_a.info.clone()])?;
        let single_addr = single_proxy.addr().to_string();
        for key in &keys {
            let mut writer =
                TcpStream::connect(&single_addr).map_err(|e| format!("prewarm connect: {e}"))?;
            let mut reader = BufReader::new(writer.try_clone().map_err(|e| e.to_string())?);
            roundtrip(&mut writer, &mut reader, key)?;
        }
        let single_shard = hammer(&single_addr, &keys, 4, 2)?;
        single_proxy
            .shutdown()
            .map_err(|e| format!("single proxy shutdown: {e}"))?;

        // Phase 2: the same traffic with a second shard. Each shard now
        // holds its ring share, so the fleet serves from cache.
        let shard_b = spawn_shard(&registry_dir, "bench-shard", 1, budget, &snapshot_b)?;
        let dual_proxy = spawn_proxy(vec![shard_a.info.clone(), shard_b.info.clone()])?;
        let dual_addr = dual_proxy.addr().to_string();
        let mut writer =
            TcpStream::connect(&dual_addr).map_err(|e| format!("dual connect: {e}"))?;
        let _ = writer.set_nodelay(true);
        let mut reader = BufReader::new(writer.try_clone().map_err(|e| e.to_string())?);
        for key in &keys {
            roundtrip(&mut writer, &mut reader, key)?;
        }
        let dual_shard = hammer(&dual_addr, &keys, 4, 4)?;

        // Steady-state sample of shard B's keys: replies recorded for
        // the post-restart parity check, latencies for the steady p50.
        let mut steady_lat = Vec::new();
        let mut steady_replies = Vec::new();
        for round in 0..3 {
            for key in &shard_b_keys {
                let t = Instant::now();
                let reply = roundtrip(&mut writer, &mut reader, key)?;
                steady_lat.push(t.elapsed().as_secs_f64() * 1e3);
                if !reply.cache_hit {
                    return Err(format!(
                        "steady round {round} missed the cache on {}/{:?}",
                        key.design, key.workload
                    ));
                }
                if round == 0 {
                    steady_replies.push(reply);
                }
            }
        }
        dual_proxy
            .shutdown()
            .map_err(|e| format!("dual proxy shutdown: {e}"))?;

        // Drain shard B (it writes its snapshot on the way out), then
        // restart it from that snapshot and re-run its keys.
        shard_b.shutdown()?;
        let snapshot_entries = std::fs::read_to_string(&snapshot_b)
            .map_err(|e| format!("read snapshot: {e}"))?
            .lines()
            .filter(|line| !line.trim().is_empty())
            .count()
            .saturating_sub(1); // header line
        let shard_b = spawn_shard(&registry_dir, "bench-shard", 1, budget, &snapshot_b)?;
        let restored_proxy = spawn_proxy(vec![shard_a.info.clone(), shard_b.info.clone()])?;
        let restored_addr = restored_proxy.addr().to_string();
        let mut writer =
            TcpStream::connect(&restored_addr).map_err(|e| format!("restored connect: {e}"))?;
        let _ = writer.set_nodelay(true);
        let mut reader = BufReader::new(writer.try_clone().map_err(|e| e.to_string())?);
        let mut restored_lat = Vec::new();
        let mut restored_first_round_all_hits = true;
        let mut restored_parity = true;
        for round in 0..3 {
            for (key, steady) in shard_b_keys.iter().zip(&steady_replies) {
                let t = Instant::now();
                let reply = roundtrip(&mut writer, &mut reader, key)?;
                restored_lat.push(t.elapsed().as_secs_f64() * 1e3);
                if round == 0 {
                    restored_first_round_all_hits &= reply.cache_hit;
                    restored_parity &= reply.per_cycle_total_w == steady.per_cycle_total_w;
                }
            }
        }
        let stats = tcp_stats(&shard_b.info.addr)?;
        restored_proxy
            .shutdown()
            .map_err(|e| format!("restored proxy shutdown: {e}"))?;
        shard_b.shutdown()?;
        shard_a.shutdown()?;

        let p50 = |lat: &mut Vec<f64>| {
            lat.sort_by(|a, b| a.total_cmp(b));
            lat[lat.len() / 2]
        };
        let steady_warm_p50_ms = p50(&mut steady_lat);
        let restored_warm_p50_ms = p50(&mut restored_lat);
        Ok(ShardScaleoutScenario {
            shards: 2,
            keys: keys.len(),
            cache_budget_bytes_per_shard: budget,
            working_set_bytes,
            scaleout: dual_shard.throughput_rps / single_shard.throughput_rps.max(1e-9),
            single_shard,
            dual_shard,
            snapshot_entries,
            restored_first_round_all_hits,
            restored_embeddings_computed: stats.embeddings_computed,
            restored_shard_id: stats.shard_id,
            restored_parity,
            steady_warm_p50_ms,
            restored_warm_p50_ms,
            restored_p50_ratio: restored_warm_p50_ms / steady_warm_p50_ms.max(1e-9),
        })
    })();
    let _ = std::fs::remove_dir_all(&dir);
    scenario
}

fn main() -> ExitCode {
    if std::env::args().any(|arg| arg == "--shard-server") {
        return run_shard_server();
    }
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut cfg = ExperimentConfig::quick();
    cfg.scale = args.scale;
    cfg.cycles = args.train_cycles;
    println!(
        "training ATLAS at scale {} ({} cycles) for the serve bench...",
        cfg.scale, cfg.cycles
    );
    let t0 = Instant::now();
    let trained = train_atlas(&cfg);
    let train_s = t0.elapsed().as_secs_f64();
    println!("trained in {train_s:.1}s");
    println!(
        "isa {} — f64 kernel {}",
        atlas_nn::simd::isa_label(),
        atlas_nn::simd::kernel_label(atlas_nn::simd::active_kernel())
    );

    let service = Arc::new(AtlasService::start_with(
        trained.model.clone(),
        cfg.clone(),
        ServiceConfig {
            workers: args.clients.max(args.dup_clients).max(1),
            embed_threads: args.embed_threads,
            ..ServiceConfig::default()
        },
    ));

    // The paper's unseen test designs under both workload presets.
    let keys: Vec<PredictRequest> = ["C2", "C4"]
        .iter()
        .flat_map(|d| {
            ["W1", "W2"]
                .iter()
                .map(|w| PredictRequest::new(*d, *w, args.cycles))
                .collect::<Vec<_>>()
        })
        .collect();

    // Cold pass: empty caches, serial so each request's latency is the
    // full design + simulation + embedding pipeline.
    let t1 = Instant::now();
    let mut cold_lat = Vec::new();
    for req in &keys {
        match service.call(req.clone()) {
            Ok(resp) => {
                assert!(!resp.cache_hit, "cold pass must miss the cache");
                cold_lat.push(resp.latency_ms);
            }
            Err(e) => {
                eprintln!("error: cold request failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let cold = phase(cold_lat, t1.elapsed().as_secs_f64());
    println!(
        "cold: {} requests, mean {:.1} ms, p95 {:.1} ms",
        cold.requests, cold.mean_ms, cold.p95_ms
    );

    // Warm pass: every key repeated from concurrent clients; all hits.
    let t2 = Instant::now();
    let warm_lat: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|c| {
                let service = Arc::clone(&service);
                let keys = &keys;
                scope.spawn(move || {
                    let mut lat = Vec::new();
                    for round in 0..args.repeat {
                        for k in 0..keys.len() {
                            // Stagger start offsets so clients collide on
                            // the same cache entries.
                            let req = &keys[(k + c + round) % keys.len()];
                            match service.call(req.clone()) {
                                Ok(resp) => {
                                    assert!(resp.cache_hit, "warm pass must hit the cache");
                                    lat.push(resp.latency_ms);
                                }
                                Err(e) => panic!("warm request failed: {e}"),
                            }
                        }
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let warm = phase(warm_lat, t2.elapsed().as_secs_f64());
    println!(
        "warm: {} requests, mean {:.2} ms, p95 {:.2} ms, {:.0} req/s",
        warm.requests, warm.mean_ms, warm.p95_ms, warm.throughput_rps
    );

    // Idle-connection pass: the reactor front door with parked sockets.
    let idle = match run_idle_scenario(&service, &keys, args.idle_conns, args.repeat) {
        Ok(idle) => idle,
        Err(e) => {
            eprintln!("error: idle scenario: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "idle: {} parked connections (+{} threads), active p50 {:.2} ms, {:.0} req/s",
        idle.connections, idle.thread_delta, idle.active.p50_ms, idle.active.throughput_rps
    );

    // Duplicate-key pass: single-flight under concurrent cold demand.
    let dupkey = match run_dupkey_scenario(&service, args.cycles, args.dup_clients) {
        Ok(dupkey) => dupkey,
        Err(e) => {
            eprintln!("error: dupkey scenario: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "dupkey: {} clients -> {} embedding computed, {} coalesced, {} cache hits",
        dupkey.clients, dupkey.embeddings_computed, dupkey.coalesced, dupkey.cache_hits
    );

    // Registered-workload pass: one registration, many by-name uses.
    let regwl = match run_regwl_scenario(&service, args.cycles, args.repeat) {
        Ok(regwl) => regwl,
        Err(e) => {
            eprintln!("error: regwl scenario: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "regwl: {} by-name requests -> {} computed, {} cache hits, p50 {:.2} ms",
        regwl.requests, regwl.embeddings_computed, regwl.cache_hits, regwl.latency.p50_ms
    );

    // Multi-model pass: two serving names over one set of weights.
    let multimodel = match run_multimodel_scenario(&trained.model, &cfg, args.cycles) {
        Ok(multimodel) => multimodel,
        Err(e) => {
            eprintln!("error: multimodel scenario: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "multimodel: {} models, parity {}, per-model caches {:?}",
        multimodel.models,
        multimodel.name_addressed_parity,
        multimodel
            .per_model
            .iter()
            .map(|m| (m.model.as_str(), m.embedding_cache_len))
            .collect::<Vec<_>>()
    );

    // Hot-reload pass: control-plane churn under live traffic.
    let reload = match run_reload_scenario(&service, &trained.model, &cfg, args.cycles, args.repeat)
    {
        Ok(reload) => reload,
        Err(e) => {
            eprintln!("error: reload scenario: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "reload: {} load/unload cycles under {} warm requests ({} errors), p50 {:.2} ms",
        reload.reload_cycles,
        reload.requests_during_churn,
        reload.errors_during_churn,
        reload.during_churn.p50_ms
    );

    // Quota-storm pass: per-model quotas under a cold storm.
    let quota_storm = match run_quota_storm_scenario(
        &trained.model,
        &cfg,
        args.cycles,
        args.storm_clients.max(1),
    ) {
        Ok(quota_storm) => quota_storm,
        Err(e) => {
            eprintln!("error: quota-storm scenario: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "quota-storm: victim p50 {:.2} ms under storm vs {:.2} ms idle ({:.2}x), \
         storm queued {} / rejected {} / computed {}",
        quota_storm.victim_storm_p50_ms,
        quota_storm.victim_idle_p50_ms,
        quota_storm.p50_ratio,
        quota_storm.storm_queued,
        quota_storm.storm_rejected,
        quota_storm.storm_embeddings_computed
    );

    // Edit-loop pass: incremental `predict_delta` on a 1-sub-module edit
    // vs a cold full recompute of the same revision.
    let edit_loop = match run_edit_loop_scenario(&trained.model, &cfg, args.cycles, args.repeat) {
        Ok(edit_loop) => edit_loop,
        Err(e) => {
            eprintln!("error: edit-loop scenario: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "edit-loop: {} edits of 1/{} sub-modules, delta p50 {:.2} ms vs full {:.2} ms \
         ({:.2}x), reused {} / recomputed {} cycle-items, parity {}",
        edit_loop.edits,
        edit_loop.submodules,
        edit_loop.delta.p50_ms,
        edit_loop.full.p50_ms,
        edit_loop.delta_speedup,
        edit_loop.reused_cycles,
        edit_loop.recomputed_cycles,
        edit_loop.parity
    );

    // Shard-scaleout pass: 1 vs 2 shard processes behind the proxy,
    // then a drain/snapshot/restart round trip.
    let shard_scaleout = match run_shard_scaleout_scenario(&trained.model, &cfg, args.cycles) {
        Ok(shard_scaleout) => shard_scaleout,
        Err(e) => {
            eprintln!("error: shard-scaleout scenario: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "shard-scaleout: {:.0} req/s on 1 shard -> {:.0} req/s on 2 ({:.2}x); \
         restored shard recomputed {} (p50 {:.2} ms vs steady {:.2} ms)",
        shard_scaleout.single_shard.throughput_rps,
        shard_scaleout.dual_shard.throughput_rps,
        shard_scaleout.scaleout,
        shard_scaleout.restored_embeddings_computed,
        shard_scaleout.restored_warm_p50_ms,
        shard_scaleout.steady_warm_p50_ms
    );

    let stats = service.stats();
    let report = BenchReport {
        isa: atlas_nn::simd::isa_label().to_owned(),
        kernel: atlas_nn::simd::kernel_label(atlas_nn::simd::active_kernel()).to_owned(),
        scale: args.scale,
        cycles: args.cycles,
        clients: args.clients,
        embed_threads: args.embed_threads,
        train_s,
        cold_over_warm_speedup: cold.mean_ms / warm.mean_ms.max(1e-9),
        cache_hit_latency_below_cold: warm.mean_ms < cold.mean_ms,
        embedding_cache_hits: stats.embedding_cache.hits,
        embedding_cache_misses: stats.embedding_cache.misses,
        embedding_cache_bytes: stats.embedding_cache.weight,
        embedding_cache_budget_bytes: stats.embedding_cache.budget,
        cold,
        warm,
        idle,
        dupkey,
        regwl,
        multimodel,
        reload,
        quota_storm,
        edit_loop,
        shard_scaleout,
    };
    println!(
        "cache-hit speedup over cold: {:.1}x (hit latency below cold: {})",
        report.cold_over_warm_speedup, report.cache_hit_latency_below_cold
    );

    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&args.out, json) {
                eprintln!("error: write {}: {e}", args.out);
                return ExitCode::FAILURE;
            }
            println!("(wrote {})", args.out);
        }
        Err(e) => {
            eprintln!("error: serialize report: {e}");
            return ExitCode::FAILURE;
        }
    }
    if !report.cache_hit_latency_below_cold {
        eprintln!("error: cache-hit latency was not below cold latency");
        return ExitCode::FAILURE;
    }
    if report.idle.thread_delta != 0 {
        eprintln!(
            "error: {} idle connections grew the process by {} threads",
            report.idle.connections, report.idle.thread_delta
        );
        return ExitCode::FAILURE;
    }
    if report.dupkey.embeddings_computed != 1 {
        eprintln!(
            "error: single-flight computed {} embeddings for one key",
            report.dupkey.embeddings_computed
        );
        return ExitCode::FAILURE;
    }
    if report.regwl.embeddings_computed != 1 {
        eprintln!(
            "error: a registered workload computed {} embeddings for one key",
            report.regwl.embeddings_computed
        );
        return ExitCode::FAILURE;
    }
    if !report.multimodel.name_addressed_parity || !report.multimodel.named_route_shares_cache {
        eprintln!("error: multi-model routing broke parity or cache sharing");
        return ExitCode::FAILURE;
    }
    if report.reload.errors_during_churn != 0
        || !report.reload.loaded_model_parity
        || !report.reload.unknown_after_unload
        || report.reload.reload_cycles == 0
    {
        eprintln!(
            "error: reload scenario failed ({} errors during churn, parity {}, \
             unknown-after-unload {}, {} cycles)",
            report.reload.errors_during_churn,
            report.reload.loaded_model_parity,
            report.reload.unknown_after_unload,
            report.reload.reload_cycles
        );
        return ExitCode::FAILURE;
    }
    if report.quota_storm.storm_queued == 0 {
        eprintln!("error: quota-storm scenario never saturated the storm quota");
        return ExitCode::FAILURE;
    }
    if report.quota_storm.p50_ratio > 3.0 {
        eprintln!(
            "error: victim p50 under storm regressed {:.2}x over idle (> 3x allowed)",
            report.quota_storm.p50_ratio
        );
        return ExitCode::FAILURE;
    }
    if !report.edit_loop.parity || !report.edit_loop.base_hit || report.edit_loop.reused_cycles == 0
    {
        eprintln!(
            "error: edit-loop deltas broke correctness (parity {}, base hit {}, \
             {} reused cycle-items)",
            report.edit_loop.parity, report.edit_loop.base_hit, report.edit_loop.reused_cycles
        );
        return ExitCode::FAILURE;
    }
    if report.edit_loop.delta_speedup < DELTA_SPEEDUP_FLOOR {
        eprintln!(
            "error: delta p50 was only {:.2}x faster than a full recompute \
             (>= {DELTA_SPEEDUP_FLOOR}x required)",
            report.edit_loop.delta_speedup
        );
        return ExitCode::FAILURE;
    }
    if report.shard_scaleout.scaleout < 1.6 {
        eprintln!(
            "error: two shards scaled warm throughput only {:.2}x over one (>= 1.6x required)",
            report.shard_scaleout.scaleout
        );
        return ExitCode::FAILURE;
    }
    if report.shard_scaleout.restored_embeddings_computed != 0
        || !report.shard_scaleout.restored_first_round_all_hits
        || !report.shard_scaleout.restored_parity
    {
        eprintln!(
            "error: restarting from a snapshot was not warm ({} recomputes, all hits {}, \
             parity {})",
            report.shard_scaleout.restored_embeddings_computed,
            report.shard_scaleout.restored_first_round_all_hits,
            report.shard_scaleout.restored_parity
        );
        return ExitCode::FAILURE;
    }
    if report.shard_scaleout.restored_p50_ratio > 2.0 {
        eprintln!(
            "error: restored warm p50 regressed {:.2}x over steady (> 2x allowed)",
            report.shard_scaleout.restored_p50_ratio
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
