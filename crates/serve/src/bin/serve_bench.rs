//! Load generator for the prediction service: measures cold-start vs
//! cache-hit latency and warm throughput, writing `BENCH_serve.json`.
//!
//! ```text
//! serve_bench [--out PATH] [--scale F] [--train-cycles N] [--cycles N]
//!             [--clients N] [--repeat N]
//! ```
//!
//! The bench trains a small model, starts an in-process service, then
//! runs two phases over every (design, workload) pair of the unseen test
//! designs: a **cold** pass on an empty cache (every request pays design
//! generation, simulation, and encoder forwards) and a **warm** pass of
//! `--repeat` rounds fired from `--clients` concurrent client threads
//! (every request is an embedding-cache hit, paying only the GBDT heads).

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use atlas_core::pipeline::{train_atlas, ExperimentConfig};
use atlas_serve::{AtlasService, PredictRequest, ServiceConfig};
use serde::Serialize;

struct Args {
    out: String,
    scale: f64,
    train_cycles: usize,
    cycles: usize,
    clients: usize,
    repeat: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: "BENCH_serve.json".into(),
        scale: 0.2,
        train_cycles: 48,
        cycles: 32,
        clients: 4,
        repeat: 8,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--out" => args.out = value("--out")?,
            "--scale" => args.scale = value("--scale")?.parse().map_err(|e| format!("{e}"))?,
            "--train-cycles" => {
                args.train_cycles = value("--train-cycles")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--cycles" => args.cycles = value("--cycles")?.parse().map_err(|e| format!("{e}"))?,
            "--clients" => {
                args.clients = value("--clients")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--repeat" => args.repeat = value("--repeat")?.parse().map_err(|e| format!("{e}"))?,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.clients == 0 || args.repeat == 0 || args.cycles == 0 {
        return Err("--clients, --repeat, and --cycles must be positive".into());
    }
    Ok(args)
}

/// Latency rollup of one phase, milliseconds.
#[derive(Debug, Clone, Serialize)]
struct Phase {
    requests: usize,
    mean_ms: f64,
    p50_ms: f64,
    p95_ms: f64,
    max_ms: f64,
    wall_s: f64,
    throughput_rps: f64,
}

fn phase(mut latencies_ms: Vec<f64>, wall_s: f64) -> Phase {
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let n = latencies_ms.len();
    assert!(n > 0, "phase() needs at least one latency sample");
    let pct = |p: f64| latencies_ms[((n as f64 * p) as usize).min(n - 1)];
    Phase {
        requests: n,
        mean_ms: latencies_ms.iter().sum::<f64>() / n as f64,
        p50_ms: pct(0.50),
        p95_ms: pct(0.95),
        max_ms: latencies_ms[n - 1],
        wall_s,
        throughput_rps: n as f64 / wall_s.max(1e-9),
    }
}

#[derive(Debug, Serialize)]
struct BenchReport {
    scale: f64,
    cycles: usize,
    clients: usize,
    train_s: f64,
    cold: Phase,
    warm: Phase,
    cold_over_warm_speedup: f64,
    cache_hit_latency_below_cold: bool,
    embedding_cache_hits: u64,
    embedding_cache_misses: u64,
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut cfg = ExperimentConfig::quick();
    cfg.scale = args.scale;
    cfg.cycles = args.train_cycles;
    println!(
        "training ATLAS at scale {} ({} cycles) for the serve bench...",
        cfg.scale, cfg.cycles
    );
    let t0 = Instant::now();
    let trained = train_atlas(&cfg);
    let train_s = t0.elapsed().as_secs_f64();
    println!("trained in {train_s:.1}s");

    let service = Arc::new(AtlasService::start_with(
        trained.model,
        cfg,
        ServiceConfig {
            workers: args.clients.max(1),
            ..ServiceConfig::default()
        },
    ));

    // The paper's unseen test designs under both workload presets.
    let keys: Vec<PredictRequest> = ["C2", "C4"]
        .iter()
        .flat_map(|d| {
            ["W1", "W2"]
                .iter()
                .map(|w| PredictRequest::new(*d, *w, args.cycles))
                .collect::<Vec<_>>()
        })
        .collect();

    // Cold pass: empty caches, serial so each request's latency is the
    // full design + simulation + embedding pipeline.
    let t1 = Instant::now();
    let mut cold_lat = Vec::new();
    for req in &keys {
        match service.call(req.clone()) {
            Ok(resp) => {
                assert!(!resp.cache_hit, "cold pass must miss the cache");
                cold_lat.push(resp.latency_ms);
            }
            Err(e) => {
                eprintln!("error: cold request failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let cold = phase(cold_lat, t1.elapsed().as_secs_f64());
    println!(
        "cold: {} requests, mean {:.1} ms, p95 {:.1} ms",
        cold.requests, cold.mean_ms, cold.p95_ms
    );

    // Warm pass: every key repeated from concurrent clients; all hits.
    let t2 = Instant::now();
    let warm_lat: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|c| {
                let service = Arc::clone(&service);
                let keys = &keys;
                scope.spawn(move || {
                    let mut lat = Vec::new();
                    for round in 0..args.repeat {
                        for k in 0..keys.len() {
                            // Stagger start offsets so clients collide on
                            // the same cache entries.
                            let req = &keys[(k + c + round) % keys.len()];
                            match service.call(req.clone()) {
                                Ok(resp) => {
                                    assert!(resp.cache_hit, "warm pass must hit the cache");
                                    lat.push(resp.latency_ms);
                                }
                                Err(e) => panic!("warm request failed: {e}"),
                            }
                        }
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let warm = phase(warm_lat, t2.elapsed().as_secs_f64());
    println!(
        "warm: {} requests, mean {:.2} ms, p95 {:.2} ms, {:.0} req/s",
        warm.requests, warm.mean_ms, warm.p95_ms, warm.throughput_rps
    );

    let stats = service.stats();
    let report = BenchReport {
        scale: args.scale,
        cycles: args.cycles,
        clients: args.clients,
        train_s,
        cold_over_warm_speedup: cold.mean_ms / warm.mean_ms.max(1e-9),
        cache_hit_latency_below_cold: warm.mean_ms < cold.mean_ms,
        embedding_cache_hits: stats.embedding_cache.hits,
        embedding_cache_misses: stats.embedding_cache.misses,
        cold,
        warm,
    };
    println!(
        "cache-hit speedup over cold: {:.1}x (hit latency below cold: {})",
        report.cold_over_warm_speedup, report.cache_hit_latency_below_cold
    );

    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&args.out, json) {
                eprintln!("error: write {}: {e}", args.out);
                return ExitCode::FAILURE;
            }
            println!("(wrote {})", args.out);
        }
        Err(e) => {
            eprintln!("error: serialize report: {e}");
            return ExitCode::FAILURE;
        }
    }
    if !report.cache_hit_latency_below_cold {
        eprintln!("error: cache-hit latency was not below cold latency");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
