//! The long-lived prediction service: a worker pool over a **catalog of
//! hosted models** and a server-side workload library, with per-model
//! two-level LRU caches.
//!
//! Request execution has three stages with very different costs:
//!
//! 1. **Design materialization** — generate the gate-level netlist and
//!    build its sub-module graph data. Depends only on the design name,
//!    so it is cached per design (per model, since models may be trained
//!    at different scales).
//! 2. **Trace embedding** — simulate the workload and run the encoder
//!    over every (sub-module, cycle). Deterministic in (design, workload,
//!    cycles), so the resulting [`TraceEmbeddings`] are cached under that
//!    key — admitted against a **byte budget** sized from
//!    [`TraceEmbeddings::approx_bytes`]. This stage dominates cold
//!    latency; concurrent cold requests for the same key on the same
//!    model are **single-flighted**: one request computes, the rest block
//!    on the in-flight result instead of duplicating the work.
//! 3. **Head evaluation** — GBDT heads + memory model over the cached
//!    embeddings. Cheap; this is all a fully-warm request pays.
//!
//! # Multi-model routing
//!
//! One service hosts any number of named models (a [`ModelCatalog`]);
//! requests route by their optional `model` field, defaulting to the
//! catalog's default entry. Every model owns its embedding cache, design
//! cache, and single-flight map — models never share or evict each
//! other's entries, and [`AtlasService::stats`] reports occupancy per
//! model. Routing is name-only: a request answered by model `m` is
//! bit-identical whether `m` was addressed explicitly or as the default.
//!
//! # The workload library
//!
//! Clients may register a phase schedule once under a name
//! ([`AtlasService::register_workload`], wire verb `register_workload`)
//! and reference it from any later request via `workload_name`. The
//! library is shared across models; cached results are keyed by the
//! schedule's fingerprint, so re-registering a name with a different
//! schedule can never serve stale results.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Instant;

use atlas_core::features::{build_submodule_data, SubmoduleData};
use atlas_core::{AtlasModel, ExperimentConfig, TraceEmbeddings};
use atlas_liberty::Library;
use atlas_netlist::Design;
use atlas_sim::{schedule_fingerprint, simulate, PhasedWorkload, WorkloadPhase};
use serde::{Deserialize, Serialize};

use crate::cache::{CacheStats, LruCache};
use crate::error::ServeError;
use crate::protocol::{summarize, PredictRequest, PredictResponse};
use crate::registry::{ModelCatalog, SavedModel};

/// Tuning knobs of one service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads answering requests concurrently (shared by every
    /// hosted model).
    pub workers: usize,
    /// Per-model byte budget of the (design, workload, cycles) →
    /// embeddings cache, accounted with
    /// [`TraceEmbeddings::approx_bytes`]. An embedding larger than the
    /// whole budget is served but never cached.
    pub embedding_cache_bytes: usize,
    /// Per-model capacity (entries) of the design → netlist + sub-module
    /// data cache.
    pub design_cache: usize,
    /// Upper bound on `cycles` per request (backpressure against
    /// accidental million-cycle requests).
    pub max_cycles: usize,
    /// Upper bound on phases per schedule — inline or registered.
    pub max_phases: usize,
    /// Upper bound on schedules in the server-side workload library.
    pub max_registered_workloads: usize,
    /// Threads used *inside* one request's embedding stage. Kept low by
    /// default because concurrency comes from the worker pool.
    pub embed_threads: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 4,
            embedding_cache_bytes: 256 << 20,
            design_cache: 16,
            max_cycles: 4096,
            max_phases: 64,
            max_registered_workloads: 1024,
            embed_threads: 1,
        }
    }
}

/// Cache key of stage two. `schedule_fp` is 0 for preset workloads and a
/// fingerprint of the phase schedule (inline or registered) otherwise, so
/// two schedule-driven requests share an entry exactly when their
/// schedules match. Model identity is not part of the key: each model
/// owns a separate cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TraceKey {
    design: String,
    workload: String,
    cycles: usize,
    schedule_fp: u64,
}

/// Stage-one cache value: the materialized design.
struct DesignArtifacts {
    gate: Design,
    data: Vec<SubmoduleData>,
}

/// Identity of one hosted model, as reported by the `models` verb.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelInfo {
    /// Serving name (the `model` field of requests routed to it).
    pub name: String,
    /// On-disk format version of the loaded model file.
    pub format_version: u32,
    /// FNV-1a fingerprint of the model's training configuration.
    pub config_fingerprint: u64,
}

/// One registered schedule of the workload library, as reported by the
/// `workloads` and `register_workload` verbs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisteredWorkload {
    /// Library name (the `workload_name` field of requests using it).
    pub name: String,
    /// Number of phases in the stored schedule.
    pub phases: usize,
    /// Schedule fingerprint — the cache-key component, so clients can
    /// correlate registry state with cache behavior.
    pub fingerprint: u64,
}

/// Per-model slice of [`ServiceStats`].
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ModelStats {
    /// Serving name of the model these counters belong to.
    pub model: String,
    /// Requests routed to this model (including errors).
    pub requests: u64,
    /// Requests routed to this model that returned an error.
    pub errors: u64,
    /// Cold embeddings this model computed.
    pub embeddings_computed: u64,
    /// Requests that waited on this model's in-flight computations.
    pub coalesced_requests: u64,
    /// This model's embedding-cache counters (`weight`/`budget` bytes).
    pub embedding_cache: CacheStats,
    /// This model's design-cache counters (`weight`/`budget` entries).
    pub design_cache: CacheStats,
}

/// Aggregate service counters, with a per-model breakdown.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Requests answered (including errors, including requests that
    /// failed before resolving a model).
    pub requests: u64,
    /// Requests that returned an error.
    pub errors: u64,
    /// Cold embeddings actually computed (one full simulate + encode
    /// pipeline each). With single-flight, N concurrent cold requests
    /// for one key bump this by exactly 1.
    pub embeddings_computed: u64,
    /// Requests that waited on another request's in-flight computation
    /// instead of recomputing it.
    pub coalesced_requests: u64,
    /// Embedding-cache counters summed over models (`weight`/`budget` in
    /// bytes).
    pub embedding_cache: CacheStats,
    /// Design-cache counters summed over models (`weight`/`budget` in
    /// entries).
    pub design_cache: CacheStats,
    /// Per-model breakdown, sorted by serving name.
    pub models: Vec<ModelStats>,
}

/// Sum two cache-counter snapshots (used for the cross-model aggregate).
fn add_cache_stats(a: CacheStats, b: CacheStats) -> CacheStats {
    CacheStats {
        hits: a.hits + b.hits,
        misses: a.misses + b.misses,
        len: a.len + b.len,
        weight: a.weight + b.weight,
        budget: a.budget + b.budget,
    }
}

/// The in-flight slot of one cold (design, workload, cycles) computation.
/// The leader fills `result` and notifies; followers wait on `done`.
struct Flight {
    result: Mutex<Option<Result<Arc<TraceEmbeddings>, ServeError>>>,
    done: Condvar,
}

/// Everything one hosted model owns: weights, experiment config, caches,
/// the single-flight map, and its counters.
struct ModelState {
    name: String,
    format_version: u32,
    config_fingerprint: u64,
    model: AtlasModel,
    experiment: ExperimentConfig,
    lib: Library,
    embeddings: LruCache<TraceKey, TraceEmbeddings>,
    designs: LruCache<String, DesignArtifacts>,
    inflight: Mutex<HashMap<TraceKey, Arc<Flight>>>,
    requests: AtomicU64,
    errors: AtomicU64,
    embeds_computed: AtomicU64,
    coalesced: AtomicU64,
}

impl ModelState {
    fn new(name: String, saved: SavedModel, cfg: &ServiceConfig) -> ModelState {
        let lib = saved.config.library();
        ModelState {
            name,
            format_version: saved.header.format_version,
            config_fingerprint: saved.header.config_fingerprint,
            model: saved.model,
            experiment: saved.config,
            lib,
            embeddings: LruCache::with_budget(cfg.embedding_cache_bytes),
            designs: LruCache::new(cfg.design_cache),
            inflight: Mutex::new(HashMap::new()),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            embeds_computed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    fn stats(&self) -> ModelStats {
        ModelStats {
            model: self.name.clone(),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            embeddings_computed: self.embeds_computed.load(Ordering::Relaxed),
            coalesced_requests: self.coalesced.load(Ordering::Relaxed),
            embedding_cache: self.embeddings.stats(),
            design_cache: self.designs.stats(),
        }
    }
}

/// A schedule stored in the workload library.
struct StoredWorkload {
    phases: Vec<WorkloadPhase>,
    fingerprint: u64,
}

struct Shared {
    models: HashMap<String, Arc<ModelState>>,
    default_model: String,
    workloads: Mutex<HashMap<String, StoredWorkload>>,
    cfg: ServiceConfig,
    requests: AtomicU64,
    errors: AtomicU64,
}

/// The reply type of one request: the response, or the echoed request id
/// plus the typed error.
pub type Reply = Result<PredictResponse, (Option<u64>, ServeError)>;

/// Where a finished reply goes: a blocking channel ([`AtlasService::submit`])
/// or a callback invoked on the worker thread ([`AtlasService::submit_with`],
/// the reactor's non-blocking path).
enum ReplySink {
    Channel(mpsc::Sender<Reply>),
    Callback(Box<dyn FnOnce(Reply) + Send>),
}

impl ReplySink {
    fn send(self, reply: Reply) {
        match self {
            // A disconnected receiver just means the client went away.
            ReplySink::Channel(tx) => {
                let _ = tx.send(reply);
            }
            ReplySink::Callback(f) => f(reply),
        }
    }
}

struct Job {
    request: PredictRequest,
    reply: ReplySink,
}

#[derive(Default)]
struct QueueState {
    jobs: std::collections::VecDeque<Job>,
    shutdown: bool,
}

struct Queue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

/// A running prediction service. Cloneable handles are obtained by
/// wrapping it in an `Arc`; dropping the last handle shuts the workers
/// down.
pub struct AtlasService {
    shared: Arc<Shared>,
    queue: Arc<Queue>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl AtlasService {
    /// Start a single-model service from a registry-loaded model, served
    /// under its registry name (which is also the default model). A file
    /// whose header carries a name the catalog would reject (possible
    /// via `ModelRegistry::load_file`, which accepts files from outside
    /// any registry) is served under `default` instead.
    pub fn start(saved: SavedModel, cfg: ServiceConfig) -> AtlasService {
        let mut catalog = ModelCatalog::new();
        let name = if ModelCatalog::valid_name(&saved.header.name) {
            saved.header.name.clone()
        } else {
            "default".to_owned()
        };
        catalog
            .insert(name, saved)
            .expect("a validated or fallback name inserts into an empty catalog");
        AtlasService::start_catalog(catalog, cfg).expect("one-model catalog is nonempty")
    }

    /// Start a single-model service from an in-memory model and its
    /// training config, served under the name `default`.
    pub fn start_with(
        model: AtlasModel,
        experiment: ExperimentConfig,
        cfg: ServiceConfig,
    ) -> AtlasService {
        let mut catalog = ModelCatalog::new();
        catalog
            .insert_model("default", model, experiment)
            .expect("`default` is a valid catalog name");
        AtlasService::start_catalog(catalog, cfg).expect("one-model catalog is nonempty")
    }

    /// Start a service hosting every model of `catalog` behind one
    /// worker pool. Each model gets its own embedding/design caches and
    /// single-flight map, sized by `cfg`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Registry`] when the catalog is empty.
    pub fn start_catalog(
        catalog: ModelCatalog,
        cfg: ServiceConfig,
    ) -> Result<AtlasService, ServeError> {
        let (default_model, entries) = catalog
            .into_entries()
            .ok_or_else(|| ServeError::Registry("cannot serve an empty model catalog".into()))?;
        let models: HashMap<String, Arc<ModelState>> = entries
            .into_iter()
            .map(|(name, saved)| {
                let state = Arc::new(ModelState::new(name.clone(), saved, &cfg));
                (name, state)
            })
            .collect();
        let shared = Arc::new(Shared {
            models,
            default_model,
            workloads: Mutex::new(HashMap::new()),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            cfg,
        });
        let queue = Arc::new(Queue {
            state: Mutex::new(QueueState::default()),
            ready: Condvar::new(),
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let queue = Arc::clone(&queue);
                thread::spawn(move || worker_loop(&shared, &queue))
            })
            .collect();
        Ok(AtlasService {
            shared,
            queue,
            workers,
        })
    }

    fn enqueue(&self, request: PredictRequest, reply: ReplySink) {
        let mut state = self.queue.state.lock().expect("queue lock");
        if state.shutdown {
            drop(state);
            reply.send(Err((request.id, ServeError::Shutdown)));
        } else {
            state.jobs.push_back(Job { request, reply });
            drop(state);
            self.queue.ready.notify_one();
        }
    }

    /// Enqueue a request; the returned channel yields the reply.
    pub fn submit(&self, request: PredictRequest) -> mpsc::Receiver<Reply> {
        let (tx, rx) = mpsc::channel();
        self.enqueue(request, ReplySink::Channel(tx));
        rx
    }

    /// Enqueue a request whose reply is delivered to `callback` on the
    /// worker thread — the non-blocking submission path the event-loop
    /// front door uses. The callback must be cheap and must not block
    /// (it runs inside the worker pool).
    pub fn submit_with(
        &self,
        request: PredictRequest,
        callback: impl FnOnce(Reply) + Send + 'static,
    ) {
        self.enqueue(request, ReplySink::Callback(Box::new(callback)));
    }

    /// Answer one request, blocking until a worker finishes it.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`] the request produced.
    pub fn call(&self, request: PredictRequest) -> Result<PredictResponse, ServeError> {
        match self.submit(request).recv() {
            Ok(Ok(response)) => Ok(response),
            Ok(Err((_, error))) => Err(error),
            Err(_) => Err(ServeError::Shutdown),
        }
    }

    /// Aggregate counters plus the per-model breakdown.
    pub fn stats(&self) -> ServiceStats {
        let mut models: Vec<ModelStats> = self.shared.models.values().map(|m| m.stats()).collect();
        models.sort_by(|a, b| a.model.cmp(&b.model));
        let mut stats = ServiceStats {
            requests: self.shared.requests.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
            ..ServiceStats::default()
        };
        for m in &models {
            stats.embeddings_computed += m.embeddings_computed;
            stats.coalesced_requests += m.coalesced_requests;
            stats.embedding_cache = add_cache_stats(stats.embedding_cache, m.embedding_cache);
            stats.design_cache = add_cache_stats(stats.design_cache, m.design_cache);
        }
        stats.models = models;
        stats
    }

    /// Identity of every hosted model, sorted by serving name.
    pub fn models(&self) -> Vec<ModelInfo> {
        let mut infos: Vec<ModelInfo> = self
            .shared
            .models
            .values()
            .map(|m| ModelInfo {
                name: m.name.clone(),
                format_version: m.format_version,
                config_fingerprint: m.config_fingerprint,
            })
            .collect();
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    /// Serving name of the default model (requests without a `model`
    /// field route here).
    pub fn default_model(&self) -> &str {
        &self.shared.default_model
    }

    /// Store `phases` in the workload library under `name`, making it
    /// referenceable from any later request's `workload_name` field.
    /// Returns the stored summary and whether an existing schedule was
    /// replaced (safe: cache entries are keyed by schedule fingerprint,
    /// so a replaced schedule can never serve stale results).
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] for a bad name (empty, too long,
    /// non `[A-Za-z0-9._-]`, or shadowing a preset), a bad schedule
    /// (empty, over [`ServiceConfig::max_phases`], or failing
    /// [`PhasedWorkload::try_new`] validation), or a full library.
    pub fn register_workload(
        &self,
        name: &str,
        phases: Vec<WorkloadPhase>,
    ) -> Result<(RegisteredWorkload, bool), ServeError> {
        let bad = |msg: String| ServeError::InvalidRequest(msg);
        let name_ok = !name.is_empty()
            && name.len() <= 64
            && !name.starts_with('.')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
        if !name_ok {
            return Err(bad(format!(
                "bad workload name `{name}`: 1-64 chars of [A-Za-z0-9._-], not starting with `.`"
            )));
        }
        if PhasedWorkload::preset(name, 0).is_some() {
            return Err(bad(format!(
                "workload name `{name}` shadows a built-in preset"
            )));
        }
        if phases.len() > self.shared.cfg.max_phases {
            return Err(bad(format!(
                "schedule has {} phases, limit is {}",
                phases.len(),
                self.shared.cfg.max_phases
            )));
        }
        // Validate the schedule exactly like an inline `phases` field.
        PhasedWorkload::try_new(name, phases.clone(), 0)
            .map_err(|e| bad(format!("bad schedule: {e}")))?;
        let fingerprint = schedule_fingerprint(&phases);
        let mut library = self.shared.workloads.lock().expect("workload lock");
        if !library.contains_key(name) && library.len() >= self.shared.cfg.max_registered_workloads
        {
            return Err(bad(format!(
                "workload library is full ({} schedules)",
                library.len()
            )));
        }
        let summary = RegisteredWorkload {
            name: name.to_owned(),
            phases: phases.len(),
            fingerprint,
        };
        let replaced = library
            .insert(
                name.to_owned(),
                StoredWorkload {
                    phases,
                    fingerprint,
                },
            )
            .is_some();
        Ok((summary, replaced))
    }

    /// Every registered schedule, sorted by name.
    pub fn workloads(&self) -> Vec<RegisteredWorkload> {
        let library = self.shared.workloads.lock().expect("workload lock");
        let mut all: Vec<RegisteredWorkload> = library
            .iter()
            .map(|(name, w)| RegisteredWorkload {
                name: name.clone(),
                phases: w.phases.len(),
                fingerprint: w.fingerprint,
            })
            .collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }

    /// The experiment configuration the **default** model was trained
    /// under.
    pub fn experiment(&self) -> &ExperimentConfig {
        &self.shared.models[&self.shared.default_model].experiment
    }
}

impl Drop for AtlasService {
    fn drop(&mut self) {
        let drained = {
            let mut state = self.queue.state.lock().expect("queue lock");
            state.shutdown = true;
            // Pending jobs get a shutdown error rather than a hang.
            std::mem::take(&mut state.jobs)
        };
        for job in drained {
            job.reply.send(Err((job.request.id, ServeError::Shutdown)));
        }
        self.queue.ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared, queue: &Queue) {
    loop {
        let job = {
            let mut state = queue.state.lock().expect("queue lock");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = queue.ready.wait(state).expect("queue lock");
            }
        };
        let id = job.request.id;
        let reply = handle(shared, &job.request).map_err(|e| (id, e));
        shared.requests.fetch_add(1, Ordering::Relaxed);
        if reply.is_err() {
            shared.errors.fetch_add(1, Ordering::Relaxed);
        }
        job.reply.send(reply);
    }
}

/// The request's workload, resolved to either a preset name or a concrete
/// phase schedule (inline or from the library) before any cache is
/// touched — so error paths are uniform regardless of cache state, and an
/// unknown `workload_name` is a structured [`ServeError::UnknownWorkload`]
/// (with the request id preserved by the reply plumbing), never a generic
/// parse error.
enum WorkloadSpec {
    Preset(String),
    Schedule {
        label: String,
        phases: Vec<WorkloadPhase>,
        fingerprint: u64,
    },
}

impl WorkloadSpec {
    fn label(&self) -> &str {
        match self {
            WorkloadSpec::Preset(name) => name,
            WorkloadSpec::Schedule { label, .. } => label,
        }
    }

    fn fingerprint(&self) -> u64 {
        match self {
            WorkloadSpec::Preset(_) => 0,
            WorkloadSpec::Schedule { fingerprint, .. } => *fingerprint,
        }
    }
}

fn resolve_workload(shared: &Shared, request: &PredictRequest) -> Result<WorkloadSpec, ServeError> {
    let bad = |msg: &str| ServeError::InvalidRequest(msg.to_owned());
    match (&request.phases, &request.workload_name) {
        (Some(_), Some(_)) => Err(bad(
            "a request cannot carry both `phases` and `workload_name`",
        )),
        (Some(phases), None) => {
            if phases.len() > shared.cfg.max_phases {
                return Err(ServeError::InvalidRequest(format!(
                    "inline schedule has {} phases, limit is {}",
                    phases.len(),
                    shared.cfg.max_phases
                )));
            }
            let label = request
                .workload
                .clone()
                .ok_or_else(|| bad("an inline schedule needs a `workload` label"))?;
            let fingerprint = schedule_fingerprint(phases);
            Ok(WorkloadSpec::Schedule {
                label,
                phases: phases.clone(),
                fingerprint,
            })
        }
        (None, Some(name)) => {
            let library = shared.workloads.lock().expect("workload lock");
            match library.get(name) {
                Some(stored) => Ok(WorkloadSpec::Schedule {
                    label: name.clone(),
                    phases: stored.phases.clone(),
                    fingerprint: stored.fingerprint,
                }),
                None => Err(ServeError::UnknownWorkload(name.clone())),
            }
        }
        (None, None) => match &request.workload {
            Some(name) => Ok(WorkloadSpec::Preset(name.clone())),
            None => Err(bad(
                "a request must name a `workload`, a `workload_name`, or carry `phases`",
            )),
        },
    }
}

/// Build the simulation stimulus for a resolved workload.
fn build_workload(
    state: &ModelState,
    spec: &WorkloadSpec,
    seed: u64,
) -> Result<PhasedWorkload, ServeError> {
    match spec {
        WorkloadSpec::Preset(name) => Ok(state.experiment.try_workload(name, seed)?),
        WorkloadSpec::Schedule { label, phases, .. } => {
            PhasedWorkload::try_new(label.clone(), phases.clone(), seed)
                .map_err(|e| ServeError::InvalidRequest(format!("bad inline schedule: {e}")))
        }
    }
}

/// Role of one cold request in the single-flight protocol.
enum FlightRole {
    Leader(Arc<Flight>),
    Follower(Arc<Flight>),
}

/// Resolves the leader's flight slot on drop, so followers are never
/// stranded — even if the leader's computation panics, they observe a
/// typed error instead of hanging.
struct FlightGuard<'a> {
    state: &'a ModelState,
    key: &'a TraceKey,
    flight: &'a Arc<Flight>,
    resolved: bool,
}

impl FlightGuard<'_> {
    fn resolve(mut self, outcome: Result<Arc<TraceEmbeddings>, ServeError>) {
        self.publish(outcome);
        self.resolved = true;
    }

    fn publish(&self, outcome: Result<Arc<TraceEmbeddings>, ServeError>) {
        self.state
            .inflight
            .lock()
            .expect("inflight lock")
            .remove(self.key);
        let mut slot = self.flight.result.lock().expect("flight lock");
        *slot = Some(outcome);
        drop(slot);
        self.flight.done.notify_all();
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.resolved {
            self.publish(Err(ServeError::Shutdown));
        }
    }
}

/// Validate, route to a model, and answer one request, attributing the
/// outcome to the model's counters.
fn handle(shared: &Shared, request: &PredictRequest) -> Result<PredictResponse, ServeError> {
    if request.cycles == 0 {
        return Err(ServeError::InvalidRequest("cycles must be positive".into()));
    }
    if request.cycles > shared.cfg.max_cycles {
        return Err(ServeError::InvalidRequest(format!(
            "cycles {} exceeds the service limit {}",
            request.cycles, shared.cfg.max_cycles
        )));
    }
    let name = request.model.as_deref().unwrap_or(&shared.default_model);
    let state = shared
        .models
        .get(name)
        .ok_or_else(|| ServeError::UnknownModel(name.to_owned()))?;
    let result = handle_on_model(shared, state, request);
    state.requests.fetch_add(1, Ordering::Relaxed);
    if result.is_err() {
        state.errors.fetch_add(1, Ordering::Relaxed);
    }
    result
}

/// Answer one request on a resolved model.
fn handle_on_model(
    shared: &Shared,
    state: &ModelState,
    request: &PredictRequest,
) -> Result<PredictResponse, ServeError> {
    let started = Instant::now();
    // Resolve names before touching any cache so error paths are uniform
    // regardless of cache state.
    let design_cfg = state.experiment.try_design(&request.design)?;
    let spec = resolve_workload(shared, request)?;

    let key = TraceKey {
        design: request.design.clone(),
        workload: spec.label().to_owned(),
        cycles: request.cycles,
        schedule_fp: spec.fingerprint(),
    };
    let (embeddings, cache_hit, design_cache_hit) = match state.embeddings.get(&key) {
        Some(embeddings) => {
            // Fully warm: stage one and two both skipped. Validate the
            // workload anyway so a cached entry never masks a bad request
            // (it cannot be cached under an invalid workload, but the
            // check is cheap and keeps the invariant obvious).
            build_workload(state, &spec, design_cfg.seed)?;
            (embeddings, true, true)
        }
        None => {
            // Single-flight: the first cold request for a key computes;
            // concurrent duplicates wait on its in-flight slot. NOTE: a
            // follower occupies its worker thread while waiting, but can
            // never deadlock the pool — a leader only exists once it is
            // already running on a worker, so it always makes progress.
            let role = {
                let mut inflight = state.inflight.lock().expect("inflight lock");
                match inflight.get(&key) {
                    Some(flight) => FlightRole::Follower(Arc::clone(flight)),
                    None => {
                        let flight = Arc::new(Flight {
                            result: Mutex::new(None),
                            done: Condvar::new(),
                        });
                        inflight.insert(key.clone(), Arc::clone(&flight));
                        FlightRole::Leader(flight)
                    }
                }
            };
            match role {
                FlightRole::Follower(flight) => {
                    state.coalesced.fetch_add(1, Ordering::Relaxed);
                    let mut slot = flight.result.lock().expect("flight lock");
                    while slot.is_none() {
                        slot = flight.done.wait(slot).expect("flight lock");
                    }
                    let embeddings = slot.clone().expect("checked Some")?;
                    // The embedding work was shared, not redone: report it
                    // as a cache hit (the follower paid only head
                    // evaluation plus the wait).
                    (embeddings, true, true)
                }
                FlightRole::Leader(flight) => {
                    let guard = FlightGuard {
                        state,
                        key: &key,
                        flight: &flight,
                        resolved: false,
                    };
                    // Re-check the cache: between the miss and leadership
                    // another leader may have finished and populated it.
                    if let Some(embeddings) = state.embeddings.get(&key) {
                        guard.resolve(Ok(Arc::clone(&embeddings)));
                        build_workload(state, &spec, design_cfg.seed)?;
                        (embeddings, true, true)
                    } else {
                        let outcome =
                            compute_embeddings(shared, state, request, &spec, &design_cfg, &key);
                        match outcome {
                            Ok((embeddings, design_cache_hit)) => {
                                guard.resolve(Ok(Arc::clone(&embeddings)));
                                (embeddings, false, design_cache_hit)
                            }
                            Err(e) => {
                                guard.resolve(Err(e.clone()));
                                return Err(e);
                            }
                        }
                    }
                }
            }
        }
    };

    let trace = state.model.predict_from_embeddings(&embeddings);
    let latency_ms = started.elapsed().as_secs_f64() * 1e3;
    Ok(summarize(
        request,
        &state.name,
        spec.label(),
        &trace,
        cache_hit,
        design_cache_hit,
        latency_ms,
    ))
}

/// The cold path: materialize the design (cached), simulate the workload,
/// run the encoder, and admit the result against the byte budget.
fn compute_embeddings(
    shared: &Shared,
    state: &ModelState,
    request: &PredictRequest,
    spec: &WorkloadSpec,
    design_cfg: &atlas_designs::DesignConfig,
    key: &TraceKey,
) -> Result<(Arc<TraceEmbeddings>, bool), ServeError> {
    let mut workload = build_workload(state, spec, design_cfg.seed)?;
    let (artifacts, design_cache_hit) = match state.designs.get(&request.design) {
        Some(artifacts) => (artifacts, true),
        None => {
            let gate = design_cfg.generate();
            let data = build_submodule_data(&gate, &state.lib);
            let artifacts = Arc::new(DesignArtifacts { gate, data });
            state
                .designs
                .insert(request.design.clone(), Arc::clone(&artifacts));
            (artifacts, false)
        }
    };
    let trace = simulate(&artifacts.gate, &mut workload, request.cycles)
        .map_err(|e| ServeError::Simulation(e.to_string()))?;
    let embeddings = Arc::new(state.model.embed_trace(
        &artifacts.gate,
        &state.lib,
        &artifacts.data,
        &trace,
        shared.cfg.embed_threads,
    ));
    state.embeds_computed.fetch_add(1, Ordering::Relaxed);
    // An embedding bigger than the whole budget is rejected by the cache
    // (served once, never resident); everything else evicts LRU entries
    // until it fits.
    let _ = state.embeddings.insert_weighted(
        key.clone(),
        Arc::clone(&embeddings),
        embeddings.approx_bytes(),
    );
    Ok((embeddings, design_cache_hit))
}

#[cfg(test)]
mod tests {
    use atlas_core::pipeline::train_atlas;
    use atlas_sim::WorkloadPhase;

    use super::*;

    /// A configuration small enough to train inside a unit test.
    fn micro_config() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick();
        cfg.cycles = 12;
        cfg.scale = 0.12;
        cfg.pretrain.steps = 10;
        cfg.pretrain.hidden_dim = 12;
        cfg.finetune.cycles_per_design = 4;
        cfg.finetune.gbdt.n_estimators = 12;
        cfg
    }

    #[test]
    fn serves_and_caches() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model.clone(),
            cfg.clone(),
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        );

        let request = PredictRequest::new("C2", "W1", 8);
        let cold = service.call(request.clone()).expect("cold request");
        assert!(!cold.cache_hit);
        assert!(!cold.design_cache_hit);
        assert_eq!(cold.cycles, 8);
        assert_eq!(cold.model, "default");
        assert_eq!(cold.per_cycle_total_w.len(), 8);
        assert!(cold.mean_total_w > 0.0);

        // Same key: embeddings cache hit, bit-identical numbers.
        let warm = service.call(request.clone()).expect("warm request");
        assert!(warm.cache_hit);
        assert!(warm.design_cache_hit);
        assert_eq!(warm.per_cycle_total_w, cold.per_cycle_total_w);
        assert_eq!(warm.mean_total_w, cold.mean_total_w);

        // Same design, different workload: design cache hit only.
        let other = service
            .call(PredictRequest::new("C2", "W2", 8))
            .expect("second workload");
        assert!(!other.cache_hit);
        assert!(other.design_cache_hit);

        // Parity with the direct model path.
        let lib = cfg.library();
        let dcfg = cfg.try_design("C2").expect("design");
        let gate = dcfg.generate();
        let mut w = cfg.try_workload("W1", dcfg.seed).expect("workload");
        let trace = simulate(&gate, &mut w, 8).expect("simulates");
        let direct = trained.model.predict(&gate, &lib, &trace);
        assert_eq!(direct.total_series(), cold.per_cycle_total_w);

        let stats = service.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.embedding_cache.hits, 1);
        assert_eq!(stats.design_cache.hits, 1);
        assert_eq!(stats.embeddings_computed, 2);
        assert_eq!(stats.coalesced_requests, 0);
        // Byte accounting: two embeddings resident, occupancy within budget.
        assert_eq!(stats.embedding_cache.len, 2);
        assert!(stats.embedding_cache.weight > 0);
        assert!(stats.embedding_cache.weight <= stats.embedding_cache.budget);
        // Single model: the per-model slice equals the aggregate.
        assert_eq!(stats.models.len(), 1);
        assert_eq!(stats.models[0].model, "default");
        assert_eq!(stats.models[0].requests, 3);
        assert_eq!(stats.models[0].embedding_cache, stats.embedding_cache);
    }

    #[test]
    fn single_flight_collapses_concurrent_cold_requests() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let clients = 4;
        let service = AtlasService::start_with(
            trained.model,
            cfg,
            ServiceConfig {
                workers: clients,
                ..ServiceConfig::default()
            },
        );
        let barrier = std::sync::Barrier::new(clients);
        let responses: Vec<PredictResponse> = thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    let service = &service;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        service
                            .call(PredictRequest::new("C2", "W1", 8))
                            .expect("request succeeds")
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client"))
                .collect()
        });

        // All four answers are bit-identical.
        for resp in &responses[1..] {
            assert_eq!(resp.per_cycle_total_w, responses[0].per_cycle_total_w);
        }
        let stats = service.stats();
        assert_eq!(stats.requests, clients as u64);
        assert_eq!(stats.errors, 0);
        assert_eq!(
            stats.embeddings_computed, 1,
            "N concurrent cold requests for one key must compute exactly one embedding"
        );
        // Everyone who did not compute either coalesced onto the flight
        // or arrived after completion and hit the cache.
        assert_eq!(
            stats.coalesced_requests + stats.embedding_cache.hits,
            clients as u64 - 1
        );
    }

    #[test]
    fn inline_schedules_predict_and_cache_by_fingerprint() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model,
            cfg,
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        let phases = vec![
            WorkloadPhase {
                activity: 0.4,
                min_len: 2,
                max_len: 6,
            },
            WorkloadPhase {
                activity: 0.05,
                min_len: 4,
                max_len: 10,
            },
        ];
        let req = PredictRequest::with_phases("C2", "custom", 8, phases.clone());
        let cold = service.call(req.clone()).expect("inline request");
        assert!(!cold.cache_hit);
        assert_eq!(cold.workload, "custom");
        assert!(cold.mean_total_w > 0.0);

        // Same schedule again: a cache hit with identical numbers.
        let warm = service.call(req.clone()).expect("inline repeat");
        assert!(warm.cache_hit);
        assert_eq!(warm.per_cycle_total_w, cold.per_cycle_total_w);

        // Same label, different schedule: distinct cache entry.
        let mut other_phases = phases.clone();
        other_phases[0].activity = 0.9;
        let other = service
            .call(PredictRequest::with_phases("C2", "custom", 8, other_phases))
            .expect("different schedule");
        assert!(!other.cache_hit);
        assert_ne!(other.per_cycle_total_w, cold.per_cycle_total_w);

        // An inline schedule must not shadow the preset of the same name:
        // "W1"-labelled inline ≠ preset W1 cache entry.
        let preset = service
            .call(PredictRequest::new("C2", "W1", 8))
            .expect("preset");
        assert!(!preset.cache_hit);
        let inline_w1 = service
            .call(PredictRequest::with_phases("C2", "W1", 8, phases))
            .expect("inline W1 label");
        assert!(!inline_w1.cache_hit);

        // Bad schedules are typed errors.
        let empty = service.call(PredictRequest::with_phases("C2", "x", 8, vec![]));
        assert!(matches!(empty, Err(ServeError::InvalidRequest(_))));
        let bad = service.call(PredictRequest::with_phases(
            "C2",
            "x",
            8,
            vec![WorkloadPhase {
                activity: 2.0,
                min_len: 1,
                max_len: 2,
            }],
        ));
        assert!(matches!(bad, Err(ServeError::InvalidRequest(_))));
        let too_many = service.call(PredictRequest::with_phases(
            "C2",
            "x",
            8,
            vec![
                WorkloadPhase {
                    activity: 0.1,
                    min_len: 1,
                    max_len: 2,
                };
                65
            ],
        ));
        assert!(matches!(too_many, Err(ServeError::InvalidRequest(_))));
        // An inline schedule without a label is a typed error too.
        let mut unlabelled = PredictRequest::with_phases(
            "C2",
            "x",
            8,
            vec![WorkloadPhase {
                activity: 0.1,
                min_len: 1,
                max_len: 2,
            }],
        );
        unlabelled.workload = None;
        assert!(matches!(
            service.call(unlabelled),
            Err(ServeError::InvalidRequest(_))
        ));
    }

    #[test]
    fn registered_workloads_serve_by_name_with_cache_hits() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model,
            cfg,
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        let phases = vec![
            WorkloadPhase {
                activity: 0.5,
                min_len: 2,
                max_len: 5,
            },
            WorkloadPhase {
                activity: 0.02,
                min_len: 3,
                max_len: 9,
            },
        ];

        // Register once...
        let (info, replaced) = service
            .register_workload("bursty", phases.clone())
            .expect("registers");
        assert!(!replaced);
        assert_eq!(info.name, "bursty");
        assert_eq!(info.phases, 2);
        assert_eq!(info.fingerprint, schedule_fingerprint(&phases));
        assert_eq!(service.workloads(), vec![info.clone()]);

        // ...then reference it by name across requests: first cold, then
        // a cache hit.
        let req = PredictRequest::with_workload_name("C2", "bursty", 8);
        let cold = service.call(req.clone()).expect("registered request");
        assert!(!cold.cache_hit);
        assert_eq!(cold.workload, "bursty");
        let warm = service.call(req).expect("registered repeat");
        assert!(warm.cache_hit, "second use of a registered name must hit");
        assert_eq!(warm.per_cycle_total_w, cold.per_cycle_total_w);

        // A registered schedule and the identical inline schedule share a
        // cache entry only when labels match; here the labels differ
        // ("bursty" vs "inline-label"), so the entry is distinct, but the
        // same label + schedule does share.
        let inline_same = service
            .call(PredictRequest::with_phases(
                "C2",
                "bursty",
                8,
                phases.clone(),
            ))
            .expect("inline twin");
        assert!(
            inline_same.cache_hit,
            "inline schedule identical to the registered one (same label) shares the entry"
        );

        // Replacing the schedule under the same name is allowed, flagged,
        // and can never serve stale results (different fingerprint).
        let mut phases2 = phases.clone();
        phases2[0].activity = 0.9;
        let (info2, replaced) = service
            .register_workload("bursty", phases2)
            .expect("re-registers");
        assert!(replaced);
        assert_ne!(info2.fingerprint, info.fingerprint);
        let after = service
            .call(PredictRequest::with_workload_name("C2", "bursty", 8))
            .expect("post-replacement request");
        assert!(
            !after.cache_hit,
            "replaced schedule must not reuse old entry"
        );
        assert_ne!(after.per_cycle_total_w, cold.per_cycle_total_w);

        // Validation: bad names, preset shadowing, bad schedules, both
        // phases and workload_name at once.
        assert!(matches!(
            service.register_workload("", vec![]),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            service.register_workload("W1", phases.clone()),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            service.register_workload("x/y", phases.clone()),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            service.register_workload("bad", vec![]),
            Err(ServeError::InvalidRequest(_))
        ));
        let mut both = PredictRequest::with_workload_name("C2", "bursty", 8);
        both.phases = Some(phases);
        assert!(matches!(
            service.call(both),
            Err(ServeError::InvalidRequest(_))
        ));
    }

    #[test]
    fn unknown_workload_name_is_structured_and_preserves_the_id() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model,
            cfg,
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        // Direct call: a typed UnknownWorkload, not a parse error.
        let mut req = PredictRequest::with_workload_name("C2", "never-registered", 8);
        req.id = Some(42);
        assert_eq!(
            service.call(req.clone()),
            Err(ServeError::UnknownWorkload("never-registered".into()))
        );
        // Through the submit path the reply tuple carries the id, so the
        // wire layer can echo it.
        let reply = service.submit(req).recv().expect("reply");
        assert_eq!(
            reply,
            Err((
                Some(42),
                ServeError::UnknownWorkload("never-registered".into())
            ))
        );
        // Unknown preset names keep their id the same way.
        let mut preset = PredictRequest::new("C2", "W9", 8);
        preset.id = Some(43);
        let reply = service.submit(preset).recv().expect("reply");
        assert_eq!(
            reply,
            Err((Some(43), ServeError::UnknownWorkload("W9".into())))
        );
    }

    #[test]
    fn workload_library_is_bounded() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model,
            cfg,
            ServiceConfig {
                workers: 1,
                max_registered_workloads: 2,
                ..ServiceConfig::default()
            },
        );
        let phase = vec![WorkloadPhase {
            activity: 0.2,
            min_len: 1,
            max_len: 2,
        }];
        service.register_workload("a", phase.clone()).expect("a");
        service.register_workload("b", phase.clone()).expect("b");
        assert!(matches!(
            service.register_workload("c", phase.clone()),
            Err(ServeError::InvalidRequest(_))
        ));
        // Replacing an existing name still works at the cap.
        let (_, replaced) = service.register_workload("a", phase).expect("replace");
        assert!(replaced);
        assert_eq!(service.workloads().len(), 2);
    }

    #[test]
    fn multi_model_routing_is_isolated_and_parity_holds() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let mut catalog = ModelCatalog::new();
        catalog
            .insert_model("alpha", trained.model.clone(), cfg.clone())
            .expect("alpha");
        catalog
            .insert_model("beta", trained.model.clone(), cfg.clone())
            .expect("beta");
        let service = AtlasService::start_catalog(
            catalog,
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        )
        .expect("catalog serves");
        assert_eq!(service.default_model(), "alpha");
        let models = service.models();
        assert_eq!(models.len(), 2);
        assert_eq!(models[0].name, "alpha");
        assert_eq!(models[1].name, "beta");
        assert_eq!(models[0].config_fingerprint, models[1].config_fingerprint);

        // Parity: the same request is bit-identical whether the model is
        // addressed as the default or by name.
        let implicit = service
            .call(PredictRequest::new("C2", "W1", 8))
            .expect("default-addressed");
        assert_eq!(implicit.model, "alpha");
        let explicit = service
            .call(PredictRequest::new("C2", "W1", 8).on_model("alpha"))
            .expect("name-addressed");
        assert_eq!(explicit.model, "alpha");
        assert_eq!(explicit.per_cycle_total_w, implicit.per_cycle_total_w);
        assert!(explicit.cache_hit, "both routes share the model's cache");

        // The second model computes its own embedding (no cross-model
        // cache sharing) but produces identical numbers for identical
        // weights.
        let beta = service
            .call(PredictRequest::new("C2", "W1", 8).on_model("beta"))
            .expect("beta-addressed");
        assert_eq!(beta.model, "beta");
        assert!(!beta.cache_hit, "models do not share cache entries");
        assert_eq!(beta.per_cycle_total_w, implicit.per_cycle_total_w);

        // Per-model accounting: each model holds exactly its own entry.
        let stats = service.stats();
        assert_eq!(stats.models.len(), 2);
        let alpha = &stats.models[0];
        let beta_stats = &stats.models[1];
        assert_eq!(alpha.model, "alpha");
        assert_eq!(alpha.requests, 2);
        assert_eq!(alpha.embeddings_computed, 1);
        assert_eq!(alpha.embedding_cache.len, 1);
        assert_eq!(beta_stats.model, "beta");
        assert_eq!(beta_stats.requests, 1);
        assert_eq!(beta_stats.embeddings_computed, 1);
        assert_eq!(beta_stats.embedding_cache.len, 1);
        // Aggregates are the sums.
        assert_eq!(stats.embeddings_computed, 2);
        assert_eq!(stats.embedding_cache.len, 2);
        assert_eq!(
            stats.embedding_cache.weight,
            alpha.embedding_cache.weight + beta_stats.embedding_cache.weight
        );

        // Unknown model: typed error with the id preserved.
        let mut req = PredictRequest::new("C2", "W1", 8).on_model("gamma");
        req.id = Some(7);
        let reply = service.submit(req).recv().expect("reply");
        assert_eq!(
            reply,
            Err((Some(7), ServeError::UnknownModel("gamma".into())))
        );
    }

    #[test]
    fn tiny_embedding_budget_serves_but_does_not_cache() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model,
            cfg,
            ServiceConfig {
                workers: 1,
                embedding_cache_bytes: 1, // every embedding is oversized
                ..ServiceConfig::default()
            },
        );
        let req = PredictRequest::new("C2", "W1", 6);
        let first = service.call(req.clone()).expect("first");
        assert!(!first.cache_hit);
        let second = service.call(req).expect("second");
        assert!(!second.cache_hit, "oversized embeddings are never cached");
        let stats = service.stats();
        assert_eq!(stats.embeddings_computed, 2);
        assert_eq!(stats.embedding_cache.len, 0);
        assert_eq!(stats.embedding_cache.weight, 0);
        // Identical numbers either way.
        assert_eq!(first.per_cycle_total_w, second.per_cycle_total_w);
    }

    #[test]
    fn callback_submission_delivers_on_worker() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model,
            cfg,
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        );
        let (tx, rx) = mpsc::channel();
        service.submit_with(PredictRequest::new("C2", "W1", 6), move |reply| {
            tx.send(reply).expect("test channel");
        });
        let reply = rx.recv().expect("callback ran");
        let resp = reply.expect("request succeeds");
        assert_eq!(resp.cycles, 6);

        let (tx, rx) = mpsc::channel();
        service.submit_with(PredictRequest::new("C9", "W1", 6), move |reply| {
            tx.send(reply).expect("test channel");
        });
        let reply = rx.recv().expect("callback ran");
        assert_eq!(
            reply.expect_err("unknown design").1,
            ServeError::UnknownDesign("C9".into())
        );
    }

    #[test]
    fn error_paths_are_typed() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model,
            cfg,
            ServiceConfig {
                workers: 1,
                max_cycles: 64,
                ..ServiceConfig::default()
            },
        );
        assert_eq!(
            service.call(PredictRequest::new("C9", "W1", 8)),
            Err(ServeError::UnknownDesign("C9".into()))
        );
        assert_eq!(
            service.call(PredictRequest::new("C2", "W9", 8)),
            Err(ServeError::UnknownWorkload("W9".into()))
        );
        assert!(matches!(
            service.call(PredictRequest::new("C2", "W1", 0)),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            service.call(PredictRequest::new("C2", "W1", 65)),
            Err(ServeError::InvalidRequest(_))
        ));
        let stats = service.stats();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.errors, 4);
    }
}
