//! The long-lived prediction service: a worker pool over a shared model
//! and two-level LRU cache.
//!
//! Request execution has three stages with very different costs:
//!
//! 1. **Design materialization** — generate the gate-level netlist and
//!    build its sub-module graph data. Depends only on the design name,
//!    so it is cached per design.
//! 2. **Trace embedding** — simulate the workload and run the encoder
//!    over every (sub-module, cycle). Deterministic in (design, workload,
//!    cycles), so the resulting [`TraceEmbeddings`] are cached under that
//!    key — admitted against a **byte budget** sized from
//!    [`TraceEmbeddings::approx_bytes`]. This stage dominates cold
//!    latency; concurrent cold requests for the same key are
//!    **single-flighted**: one request computes, the rest block on the
//!    in-flight result instead of duplicating the work.
//! 3. **Head evaluation** — GBDT heads + memory model over the cached
//!    embeddings. Cheap; this is all a fully-warm request pays.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Instant;

use atlas_core::features::{build_submodule_data, SubmoduleData};
use atlas_core::{AtlasModel, ExperimentConfig, TraceEmbeddings};
use atlas_liberty::Library;
use atlas_netlist::Design;
use atlas_sim::{simulate, PhasedWorkload, WorkloadPhase};

use crate::cache::{CacheStats, LruCache};
use crate::error::ServeError;
use crate::protocol::{summarize, PredictRequest, PredictResponse};
use crate::registry::SavedModel;

/// Tuning knobs of one service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads answering requests concurrently.
    pub workers: usize,
    /// Byte budget of the (design, workload, cycles) → embeddings cache,
    /// accounted with [`TraceEmbeddings::approx_bytes`]. An embedding
    /// larger than the whole budget is served but never cached.
    pub embedding_cache_bytes: usize,
    /// Capacity (entries) of the design → netlist + sub-module data cache.
    pub design_cache: usize,
    /// Upper bound on `cycles` per request (backpressure against
    /// accidental million-cycle requests).
    pub max_cycles: usize,
    /// Upper bound on inline-schedule phases per request.
    pub max_phases: usize,
    /// Threads used *inside* one request's embedding stage. Kept low by
    /// default because concurrency comes from the worker pool.
    pub embed_threads: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 4,
            embedding_cache_bytes: 256 << 20,
            design_cache: 16,
            max_cycles: 4096,
            max_phases: 64,
            embed_threads: 1,
        }
    }
}

/// Cache key of stage two. `schedule_fp` is 0 for preset workloads and a
/// fingerprint of the inline phase schedule otherwise, so two inline
/// requests share an entry exactly when their schedules match.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TraceKey {
    design: String,
    workload: String,
    cycles: usize,
    schedule_fp: u64,
}

/// FNV-1a over the phase parameters; never 0 (0 marks "preset").
fn schedule_fingerprint(phases: &[WorkloadPhase]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for p in phases {
        mix(p.activity.to_bits());
        mix(p.min_len as u64);
        mix(p.max_len as u64);
    }
    h.max(1)
}

/// Stage-one cache value: the materialized design.
struct DesignArtifacts {
    gate: Design,
    data: Vec<SubmoduleData>,
}

/// Aggregate service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Requests answered (including errors).
    pub requests: u64,
    /// Requests that returned an error.
    pub errors: u64,
    /// Cold embeddings actually computed (one full simulate + encode
    /// pipeline each). With single-flight, N concurrent cold requests
    /// for one key bump this by exactly 1.
    pub embeddings_computed: u64,
    /// Requests that waited on another request's in-flight computation
    /// instead of recomputing it.
    pub coalesced_requests: u64,
    /// Embedding-cache counters (`weight`/`budget` in bytes).
    pub embedding_cache: CacheStats,
    /// Design-cache counters (`weight`/`budget` in entries).
    pub design_cache: CacheStats,
}

/// The in-flight slot of one cold (design, workload, cycles) computation.
/// The leader fills `result` and notifies; followers wait on `done`.
struct Flight {
    result: Mutex<Option<Result<Arc<TraceEmbeddings>, ServeError>>>,
    done: Condvar,
}

struct Shared {
    model: AtlasModel,
    experiment: ExperimentConfig,
    lib: Library,
    cfg: ServiceConfig,
    embeddings: LruCache<TraceKey, TraceEmbeddings>,
    designs: LruCache<String, DesignArtifacts>,
    inflight: Mutex<HashMap<TraceKey, Arc<Flight>>>,
    requests: AtomicU64,
    errors: AtomicU64,
    embeds_computed: AtomicU64,
    coalesced: AtomicU64,
}

/// The reply type of one request: the response, or the echoed request id
/// plus the typed error.
pub type Reply = Result<PredictResponse, (Option<u64>, ServeError)>;

/// Where a finished reply goes: a blocking channel ([`AtlasService::submit`])
/// or a callback invoked on the worker thread ([`AtlasService::submit_with`],
/// the reactor's non-blocking path).
enum ReplySink {
    Channel(mpsc::Sender<Reply>),
    Callback(Box<dyn FnOnce(Reply) + Send>),
}

impl ReplySink {
    fn send(self, reply: Reply) {
        match self {
            // A disconnected receiver just means the client went away.
            ReplySink::Channel(tx) => {
                let _ = tx.send(reply);
            }
            ReplySink::Callback(f) => f(reply),
        }
    }
}

struct Job {
    request: PredictRequest,
    reply: ReplySink,
}

#[derive(Default)]
struct QueueState {
    jobs: std::collections::VecDeque<Job>,
    shutdown: bool,
}

struct Queue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

/// A running prediction service. Cloneable handles are obtained by
/// wrapping it in an `Arc`; dropping the last handle shuts the workers
/// down.
pub struct AtlasService {
    shared: Arc<Shared>,
    queue: Arc<Queue>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl AtlasService {
    /// Start a service from a registry-loaded model.
    pub fn start(saved: SavedModel, cfg: ServiceConfig) -> AtlasService {
        AtlasService::start_with(saved.model, saved.config, cfg)
    }

    /// Start a service from an in-memory model and its training config.
    pub fn start_with(
        model: AtlasModel,
        experiment: ExperimentConfig,
        cfg: ServiceConfig,
    ) -> AtlasService {
        let lib = experiment.library();
        let shared = Arc::new(Shared {
            model,
            experiment,
            lib,
            embeddings: LruCache::with_budget(cfg.embedding_cache_bytes),
            designs: LruCache::new(cfg.design_cache),
            inflight: Mutex::new(HashMap::new()),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            embeds_computed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            cfg,
        });
        let queue = Arc::new(Queue {
            state: Mutex::new(QueueState::default()),
            ready: Condvar::new(),
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let queue = Arc::clone(&queue);
                thread::spawn(move || worker_loop(&shared, &queue))
            })
            .collect();
        AtlasService {
            shared,
            queue,
            workers,
        }
    }

    fn enqueue(&self, request: PredictRequest, reply: ReplySink) {
        let mut state = self.queue.state.lock().expect("queue lock");
        if state.shutdown {
            drop(state);
            reply.send(Err((request.id, ServeError::Shutdown)));
        } else {
            state.jobs.push_back(Job { request, reply });
            drop(state);
            self.queue.ready.notify_one();
        }
    }

    /// Enqueue a request; the returned channel yields the reply.
    pub fn submit(&self, request: PredictRequest) -> mpsc::Receiver<Reply> {
        let (tx, rx) = mpsc::channel();
        self.enqueue(request, ReplySink::Channel(tx));
        rx
    }

    /// Enqueue a request whose reply is delivered to `callback` on the
    /// worker thread — the non-blocking submission path the event-loop
    /// front door uses. The callback must be cheap and must not block
    /// (it runs inside the worker pool).
    pub fn submit_with(
        &self,
        request: PredictRequest,
        callback: impl FnOnce(Reply) + Send + 'static,
    ) {
        self.enqueue(request, ReplySink::Callback(Box::new(callback)));
    }

    /// Answer one request, blocking until a worker finishes it.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`] the request produced.
    pub fn call(&self, request: PredictRequest) -> Result<PredictResponse, ServeError> {
        match self.submit(request).recv() {
            Ok(Ok(response)) => Ok(response),
            Ok(Err((_, error))) => Err(error),
            Err(_) => Err(ServeError::Shutdown),
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.shared.requests.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
            embeddings_computed: self.shared.embeds_computed.load(Ordering::Relaxed),
            coalesced_requests: self.shared.coalesced.load(Ordering::Relaxed),
            embedding_cache: self.shared.embeddings.stats(),
            design_cache: self.shared.designs.stats(),
        }
    }

    /// The experiment configuration the model was trained under.
    pub fn experiment(&self) -> &ExperimentConfig {
        &self.shared.experiment
    }
}

impl Drop for AtlasService {
    fn drop(&mut self) {
        let drained = {
            let mut state = self.queue.state.lock().expect("queue lock");
            state.shutdown = true;
            // Pending jobs get a shutdown error rather than a hang.
            std::mem::take(&mut state.jobs)
        };
        for job in drained {
            job.reply.send(Err((job.request.id, ServeError::Shutdown)));
        }
        self.queue.ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared, queue: &Queue) {
    loop {
        let job = {
            let mut state = queue.state.lock().expect("queue lock");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = queue.ready.wait(state).expect("queue lock");
            }
        };
        let id = job.request.id;
        let reply = handle(shared, &job.request).map_err(|e| (id, e));
        shared.requests.fetch_add(1, Ordering::Relaxed);
        if reply.is_err() {
            shared.errors.fetch_add(1, Ordering::Relaxed);
        }
        job.reply.send(reply);
    }
}

/// Build the request's workload: an inline schedule when `phases` is
/// present, a preset lookup otherwise.
fn request_workload(
    shared: &Shared,
    request: &PredictRequest,
    seed: u64,
) -> Result<PhasedWorkload, ServeError> {
    match &request.phases {
        Some(phases) => {
            if phases.len() > shared.cfg.max_phases {
                return Err(ServeError::InvalidRequest(format!(
                    "inline schedule has {} phases, limit is {}",
                    phases.len(),
                    shared.cfg.max_phases
                )));
            }
            PhasedWorkload::try_new(request.workload.clone(), phases.clone(), seed)
                .map_err(|e| ServeError::InvalidRequest(format!("bad inline schedule: {e}")))
        }
        None => Ok(shared.experiment.try_workload(&request.workload, seed)?),
    }
}

/// Role of one cold request in the single-flight protocol.
enum FlightRole {
    Leader(Arc<Flight>),
    Follower(Arc<Flight>),
}

/// Resolves the leader's flight slot on drop, so followers are never
/// stranded — even if the leader's computation panics, they observe a
/// typed error instead of hanging.
struct FlightGuard<'a> {
    shared: &'a Shared,
    key: &'a TraceKey,
    flight: &'a Arc<Flight>,
    resolved: bool,
}

impl FlightGuard<'_> {
    fn resolve(mut self, outcome: Result<Arc<TraceEmbeddings>, ServeError>) {
        self.publish(outcome);
        self.resolved = true;
    }

    fn publish(&self, outcome: Result<Arc<TraceEmbeddings>, ServeError>) {
        self.shared
            .inflight
            .lock()
            .expect("inflight lock")
            .remove(self.key);
        let mut slot = self.flight.result.lock().expect("flight lock");
        *slot = Some(outcome);
        drop(slot);
        self.flight.done.notify_all();
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.resolved {
            self.publish(Err(ServeError::Shutdown));
        }
    }
}

fn handle(shared: &Shared, request: &PredictRequest) -> Result<PredictResponse, ServeError> {
    let started = Instant::now();
    if request.cycles == 0 {
        return Err(ServeError::InvalidRequest("cycles must be positive".into()));
    }
    if request.cycles > shared.cfg.max_cycles {
        return Err(ServeError::InvalidRequest(format!(
            "cycles {} exceeds the service limit {}",
            request.cycles, shared.cfg.max_cycles
        )));
    }
    // Validate the names before touching any cache so error paths are
    // uniform regardless of cache state.
    let design_cfg = shared.experiment.try_design(&request.design)?;

    let key = TraceKey {
        design: request.design.clone(),
        workload: request.workload.clone(),
        cycles: request.cycles,
        schedule_fp: request.phases.as_deref().map_or(0, schedule_fingerprint),
    };
    let (embeddings, cache_hit, design_cache_hit) = match shared.embeddings.get(&key) {
        Some(embeddings) => {
            // Fully warm: stage one and two both skipped. Validate the
            // workload anyway so a cached entry never masks a bad request
            // (it cannot be cached under an invalid workload, but the
            // check is cheap and keeps the invariant obvious).
            request_workload(shared, request, design_cfg.seed)?;
            (embeddings, true, true)
        }
        None => {
            // Single-flight: the first cold request for a key computes;
            // concurrent duplicates wait on its in-flight slot. NOTE: a
            // follower occupies its worker thread while waiting, but can
            // never deadlock the pool — a leader only exists once it is
            // already running on a worker, so it always makes progress.
            let role = {
                let mut inflight = shared.inflight.lock().expect("inflight lock");
                match inflight.get(&key) {
                    Some(flight) => FlightRole::Follower(Arc::clone(flight)),
                    None => {
                        let flight = Arc::new(Flight {
                            result: Mutex::new(None),
                            done: Condvar::new(),
                        });
                        inflight.insert(key.clone(), Arc::clone(&flight));
                        FlightRole::Leader(flight)
                    }
                }
            };
            match role {
                FlightRole::Follower(flight) => {
                    shared.coalesced.fetch_add(1, Ordering::Relaxed);
                    let mut slot = flight.result.lock().expect("flight lock");
                    while slot.is_none() {
                        slot = flight.done.wait(slot).expect("flight lock");
                    }
                    let embeddings = slot.clone().expect("checked Some")?;
                    // The embedding work was shared, not redone: report it
                    // as a cache hit (the follower paid only head
                    // evaluation plus the wait).
                    (embeddings, true, true)
                }
                FlightRole::Leader(flight) => {
                    let guard = FlightGuard {
                        shared,
                        key: &key,
                        flight: &flight,
                        resolved: false,
                    };
                    // Re-check the cache: between the miss and leadership
                    // another leader may have finished and populated it.
                    if let Some(embeddings) = shared.embeddings.get(&key) {
                        guard.resolve(Ok(Arc::clone(&embeddings)));
                        request_workload(shared, request, design_cfg.seed)?;
                        (embeddings, true, true)
                    } else {
                        let outcome = compute_embeddings(shared, request, &design_cfg, &key);
                        match outcome {
                            Ok((embeddings, design_cache_hit)) => {
                                guard.resolve(Ok(Arc::clone(&embeddings)));
                                (embeddings, false, design_cache_hit)
                            }
                            Err(e) => {
                                guard.resolve(Err(e.clone()));
                                return Err(e);
                            }
                        }
                    }
                }
            }
        }
    };

    let trace = shared.model.predict_from_embeddings(&embeddings);
    let latency_ms = started.elapsed().as_secs_f64() * 1e3;
    Ok(summarize(
        request,
        &trace,
        cache_hit,
        design_cache_hit,
        latency_ms,
    ))
}

/// The cold path: materialize the design (cached), simulate the workload,
/// run the encoder, and admit the result against the byte budget.
fn compute_embeddings(
    shared: &Shared,
    request: &PredictRequest,
    design_cfg: &atlas_designs::DesignConfig,
    key: &TraceKey,
) -> Result<(Arc<TraceEmbeddings>, bool), ServeError> {
    let mut workload = request_workload(shared, request, design_cfg.seed)?;
    let (artifacts, design_cache_hit) = match shared.designs.get(&request.design) {
        Some(artifacts) => (artifacts, true),
        None => {
            let gate = design_cfg.generate();
            let data = build_submodule_data(&gate, &shared.lib);
            let artifacts = Arc::new(DesignArtifacts { gate, data });
            shared
                .designs
                .insert(request.design.clone(), Arc::clone(&artifacts));
            (artifacts, false)
        }
    };
    let trace = simulate(&artifacts.gate, &mut workload, request.cycles)
        .map_err(|e| ServeError::Simulation(e.to_string()))?;
    let embeddings = Arc::new(shared.model.embed_trace(
        &artifacts.gate,
        &shared.lib,
        &artifacts.data,
        &trace,
        shared.cfg.embed_threads,
    ));
    shared.embeds_computed.fetch_add(1, Ordering::Relaxed);
    // An embedding bigger than the whole budget is rejected by the cache
    // (served once, never resident); everything else evicts LRU entries
    // until it fits.
    let _ = shared.embeddings.insert_weighted(
        key.clone(),
        Arc::clone(&embeddings),
        embeddings.approx_bytes(),
    );
    Ok((embeddings, design_cache_hit))
}

#[cfg(test)]
mod tests {
    use atlas_core::pipeline::train_atlas;
    use atlas_sim::WorkloadPhase;

    use super::*;

    /// A configuration small enough to train inside a unit test.
    fn micro_config() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick();
        cfg.cycles = 12;
        cfg.scale = 0.12;
        cfg.pretrain.steps = 10;
        cfg.pretrain.hidden_dim = 12;
        cfg.finetune.cycles_per_design = 4;
        cfg.finetune.gbdt.n_estimators = 12;
        cfg
    }

    #[test]
    fn serves_and_caches() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model.clone(),
            cfg.clone(),
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        );

        let request = PredictRequest::new("C2", "W1", 8);
        let cold = service.call(request.clone()).expect("cold request");
        assert!(!cold.cache_hit);
        assert!(!cold.design_cache_hit);
        assert_eq!(cold.cycles, 8);
        assert_eq!(cold.per_cycle_total_w.len(), 8);
        assert!(cold.mean_total_w > 0.0);

        // Same key: embeddings cache hit, bit-identical numbers.
        let warm = service.call(request.clone()).expect("warm request");
        assert!(warm.cache_hit);
        assert!(warm.design_cache_hit);
        assert_eq!(warm.per_cycle_total_w, cold.per_cycle_total_w);
        assert_eq!(warm.mean_total_w, cold.mean_total_w);

        // Same design, different workload: design cache hit only.
        let other = service
            .call(PredictRequest::new("C2", "W2", 8))
            .expect("second workload");
        assert!(!other.cache_hit);
        assert!(other.design_cache_hit);

        // Parity with the direct model path.
        let lib = cfg.library();
        let dcfg = cfg.try_design("C2").expect("design");
        let gate = dcfg.generate();
        let mut w = cfg.try_workload("W1", dcfg.seed).expect("workload");
        let trace = simulate(&gate, &mut w, 8).expect("simulates");
        let direct = trained.model.predict(&gate, &lib, &trace);
        assert_eq!(direct.total_series(), cold.per_cycle_total_w);

        let stats = service.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.embedding_cache.hits, 1);
        assert_eq!(stats.design_cache.hits, 1);
        assert_eq!(stats.embeddings_computed, 2);
        assert_eq!(stats.coalesced_requests, 0);
        // Byte accounting: two embeddings resident, occupancy within budget.
        assert_eq!(stats.embedding_cache.len, 2);
        assert!(stats.embedding_cache.weight > 0);
        assert!(stats.embedding_cache.weight <= stats.embedding_cache.budget);
    }

    #[test]
    fn single_flight_collapses_concurrent_cold_requests() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let clients = 4;
        let service = AtlasService::start_with(
            trained.model,
            cfg,
            ServiceConfig {
                workers: clients,
                ..ServiceConfig::default()
            },
        );
        let barrier = std::sync::Barrier::new(clients);
        let responses: Vec<PredictResponse> = thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    let service = &service;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        service
                            .call(PredictRequest::new("C2", "W1", 8))
                            .expect("request succeeds")
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client"))
                .collect()
        });

        // All four answers are bit-identical.
        for resp in &responses[1..] {
            assert_eq!(resp.per_cycle_total_w, responses[0].per_cycle_total_w);
        }
        let stats = service.stats();
        assert_eq!(stats.requests, clients as u64);
        assert_eq!(stats.errors, 0);
        assert_eq!(
            stats.embeddings_computed, 1,
            "N concurrent cold requests for one key must compute exactly one embedding"
        );
        // Everyone who did not compute either coalesced onto the flight
        // or arrived after completion and hit the cache.
        assert_eq!(
            stats.coalesced_requests + stats.embedding_cache.hits,
            clients as u64 - 1
        );
    }

    #[test]
    fn inline_schedules_predict_and_cache_by_fingerprint() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model,
            cfg,
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        let phases = vec![
            WorkloadPhase {
                activity: 0.4,
                min_len: 2,
                max_len: 6,
            },
            WorkloadPhase {
                activity: 0.05,
                min_len: 4,
                max_len: 10,
            },
        ];
        let req = PredictRequest::with_phases("C2", "custom", 8, phases.clone());
        let cold = service.call(req.clone()).expect("inline request");
        assert!(!cold.cache_hit);
        assert_eq!(cold.workload, "custom");
        assert!(cold.mean_total_w > 0.0);

        // Same schedule again: a cache hit with identical numbers.
        let warm = service.call(req.clone()).expect("inline repeat");
        assert!(warm.cache_hit);
        assert_eq!(warm.per_cycle_total_w, cold.per_cycle_total_w);

        // Same label, different schedule: distinct cache entry.
        let mut other_phases = phases.clone();
        other_phases[0].activity = 0.9;
        let other = service
            .call(PredictRequest::with_phases("C2", "custom", 8, other_phases))
            .expect("different schedule");
        assert!(!other.cache_hit);
        assert_ne!(other.per_cycle_total_w, cold.per_cycle_total_w);

        // An inline schedule must not shadow the preset of the same name:
        // "W1"-labelled inline ≠ preset W1 cache entry.
        let preset = service
            .call(PredictRequest::new("C2", "W1", 8))
            .expect("preset");
        assert!(!preset.cache_hit);
        let inline_w1 = service
            .call(PredictRequest::with_phases("C2", "W1", 8, phases))
            .expect("inline W1 label");
        assert!(!inline_w1.cache_hit);

        // Bad schedules are typed errors.
        let empty = service.call(PredictRequest::with_phases("C2", "x", 8, vec![]));
        assert!(matches!(empty, Err(ServeError::InvalidRequest(_))));
        let bad = service.call(PredictRequest::with_phases(
            "C2",
            "x",
            8,
            vec![WorkloadPhase {
                activity: 2.0,
                min_len: 1,
                max_len: 2,
            }],
        ));
        assert!(matches!(bad, Err(ServeError::InvalidRequest(_))));
        let too_many = service.call(PredictRequest::with_phases(
            "C2",
            "x",
            8,
            vec![
                WorkloadPhase {
                    activity: 0.1,
                    min_len: 1,
                    max_len: 2,
                };
                65
            ],
        ));
        assert!(matches!(too_many, Err(ServeError::InvalidRequest(_))));
    }

    #[test]
    fn tiny_embedding_budget_serves_but_does_not_cache() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model,
            cfg,
            ServiceConfig {
                workers: 1,
                embedding_cache_bytes: 1, // every embedding is oversized
                ..ServiceConfig::default()
            },
        );
        let req = PredictRequest::new("C2", "W1", 6);
        let first = service.call(req.clone()).expect("first");
        assert!(!first.cache_hit);
        let second = service.call(req).expect("second");
        assert!(!second.cache_hit, "oversized embeddings are never cached");
        let stats = service.stats();
        assert_eq!(stats.embeddings_computed, 2);
        assert_eq!(stats.embedding_cache.len, 0);
        assert_eq!(stats.embedding_cache.weight, 0);
        // Identical numbers either way.
        assert_eq!(first.per_cycle_total_w, second.per_cycle_total_w);
    }

    #[test]
    fn callback_submission_delivers_on_worker() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model,
            cfg,
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        );
        let (tx, rx) = mpsc::channel();
        service.submit_with(PredictRequest::new("C2", "W1", 6), move |reply| {
            tx.send(reply).expect("test channel");
        });
        let reply = rx.recv().expect("callback ran");
        let resp = reply.expect("request succeeds");
        assert_eq!(resp.cycles, 6);

        let (tx, rx) = mpsc::channel();
        service.submit_with(PredictRequest::new("C9", "W1", 6), move |reply| {
            tx.send(reply).expect("test channel");
        });
        let reply = rx.recv().expect("callback ran");
        assert_eq!(
            reply.expect_err("unknown design").1,
            ServeError::UnknownDesign("C9".into())
        );
    }

    #[test]
    fn error_paths_are_typed() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model,
            cfg,
            ServiceConfig {
                workers: 1,
                max_cycles: 64,
                ..ServiceConfig::default()
            },
        );
        assert_eq!(
            service.call(PredictRequest::new("C9", "W1", 8)),
            Err(ServeError::UnknownDesign("C9".into()))
        );
        assert_eq!(
            service.call(PredictRequest::new("C2", "W9", 8)),
            Err(ServeError::UnknownWorkload("W9".into()))
        );
        assert!(matches!(
            service.call(PredictRequest::new("C2", "W1", 0)),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            service.call(PredictRequest::new("C2", "W1", 65)),
            Err(ServeError::InvalidRequest(_))
        ));
        let stats = service.stats();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.errors, 4);
    }
}
