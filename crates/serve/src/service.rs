//! The long-lived prediction service: a worker pool over a shared model
//! and two-level LRU cache.
//!
//! Request execution has three stages with very different costs:
//!
//! 1. **Design materialization** — generate the gate-level netlist and
//!    build its sub-module graph data. Depends only on the design name,
//!    so it is cached per design.
//! 2. **Trace embedding** — simulate the workload and run the encoder
//!    over every (sub-module, cycle). Deterministic in (design, workload,
//!    cycles), so the resulting [`TraceEmbeddings`] are cached under that
//!    key. This stage dominates cold latency; within it, feature
//!    construction and the encoder's output projection are batched over
//!    all cycles of a sub-module.
//! 3. **Head evaluation** — GBDT heads + memory model over the cached
//!    embeddings. Cheap; this is all a fully-warm request pays.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Instant;

use atlas_core::features::{build_submodule_data, SubmoduleData};
use atlas_core::{AtlasModel, ExperimentConfig, TraceEmbeddings};
use atlas_liberty::Library;
use atlas_netlist::Design;
use atlas_sim::simulate;

use crate::cache::{CacheStats, LruCache};
use crate::error::ServeError;
use crate::protocol::{summarize, PredictRequest, PredictResponse};
use crate::registry::SavedModel;

/// Tuning knobs of one service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads answering requests concurrently.
    pub workers: usize,
    /// Capacity of the (design, workload, cycles) → embeddings cache.
    pub embedding_cache: usize,
    /// Capacity of the design → netlist + sub-module data cache.
    pub design_cache: usize,
    /// Upper bound on `cycles` per request (backpressure against
    /// accidental million-cycle requests).
    pub max_cycles: usize,
    /// Threads used *inside* one request's embedding stage. Kept low by
    /// default because concurrency comes from the worker pool.
    pub embed_threads: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 4,
            embedding_cache: 32,
            design_cache: 16,
            max_cycles: 4096,
            embed_threads: 1,
        }
    }
}

/// Cache key of stage two.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TraceKey {
    design: String,
    workload: String,
    cycles: usize,
}

/// Stage-one cache value: the materialized design.
struct DesignArtifacts {
    gate: Design,
    data: Vec<SubmoduleData>,
}

/// Aggregate service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Requests answered (including errors).
    pub requests: u64,
    /// Requests that returned an error.
    pub errors: u64,
    /// Embedding-cache counters.
    pub embedding_cache: CacheStats,
    /// Design-cache counters.
    pub design_cache: CacheStats,
}

struct Shared {
    model: AtlasModel,
    experiment: ExperimentConfig,
    lib: Library,
    cfg: ServiceConfig,
    embeddings: LruCache<TraceKey, TraceEmbeddings>,
    designs: LruCache<String, DesignArtifacts>,
    requests: AtomicU64,
    errors: AtomicU64,
}

type Reply = Result<PredictResponse, (Option<u64>, ServeError)>;

struct Job {
    request: PredictRequest,
    reply: mpsc::Sender<Reply>,
}

#[derive(Default)]
struct QueueState {
    jobs: std::collections::VecDeque<Job>,
    shutdown: bool,
}

struct Queue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

/// A running prediction service. Cloneable handles are obtained by
/// wrapping it in an `Arc`; dropping the last handle shuts the workers
/// down.
pub struct AtlasService {
    shared: Arc<Shared>,
    queue: Arc<Queue>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl AtlasService {
    /// Start a service from a registry-loaded model.
    pub fn start(saved: SavedModel, cfg: ServiceConfig) -> AtlasService {
        AtlasService::start_with(saved.model, saved.config, cfg)
    }

    /// Start a service from an in-memory model and its training config.
    pub fn start_with(
        model: AtlasModel,
        experiment: ExperimentConfig,
        cfg: ServiceConfig,
    ) -> AtlasService {
        let lib = experiment.library();
        let shared = Arc::new(Shared {
            model,
            experiment,
            lib,
            embeddings: LruCache::new(cfg.embedding_cache),
            designs: LruCache::new(cfg.design_cache),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            cfg,
        });
        let queue = Arc::new(Queue {
            state: Mutex::new(QueueState::default()),
            ready: Condvar::new(),
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let queue = Arc::clone(&queue);
                thread::spawn(move || worker_loop(&shared, &queue))
            })
            .collect();
        AtlasService {
            shared,
            queue,
            workers,
        }
    }

    /// Enqueue a request; the returned channel yields the reply.
    pub fn submit(&self, request: PredictRequest) -> mpsc::Receiver<Reply> {
        let (tx, rx) = mpsc::channel();
        let mut state = self.queue.state.lock().expect("queue lock");
        if state.shutdown {
            let _ = tx.send(Err((request.id, ServeError::Shutdown)));
        } else {
            state.jobs.push_back(Job { request, reply: tx });
            self.queue.ready.notify_one();
        }
        rx
    }

    /// Answer one request, blocking until a worker finishes it.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`] the request produced.
    pub fn call(&self, request: PredictRequest) -> Result<PredictResponse, ServeError> {
        match self.submit(request).recv() {
            Ok(Ok(response)) => Ok(response),
            Ok(Err((_, error))) => Err(error),
            Err(_) => Err(ServeError::Shutdown),
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.shared.requests.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
            embedding_cache: self.shared.embeddings.stats(),
            design_cache: self.shared.designs.stats(),
        }
    }

    /// The experiment configuration the model was trained under.
    pub fn experiment(&self) -> &ExperimentConfig {
        &self.shared.experiment
    }
}

impl Drop for AtlasService {
    fn drop(&mut self) {
        {
            let mut state = self.queue.state.lock().expect("queue lock");
            state.shutdown = true;
            // Pending jobs get a shutdown error rather than a hang.
            while let Some(job) = state.jobs.pop_front() {
                let _ = job.reply.send(Err((job.request.id, ServeError::Shutdown)));
            }
        }
        self.queue.ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared, queue: &Queue) {
    loop {
        let job = {
            let mut state = queue.state.lock().expect("queue lock");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = queue.ready.wait(state).expect("queue lock");
            }
        };
        let id = job.request.id;
        let reply = handle(shared, &job.request).map_err(|e| (id, e));
        shared.requests.fetch_add(1, Ordering::Relaxed);
        if reply.is_err() {
            shared.errors.fetch_add(1, Ordering::Relaxed);
        }
        // A disconnected receiver just means the client went away.
        let _ = job.reply.send(reply);
    }
}

fn handle(shared: &Shared, request: &PredictRequest) -> Result<PredictResponse, ServeError> {
    let started = Instant::now();
    if request.cycles == 0 {
        return Err(ServeError::InvalidRequest("cycles must be positive".into()));
    }
    if request.cycles > shared.cfg.max_cycles {
        return Err(ServeError::InvalidRequest(format!(
            "cycles {} exceeds the service limit {}",
            request.cycles, shared.cfg.max_cycles
        )));
    }
    // Validate the names before touching any cache so error paths are
    // uniform regardless of cache state.
    let design_cfg = shared.experiment.try_design(&request.design)?;

    let key = TraceKey {
        design: request.design.clone(),
        workload: request.workload.clone(),
        cycles: request.cycles,
    };
    let (embeddings, cache_hit, design_cache_hit) = match shared.embeddings.get(&key) {
        Some(embeddings) => {
            // Fully warm: stage one and two both skipped. Validate the
            // workload name anyway so a cached design never masks a bad
            // request (it cannot be cached under an invalid name, but the
            // check is cheap and keeps the invariant obvious).
            shared
                .experiment
                .try_workload(&request.workload, design_cfg.seed)?;
            (embeddings, true, true)
        }
        None => {
            let mut workload = shared
                .experiment
                .try_workload(&request.workload, design_cfg.seed)?;
            let (artifacts, design_cache_hit) = match shared.designs.get(&request.design) {
                Some(artifacts) => (artifacts, true),
                None => {
                    let gate = design_cfg.generate();
                    let data = build_submodule_data(&gate, &shared.lib);
                    let artifacts = Arc::new(DesignArtifacts { gate, data });
                    shared
                        .designs
                        .insert(request.design.clone(), Arc::clone(&artifacts));
                    (artifacts, false)
                }
            };
            let trace = simulate(&artifacts.gate, &mut workload, request.cycles)
                .map_err(|e| ServeError::Simulation(e.to_string()))?;
            let embeddings = Arc::new(shared.model.embed_trace(
                &artifacts.gate,
                &shared.lib,
                &artifacts.data,
                &trace,
                shared.cfg.embed_threads,
            ));
            shared.embeddings.insert(key, Arc::clone(&embeddings));
            (embeddings, false, design_cache_hit)
        }
    };

    let trace = shared.model.predict_from_embeddings(&embeddings);
    let latency_ms = started.elapsed().as_secs_f64() * 1e3;
    Ok(summarize(
        request,
        &trace,
        cache_hit,
        design_cache_hit,
        latency_ms,
    ))
}

#[cfg(test)]
mod tests {
    use atlas_core::pipeline::train_atlas;

    use super::*;

    /// A configuration small enough to train inside a unit test.
    fn micro_config() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick();
        cfg.cycles = 12;
        cfg.scale = 0.12;
        cfg.pretrain.steps = 10;
        cfg.pretrain.hidden_dim = 12;
        cfg.finetune.cycles_per_design = 4;
        cfg.finetune.gbdt.n_estimators = 12;
        cfg
    }

    #[test]
    fn serves_and_caches() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model.clone(),
            cfg.clone(),
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        );

        let request = PredictRequest::new("C2", "W1", 8);
        let cold = service.call(request.clone()).expect("cold request");
        assert!(!cold.cache_hit);
        assert!(!cold.design_cache_hit);
        assert_eq!(cold.cycles, 8);
        assert_eq!(cold.per_cycle_total_w.len(), 8);
        assert!(cold.mean_total_w > 0.0);

        // Same key: embeddings cache hit, bit-identical numbers.
        let warm = service.call(request.clone()).expect("warm request");
        assert!(warm.cache_hit);
        assert!(warm.design_cache_hit);
        assert_eq!(warm.per_cycle_total_w, cold.per_cycle_total_w);
        assert_eq!(warm.mean_total_w, cold.mean_total_w);

        // Same design, different workload: design cache hit only.
        let other = service
            .call(PredictRequest::new("C2", "W2", 8))
            .expect("second workload");
        assert!(!other.cache_hit);
        assert!(other.design_cache_hit);

        // Parity with the direct model path.
        let lib = cfg.library();
        let dcfg = cfg.try_design("C2").expect("design");
        let gate = dcfg.generate();
        let mut w = cfg.try_workload("W1", dcfg.seed).expect("workload");
        let trace = simulate(&gate, &mut w, 8).expect("simulates");
        let direct = trained.model.predict(&gate, &lib, &trace);
        assert_eq!(direct.total_series(), cold.per_cycle_total_w);

        let stats = service.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.embedding_cache.hits, 1);
        assert_eq!(stats.design_cache.hits, 1);
    }

    #[test]
    fn error_paths_are_typed() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model,
            cfg,
            ServiceConfig {
                workers: 1,
                max_cycles: 64,
                ..ServiceConfig::default()
            },
        );
        assert_eq!(
            service.call(PredictRequest::new("C9", "W1", 8)),
            Err(ServeError::UnknownDesign("C9".into()))
        );
        assert_eq!(
            service.call(PredictRequest::new("C2", "W9", 8)),
            Err(ServeError::UnknownWorkload("W9".into()))
        );
        assert!(matches!(
            service.call(PredictRequest::new("C2", "W1", 0)),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            service.call(PredictRequest::new("C2", "W1", 65)),
            Err(ServeError::InvalidRequest(_))
        ));
        let stats = service.stats();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.errors, 4);
    }
}
