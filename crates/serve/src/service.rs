//! The long-lived prediction service: a worker pool over a **catalog of
//! hosted models** and a server-side workload library, with per-model
//! two-level LRU caches.
//!
//! Request execution has three stages with very different costs:
//!
//! 1. **Design materialization** — generate the gate-level netlist and
//!    build its sub-module graph data. Depends only on the design name,
//!    so it is cached per design (per model, since models may be trained
//!    at different scales).
//! 2. **Trace embedding** — simulate the workload and run the encoder
//!    over every (sub-module, cycle). Deterministic in (design, workload,
//!    cycles), so the resulting [`TraceEmbeddings`] are cached under that
//!    key — admitted against a **byte budget** sized from
//!    [`TraceEmbeddings::approx_bytes`]. This stage dominates cold
//!    latency; concurrent cold requests for the same key on the same
//!    model are **single-flighted**: one request computes, the rest block
//!    on the in-flight result instead of duplicating the work.
//! 3. **Head evaluation** — GBDT heads + memory model over the cached
//!    embeddings. Cheap; this is all a fully-warm request pays.
//!
//! # Multi-model routing
//!
//! One service hosts any number of named models (a [`ModelCatalog`]);
//! requests route by their optional `model` field, defaulting to the
//! catalog's default entry. Every model owns its embedding cache, design
//! cache, and single-flight map — models never share or evict each
//! other's entries, and [`AtlasService::stats`] reports occupancy per
//! model. Routing is name-only: a request answered by model `m` is
//! bit-identical whether `m` was addressed explicitly or as the default.
//!
//! # The workload library
//!
//! Clients may register a phase schedule once under a name
//! ([`AtlasService::register_workload`], wire verb `register_workload`)
//! and reference it from any later request via `workload_name`. The
//! library is shared across models; cached results are keyed by the
//! schedule's fingerprint, so re-registering a name with a different
//! schedule can never serve stale results. With
//! [`ServiceConfig::workload_file`] set, every registration is appended
//! to a JSON-lines **journal** that is replayed (fingerprint-validated)
//! at the next startup, so the library survives restarts.
//!
//! # The control plane
//!
//! The catalog is *live*: [`AtlasService::load_model`] and
//! [`AtlasService::unload_model`] (wire verbs `load_model` /
//! `unload_model`) add and remove hosted models without a restart.
//! Loading runs the full registry validation (format version + config
//! fingerprint); unloading is drain-safe — requests already routed to the
//! model complete on its still-alive state, later requests get a
//! structured `unknown_model` error, and the default model can never be
//! unloaded. Cold work is admitted through a per-model [`QuotaGate`]:
//! at most a quota's worth of workers may be tied up in one model's
//! simulate + encode pipelines, excess cold requests park (freeing the
//! worker) and re-dispatch as slots drain, and beyond the parking bound
//! they are rejected with a structured `quota_exceeded` error. One
//! model's cold storm therefore cannot starve another model's traffic.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread;
use std::time::Instant;

use atlas_core::features::{build_submodule_data, SubmoduleData};
use atlas_core::{
    AtlasModel, DeltaStats, ExperimentConfig, Precision, PreparedEncoder, TraceEmbeddings,
};
use atlas_liberty::Library;
use atlas_netlist::Design;
use atlas_sim::{schedule_fingerprint, simulate, PhasedWorkload, WorkloadPhase};
use serde::{Deserialize, Serialize};

use crate::cache::{CacheStats, LruCache};
use crate::error::ServeError;
use crate::protocol::{
    delta_response, summarize, PredictDeltaRequest, PredictDeltaResponse, PredictRequest,
    PredictResponse,
};
use crate::quota::{Admission, QuotaGate};
use crate::registry::{ModelCatalog, ModelRegistry, RegistryError, SavedModel};

/// Tuning knobs of one service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads answering requests concurrently (shared by every
    /// hosted model).
    pub workers: usize,
    /// Per-model byte budget of the (design, workload, cycles) →
    /// embeddings cache, accounted with
    /// [`TraceEmbeddings::approx_bytes`]. An embedding larger than the
    /// whole budget is served but never cached.
    pub embedding_cache_bytes: usize,
    /// Per-model capacity (entries) of the design → netlist + sub-module
    /// data cache.
    pub design_cache: usize,
    /// Upper bound on `cycles` per request (backpressure against
    /// accidental million-cycle requests).
    pub max_cycles: usize,
    /// Upper bound on phases per schedule — inline or registered.
    pub max_phases: usize,
    /// Upper bound on schedules in the server-side workload library.
    pub max_registered_workloads: usize,
    /// Upper bound on the byte size of one `load_design` upload body
    /// (the structural-Verilog text). Oversize uploads are refused with
    /// a structured `invalid_request` before parsing.
    pub max_design_bytes: usize,
    /// Upper bound on designs in the server-side design library.
    pub max_designs: usize,
    /// Threads used *inside* one request's embedding stage. Kept low by
    /// default because concurrency comes from the worker pool.
    pub embed_threads: usize,
    /// Explicit per-model cold-compute quotas (serving name → max workers
    /// concurrently tied up in that model's cold pipelines; clamped to
    /// ≥ 1). Models without an entry get the fair default share
    /// `workers / hosted models` (≥ 1), recomputed live as models are
    /// loaded and unloaded.
    pub model_quotas: HashMap<String, usize>,
    /// Upper bound on cold requests parked per model while its quota is
    /// saturated; beyond it requests are rejected with a structured
    /// `quota_exceeded` error instead of queueing without bound.
    pub max_queued_per_model: usize,
    /// JSON-lines journal of the workload library. Registrations append
    /// to it and are replayed (fingerprint-validated) at startup, so the
    /// library survives restarts. `None` keeps the library in-memory
    /// only.
    pub workload_file: Option<PathBuf>,
    /// Numeric precision of the inference encoders (applies to every
    /// hosted model; weights are converted once at model load).
    /// [`Precision::F32`] halves each cached embedding's bytes — doubling
    /// what fits `embedding_cache_bytes` — at the cost of the f32
    /// accuracy delta ([`atlas_core::F32_EMBED_TOLERANCE`]) instead of
    /// bit parity.
    pub precision: Precision,
    /// Identity of this process in a shard fleet (`None` when serving
    /// unsharded). Purely attributive: it is echoed by `stats` and
    /// stamped into cache snapshots so journals and dashboards stay
    /// per-shard attributable — request routing itself lives in the
    /// shard front door, not here.
    pub shard_id: Option<u32>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 4,
            embedding_cache_bytes: 256 << 20,
            design_cache: 16,
            max_cycles: 4096,
            max_phases: 64,
            max_registered_workloads: 1024,
            max_design_bytes: 2 << 20,
            max_designs: 64,
            embed_threads: 1,
            model_quotas: HashMap::new(),
            max_queued_per_model: 1024,
            workload_file: None,
            precision: Precision::F64,
            shard_id: None,
        }
    }
}

/// Cache key of stage two. `schedule_fp` is 0 for preset workloads and a
/// fingerprint of the phase schedule (inline or registered) otherwise, so
/// two schedule-driven requests share an entry exactly when their
/// schedules match. Model identity is not part of the key: each model
/// owns a separate cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
struct TraceKey {
    design: String,
    workload: String,
    cycles: usize,
    schedule_fp: u64,
}

/// Stage-one cache value: the materialized design.
struct DesignArtifacts {
    gate: Design,
    data: Vec<SubmoduleData>,
}

/// Identity of one hosted model, as reported by the `models` verb.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelInfo {
    /// Serving name (the `model` field of requests routed to it).
    pub name: String,
    /// On-disk format version of the loaded model file.
    pub format_version: u32,
    /// FNV-1a fingerprint of the model's training configuration.
    pub config_fingerprint: u64,
}

/// One registered schedule of the workload library, as reported by the
/// `workloads` and `register_workload` verbs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisteredWorkload {
    /// Library name (the `workload_name` field of requests using it).
    pub name: String,
    /// Number of phases in the stored schedule.
    pub phases: usize,
    /// Schedule fingerprint — the cache-key component, so clients can
    /// correlate registry state with cache behavior.
    pub fingerprint: u64,
}

/// One uploaded design of the design library, as reported by the
/// `load_design` verb.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignInfo {
    /// Library name (the `design` field of requests using it).
    pub name: String,
    /// Cell instances in the stored netlist.
    pub cells: usize,
    /// Nets in the stored netlist.
    pub nets: usize,
    /// FNV-1a fingerprint of the netlist's canonical structural-Verilog
    /// rendering — identical whether the design arrived over the wire or
    /// was loaded in-process, and used as the workload seed so the two
    /// routes predict bit-identically.
    pub fingerprint: u64,
}

/// Per-model slice of [`ServiceStats`].
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ModelStats {
    /// Serving name of the model these counters belong to.
    pub model: String,
    /// Inference precision of this model's prepared encoder (`"f64"` or
    /// `"f32"`; f32 embeddings cost half the cache bytes).
    pub precision: String,
    /// Requests routed to this model (including errors).
    pub requests: u64,
    /// Requests routed to this model that returned an error.
    pub errors: u64,
    /// Cold embeddings this model computed.
    pub embeddings_computed: u64,
    /// Requests that waited on this model's in-flight computations.
    pub coalesced_requests: u64,
    /// Effective cold-compute quota at snapshot time: the explicit
    /// [`ServiceConfig::model_quotas`] entry, else the fair share
    /// `workers / hosted models` (≥ 1).
    pub quota: usize,
    /// Cold requests parked behind this model's saturated quota
    /// (monotone total, not current occupancy).
    pub queued: u64,
    /// Cold requests rejected because quota *and* parking queue were
    /// full (monotone total).
    pub rejected_quota: u64,
    /// This model's embedding-cache counters (`weight`/`budget` bytes).
    pub embedding_cache: CacheStats,
    /// This model's design-cache counters (`weight`/`budget` entries).
    pub design_cache: CacheStats,
}

/// Aggregate service counters, with a per-model breakdown.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Requests answered (including errors, including requests that
    /// failed before resolving a model).
    pub requests: u64,
    /// Requests that returned an error.
    pub errors: u64,
    /// Cold embeddings actually computed (one full simulate + encode
    /// pipeline each). With single-flight, N concurrent cold requests
    /// for one key bump this by exactly 1.
    pub embeddings_computed: u64,
    /// Requests that waited on another request's in-flight computation
    /// instead of recomputing it.
    pub coalesced_requests: u64,
    /// Embedding-cache counters summed over models (`weight`/`budget` in
    /// bytes).
    pub embedding_cache: CacheStats,
    /// Design-cache counters summed over models (`weight`/`budget` in
    /// entries).
    pub design_cache: CacheStats,
    /// Shard identity of this process ([`ServiceConfig::shard_id`];
    /// `None` when serving unsharded).
    pub shard_id: Option<u32>,
    /// Per-model breakdown, sorted by serving name.
    pub models: Vec<ModelStats>,
}

/// Sum two cache-counter snapshots (used for the cross-model aggregate).
fn add_cache_stats(a: CacheStats, b: CacheStats) -> CacheStats {
    CacheStats {
        hits: a.hits + b.hits,
        misses: a.misses + b.misses,
        len: a.len + b.len,
        weight: a.weight + b.weight,
        budget: a.budget + b.budget,
    }
}

/// The in-flight slot of one cold (design, workload, cycles) computation.
/// The leader fills `result` and notifies; followers wait on `done`.
struct Flight {
    result: Mutex<Option<Result<Arc<TraceEmbeddings>, ServeError>>>,
    done: Condvar,
}

/// Everything one hosted model owns: weights, experiment config, caches,
/// the single-flight map, the cold-work admission gate, and its counters.
struct ModelState {
    name: String,
    format_version: u32,
    config_fingerprint: u64,
    model: AtlasModel,
    /// The inference encoder at the service's configured precision,
    /// converted **once** here at load (the f32 path narrows every weight
    /// matrix) and reused by every embedding this model computes.
    prepared: PreparedEncoder,
    experiment: ExperimentConfig,
    lib: Library,
    embeddings: LruCache<TraceKey, TraceEmbeddings>,
    designs: LruCache<String, DesignArtifacts>,
    inflight: Mutex<HashMap<TraceKey, Arc<Flight>>>,
    /// Explicit quota from [`ServiceConfig::model_quotas`]; `None` means
    /// the fair share, recomputed live from the hosted-model count.
    quota: Option<usize>,
    /// Admission gate for cold work (parked payloads are whole jobs, so
    /// a saturated model frees its worker thread immediately).
    gate: QuotaGate<Job>,
    requests: AtomicU64,
    errors: AtomicU64,
    embeds_computed: AtomicU64,
    coalesced: AtomicU64,
}

impl ModelState {
    fn new(name: String, saved: SavedModel, cfg: &ServiceConfig) -> ModelState {
        let lib = saved.config.library();
        let quota = cfg.model_quotas.get(&name).copied();
        let prepared = saved.model.prepare(cfg.precision);
        ModelState {
            name,
            format_version: saved.header.format_version,
            config_fingerprint: saved.header.config_fingerprint,
            model: saved.model,
            prepared,
            experiment: saved.config,
            lib,
            embeddings: LruCache::with_budget(cfg.embedding_cache_bytes),
            designs: LruCache::new(cfg.design_cache),
            inflight: Mutex::new(HashMap::new()),
            quota,
            gate: QuotaGate::new(cfg.max_queued_per_model),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            embeds_computed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Effective cold-compute quota given the current hosted-model count.
    fn effective_quota(&self, cfg: &ServiceConfig, hosted_models: usize) -> usize {
        self.quota
            .unwrap_or_else(|| cfg.workers.max(1) / hosted_models.max(1))
            .max(1)
    }

    fn stats(&self, effective_quota: usize) -> ModelStats {
        ModelStats {
            model: self.name.clone(),
            precision: self.prepared.precision().label().to_owned(),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            embeddings_computed: self.embeds_computed.load(Ordering::Relaxed),
            coalesced_requests: self.coalesced.load(Ordering::Relaxed),
            quota: effective_quota,
            queued: self.gate.queued_total(),
            rejected_quota: self.gate.rejected_total(),
            embedding_cache: self.embeddings.stats(),
            design_cache: self.designs.stats(),
        }
    }
}

/// A schedule stored in the workload library.
struct StoredWorkload {
    phases: Vec<WorkloadPhase>,
    fingerprint: u64,
}

/// A netlist stored in the design library (the `load_design` verb).
struct UploadedDesign {
    design: Design,
    fingerprint: u64,
}

/// Stable FNV-1a over arbitrary bytes — the fingerprint primitive shared
/// by design identities, cache-snapshot entries, and the shard ring.
pub(crate) fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stable FNV-1a fingerprint of a design's canonical structural-Verilog
/// rendering. Computed from `to_verilog` (not the uploaded bytes), so an
/// upload and an in-process load of the same netlist always agree.
fn design_fingerprint(design: &Design) -> u64 {
    fnv1a(design.to_verilog().bytes())
}

/// First line of a cache-snapshot file: the framing that must match the
/// restoring service before any entry is considered. Reuses the model
/// registry's format version so the two persistence formats revise in
/// lock-step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct SnapshotHeader {
    format_version: u32,
    precision: String,
    shard_id: Option<u32>,
}

/// The fingerprinted payload of one snapshot entry: a cached embedding
/// with enough identity (model name + config fingerprint) for a restore
/// to refuse entries that no longer match the hosting service.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SnapshotRecord {
    model: String,
    config_fingerprint: u64,
    key: TraceKey,
    embeddings: TraceEmbeddings,
}

/// One entry line of a cache snapshot (every line after the header).
/// `fingerprint` is FNV-1a over the record's canonical JSON rendering;
/// a restore re-derives it from the parsed record, so any bit flipped in
/// the payload — or in the fingerprint itself — disqualifies the entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SnapshotEntry {
    fingerprint: u64,
    record: SnapshotRecord,
}

/// Outcome of [`AtlasService::restore_cache`]. Restoring is never fatal:
/// a missing, truncated, tampered, or mismatched snapshot degrades to a
/// cold (or partially warm) start, and this report says how far it got.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotRestoreReport {
    /// Entries validated and re-admitted into a model's embedding cache.
    pub restored: usize,
    /// Entries (or, for an unusable header, whole files) dropped:
    /// unparsable, fingerprint-mismatched, addressed to a model this
    /// service does not host (or hosts with different weights), or too
    /// large for the cache budget.
    pub skipped: usize,
}

/// One line of the workload journal ([`ServiceConfig::workload_file`]):
/// a registered schedule with its fingerprint, so replay can detect a
/// journal whose schedule bytes were edited after the fact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadJournalEntry {
    /// Library name the schedule was registered under.
    pub name: String,
    /// The schedule itself.
    pub phases: Vec<WorkloadPhase>,
    /// `schedule_fingerprint(&phases)` at registration time; replay
    /// recomputes and refuses a mismatch.
    pub fingerprint: u64,
}

/// Render one journal line (no trailing newline).
pub fn render_journal_entry(entry: &WorkloadJournalEntry) -> String {
    serde_json::to_string(entry).unwrap_or_else(|e| format!(r#"{{"error":"render failure: {e}"}}"#))
}

/// Parse a whole workload journal: one JSON entry per non-empty line,
/// each fingerprint-validated against its schedule. Later entries for a
/// name supersede earlier ones at replay (the journal is append-only).
///
/// # Errors
///
/// [`ServeError::Registry`] on a malformed line or a fingerprint that
/// does not match the recomputed one.
pub fn parse_workload_journal(text: &str) -> Result<Vec<WorkloadJournalEntry>, ServeError> {
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let entry: WorkloadJournalEntry = serde_json::from_str(line).map_err(|e| {
            ServeError::Registry(format!("workload journal line {}: {e}", lineno + 1))
        })?;
        let actual = schedule_fingerprint(&entry.phases);
        if actual != entry.fingerprint {
            return Err(ServeError::Registry(format!(
                "workload journal line {}: `{}` claims fingerprint {:#018x} but its schedule \
                 hashes to {actual:#018x}",
                lineno + 1,
                entry.name,
                entry.fingerprint
            )));
        }
        entries.push(entry);
    }
    Ok(entries)
}

struct Shared {
    /// The live model catalog: `load_model`/`unload_model` mutate it at
    /// runtime, so every route takes a (brief) read lock and clones the
    /// `Arc` — in-flight requests keep an unloaded model's state alive
    /// until they finish.
    models: RwLock<HashMap<String, Arc<ModelState>>>,
    default_model: String,
    /// The default model's state, pinned separately: it can never be
    /// unloaded, so borrowing its config out of the service is safe.
    default_state: Arc<ModelState>,
    workloads: Mutex<HashMap<String, StoredWorkload>>,
    /// The design library: netlists uploaded via `load_design`,
    /// referenceable from any request's `design` field (presets win on a
    /// name collision, but uploads shadowing a preset are rejected at
    /// load time, so a collision cannot occur).
    designs: Mutex<HashMap<String, Arc<UploadedDesign>>>,
    /// Open append handle of the workload journal, when configured.
    journal: Mutex<Option<std::fs::File>>,
    cfg: ServiceConfig,
    requests: AtomicU64,
    errors: AtomicU64,
}

/// The reply type of one request: the response, or the echoed request id
/// plus the typed error.
pub type Reply = Result<PredictResponse, (Option<u64>, ServeError)>;

/// The reply type of one `predict_delta` request (see
/// [`AtlasService::submit_delta_with`]).
pub type DeltaReply = Result<PredictDeltaResponse, (Option<u64>, ServeError)>;

/// What a worker produced for one finished job: the predict summary every
/// path shares, plus — populated only on the delta path — the reuse
/// accounting a `predict_delta` reply carries on top of it.
struct Outcome {
    response: PredictResponse,
    base_hit: bool,
    stats: DeltaStats,
}

impl Outcome {
    /// A plain-predict outcome: no base, nothing reused.
    fn predict(response: PredictResponse) -> Outcome {
        Outcome {
            response,
            base_hit: false,
            stats: DeltaStats::default(),
        }
    }
}

/// Where a finished reply goes: a blocking channel ([`AtlasService::submit`]),
/// a callback invoked on the worker thread ([`AtlasService::submit_with`],
/// the reactor's non-blocking path), or the delta-shaped callback of
/// [`AtlasService::submit_delta_with`].
enum ReplySink {
    Channel(mpsc::Sender<Reply>),
    Callback(Box<dyn FnOnce(Reply) + Send>),
    DeltaCallback(Box<dyn FnOnce(DeltaReply) + Send>),
}

impl ReplySink {
    fn send(self, outcome: Result<Outcome, (Option<u64>, ServeError)>) {
        match self {
            // A disconnected receiver just means the client went away.
            ReplySink::Channel(tx) => {
                let _ = tx.send(outcome.map(|o| o.response));
            }
            ReplySink::Callback(f) => f(outcome.map(|o| o.response)),
            ReplySink::DeltaCallback(f) => {
                f(outcome.map(|o| delta_response(o.response, o.base_hit, &o.stats)));
            }
        }
    }
}

/// What one job computes: a plain prediction, or a delta prediction that
/// may reuse (sub-module × cycle) items from a cached base trace.
enum Work {
    Predict,
    Delta {
        /// The fully-defaulted base request naming the cache entry whose
        /// items may be reused (same model as the target by
        /// construction).
        base: PredictRequest,
        /// Advisory client hint; range-validated against the target
        /// design, never trusted for reuse decisions.
        changed_submodules: Option<Vec<usize>>,
    },
}

struct Job {
    request: PredictRequest,
    work: Work,
    reply: ReplySink,
}

#[derive(Default)]
struct QueueState {
    jobs: std::collections::VecDeque<Job>,
    shutdown: bool,
}

struct Queue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

/// A running prediction service. Cloneable handles are obtained by
/// wrapping it in an `Arc`; dropping the last handle shuts the workers
/// down.
pub struct AtlasService {
    shared: Arc<Shared>,
    queue: Arc<Queue>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl AtlasService {
    /// Start a single-model service from a registry-loaded model, served
    /// under its registry name (which is also the default model). A file
    /// whose header carries a name the catalog would reject (possible
    /// via `ModelRegistry::load_file`, which accepts files from outside
    /// any registry) is served under `default` instead.
    ///
    /// # Panics
    ///
    /// When [`AtlasService::start_catalog`] fails — with a one-model
    /// catalog that means a [`ServiceConfig::workload_file`] journal
    /// that cannot be replayed or opened (the panic message carries the
    /// underlying error). Use `start_catalog` directly to handle that
    /// as a `Result`.
    pub fn start(saved: SavedModel, cfg: ServiceConfig) -> AtlasService {
        let mut catalog = ModelCatalog::new();
        let name = if ModelCatalog::valid_name(&saved.header.name) {
            saved.header.name.clone()
        } else {
            "default".to_owned()
        };
        catalog
            .insert(name, saved)
            .expect("a validated or fallback name inserts into an empty catalog");
        AtlasService::start_catalog(catalog, cfg)
            .unwrap_or_else(|e| panic!("failed to start single-model service: {e}"))
    }

    /// Start a single-model service from an in-memory model and its
    /// training config, served under the name `default`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`AtlasService::start`].
    pub fn start_with(
        model: AtlasModel,
        experiment: ExperimentConfig,
        cfg: ServiceConfig,
    ) -> AtlasService {
        let mut catalog = ModelCatalog::new();
        catalog
            .insert_model("default", model, experiment)
            .expect("`default` is a valid catalog name");
        AtlasService::start_catalog(catalog, cfg)
            .unwrap_or_else(|e| panic!("failed to start single-model service: {e}"))
    }

    /// Start a service hosting every model of `catalog` behind one
    /// worker pool. Each model gets its own embedding/design caches and
    /// single-flight map, sized by `cfg`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Registry`] when the catalog is empty, or when the
    /// configured [`ServiceConfig::workload_file`] cannot be replayed
    /// (corrupt/tampered entries) or opened for appending.
    pub fn start_catalog(
        catalog: ModelCatalog,
        cfg: ServiceConfig,
    ) -> Result<AtlasService, ServeError> {
        let (default_model, entries) = catalog
            .into_entries()
            .ok_or_else(|| ServeError::Registry("cannot serve an empty model catalog".into()))?;
        let models: HashMap<String, Arc<ModelState>> = entries
            .into_iter()
            .map(|(name, saved)| {
                let state = Arc::new(ModelState::new(name.clone(), saved, &cfg));
                (name, state)
            })
            .collect();
        let default_state = Arc::clone(
            models
                .get(&default_model)
                .expect("the catalog default names one of its entries"),
        );
        let (workloads, journal) = match &cfg.workload_file {
            Some(path) => {
                let library = replay_workload_library(path, &cfg)?;
                let file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .map_err(|e| {
                        ServeError::Registry(format!(
                            "open workload journal {}: {e}",
                            path.display()
                        ))
                    })?;
                (library, Some(file))
            }
            None => (HashMap::new(), None),
        };
        let shared = Arc::new(Shared {
            models: RwLock::new(models),
            default_model,
            default_state,
            workloads: Mutex::new(workloads),
            designs: Mutex::new(HashMap::new()),
            journal: Mutex::new(journal),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            cfg,
        });
        let queue = Arc::new(Queue {
            state: Mutex::new(QueueState::default()),
            ready: Condvar::new(),
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let queue = Arc::clone(&queue);
                thread::spawn(move || worker_loop(&shared, &queue))
            })
            .collect();
        Ok(AtlasService {
            shared,
            queue,
            workers,
        })
    }

    fn enqueue(&self, request: PredictRequest, work: Work, reply: ReplySink) {
        requeue(
            &self.queue,
            Job {
                request,
                work,
                reply,
            },
        );
    }

    /// Enqueue a request; the returned channel yields the reply.
    pub fn submit(&self, request: PredictRequest) -> mpsc::Receiver<Reply> {
        let (tx, rx) = mpsc::channel();
        self.enqueue(request, Work::Predict, ReplySink::Channel(tx));
        rx
    }

    /// Enqueue a request whose reply is delivered to `callback` on the
    /// worker thread — the non-blocking submission path the event-loop
    /// front door uses. The callback must be cheap and must not block
    /// (it runs inside the worker pool).
    pub fn submit_with(
        &self,
        request: PredictRequest,
        callback: impl FnOnce(Reply) + Send + 'static,
    ) {
        self.enqueue(
            request,
            Work::Predict,
            ReplySink::Callback(Box::new(callback)),
        );
    }

    /// Enqueue a `predict_delta` request whose reply is delivered to
    /// `callback` on the worker thread — the delta sibling of
    /// [`AtlasService::submit_with`]. The response is bit-identical to a
    /// full `predict` of the target; the base only decides how much of
    /// the embedding work is *reused* rather than recomputed.
    pub fn submit_delta_with(
        &self,
        request: PredictDeltaRequest,
        callback: impl FnOnce(DeltaReply) + Send + 'static,
    ) {
        let work = Work::Delta {
            base: request.base_request(),
            changed_submodules: request.changed_submodules.clone(),
        };
        self.enqueue(
            request.target(),
            work,
            ReplySink::DeltaCallback(Box::new(callback)),
        );
    }

    /// Answer one `predict_delta` request, blocking until a worker
    /// finishes it.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`] the request produced.
    pub fn call_delta(
        &self,
        request: PredictDeltaRequest,
    ) -> Result<PredictDeltaResponse, ServeError> {
        let (tx, rx) = mpsc::channel();
        self.submit_delta_with(request, move |reply| {
            let _ = tx.send(reply);
        });
        match rx.recv() {
            Ok(Ok(response)) => Ok(response),
            Ok(Err((_, error))) => Err(error),
            Err(_) => Err(ServeError::Shutdown),
        }
    }

    /// Answer one request, blocking until a worker finishes it.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`] the request produced.
    pub fn call(&self, request: PredictRequest) -> Result<PredictResponse, ServeError> {
        match self.submit(request).recv() {
            Ok(Ok(response)) => Ok(response),
            Ok(Err((_, error))) => Err(error),
            Err(_) => Err(ServeError::Shutdown),
        }
    }

    /// Aggregate counters plus the per-model breakdown.
    pub fn stats(&self) -> ServiceStats {
        let mut models: Vec<ModelStats> = {
            let map = self.shared.models.read().expect("models lock");
            let hosted = map.len();
            map.values()
                .map(|m| m.stats(m.effective_quota(&self.shared.cfg, hosted)))
                .collect()
        };
        models.sort_by(|a, b| a.model.cmp(&b.model));
        let mut stats = ServiceStats {
            requests: self.shared.requests.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
            shard_id: self.shared.cfg.shard_id,
            ..ServiceStats::default()
        };
        for m in &models {
            stats.embeddings_computed += m.embeddings_computed;
            stats.coalesced_requests += m.coalesced_requests;
            stats.embedding_cache = add_cache_stats(stats.embedding_cache, m.embedding_cache);
            stats.design_cache = add_cache_stats(stats.design_cache, m.design_cache);
        }
        stats.models = models;
        stats
    }

    /// Identity of every hosted model, sorted by serving name.
    pub fn models(&self) -> Vec<ModelInfo> {
        let mut infos: Vec<ModelInfo> = self
            .shared
            .models
            .read()
            .expect("models lock")
            .values()
            .map(|m| ModelInfo {
                name: m.name.clone(),
                format_version: m.format_version,
                config_fingerprint: m.config_fingerprint,
            })
            .collect();
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    /// Add `saved` to the live catalog under `name`, without a restart.
    /// The model is routable (and visible to `models`/`stats`) the moment
    /// this returns.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] for a name the catalog would
    /// reject; [`ServeError::Registry`] when the name is already hosted.
    pub fn load_model(&self, name: &str, saved: SavedModel) -> Result<ModelInfo, ServeError> {
        if !ModelCatalog::valid_name(name) {
            return Err(ServeError::InvalidRequest(format!(
                "invalid model name `{name}`"
            )));
        }
        // Build the state (library materialization etc.) outside the
        // write lock: routing stays unblocked until the map insert.
        let state = Arc::new(ModelState::new(name.to_owned(), saved, &self.shared.cfg));
        let info = ModelInfo {
            name: state.name.clone(),
            format_version: state.format_version,
            config_fingerprint: state.config_fingerprint,
        };
        let mut models = self.shared.models.write().expect("models lock");
        if models.contains_key(name) {
            return Err(RegistryError::Duplicate(name.to_owned()).into());
        }
        models.insert(name.to_owned(), state);
        Ok(info)
    }

    /// [`AtlasService::load_model`] from a model file on disk, validated
    /// exactly like a catalog entry (format version + config
    /// fingerprint) via [`ModelRegistry::load_file`] — the wire verb
    /// `load_model`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Registry`] for unreadable, corrupt,
    /// wrong-format-version, or fingerprint-mismatched files, plus every
    /// [`AtlasService::load_model`] error.
    pub fn load_model_file(
        &self,
        name: &str,
        path: impl AsRef<std::path::Path>,
    ) -> Result<ModelInfo, ServeError> {
        let saved = ModelRegistry::load_file(path)?;
        self.load_model(name, saved)
    }

    /// Remove a hosted model from the live catalog — the wire verb
    /// `unload_model`. Drain-safe: requests already routed keep the
    /// model's state alive (via its `Arc`) and complete normally; cold
    /// requests parked behind its quota re-enter the shared queue and
    /// re-route (typically to a structured `unknown_model` error; to the
    /// replacement model if one was loaded under the same name first);
    /// requests arriving after removal get `unknown_model`.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] for the default model (it can
    /// never be unloaded); [`ServeError::UnknownModel`] when no hosted
    /// model has this name.
    pub fn unload_model(&self, name: &str) -> Result<(), ServeError> {
        if name == self.shared.default_model {
            return Err(ServeError::InvalidRequest(format!(
                "the default model `{name}` cannot be unloaded"
            )));
        }
        let removed = self
            .shared
            .models
            .write()
            .expect("models lock")
            .remove(name)
            .ok_or_else(|| ServeError::UnknownModel(name.to_owned()))?;
        for job in removed.gate.drain_parked() {
            requeue(&self.queue, job);
        }
        Ok(())
    }

    /// Serving name of the default model (requests without a `model`
    /// field route here).
    pub fn default_model(&self) -> &str {
        &self.shared.default_model
    }

    /// Store `phases` in the workload library under `name`, making it
    /// referenceable from any later request's `workload_name` field.
    /// Returns the stored summary and whether an existing schedule was
    /// replaced (safe: cache entries are keyed by schedule fingerprint,
    /// so a replaced schedule can never serve stale results). With a
    /// [`ServiceConfig::workload_file`], the registration is journaled
    /// before it becomes visible, so a restart replays it.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] for a bad name (empty, too long,
    /// non `[A-Za-z0-9._-]`, or shadowing a preset), a bad schedule
    /// (empty, over [`ServiceConfig::max_phases`], or failing
    /// [`PhasedWorkload::try_new`] validation), or a full library;
    /// [`ServeError::Registry`] when the journal append fails (the
    /// registration is not applied).
    pub fn register_workload(
        &self,
        name: &str,
        phases: Vec<WorkloadPhase>,
    ) -> Result<(RegisteredWorkload, bool), ServeError> {
        validate_workload(name, &phases, &self.shared.cfg)?;
        let fingerprint = schedule_fingerprint(&phases);
        let mut library = self.shared.workloads.lock().expect("workload lock");
        if !library.contains_key(name) && library.len() >= self.shared.cfg.max_registered_workloads
        {
            return Err(ServeError::InvalidRequest(format!(
                "workload library is full ({} schedules)",
                library.len()
            )));
        }
        // Journal-then-apply while holding the library lock, so the
        // journal's line order matches the order registrations became
        // visible — replay (last entry wins) then reproduces this exact
        // library. A failed append registers nothing.
        if let Some(file) = self.shared.journal.lock().expect("journal lock").as_mut() {
            let line = render_journal_entry(&WorkloadJournalEntry {
                name: name.to_owned(),
                phases: phases.clone(),
                fingerprint,
            });
            writeln!(file, "{line}")
                .and_then(|()| file.flush())
                .map_err(|e| ServeError::Registry(format!("append workload journal: {e}")))?;
        }
        let summary = RegisteredWorkload {
            name: name.to_owned(),
            phases: phases.len(),
            fingerprint,
        };
        let replaced = library
            .insert(
                name.to_owned(),
                StoredWorkload {
                    phases,
                    fingerprint,
                },
            )
            .is_some();
        Ok((summary, replaced))
    }

    /// Every registered schedule, sorted by name.
    pub fn workloads(&self) -> Vec<RegisteredWorkload> {
        let library = self.shared.workloads.lock().expect("workload lock");
        let mut all: Vec<RegisteredWorkload> = library
            .iter()
            .map(|(name, w)| RegisteredWorkload {
                name: name.clone(),
                phases: w.phases.len(),
                fingerprint: w.fingerprint,
            })
            .collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }

    /// Parse a structural-Verilog body with the hardened
    /// [`Design::from_verilog`] reader and store it in the design
    /// library under `name`, making it referenceable from any later
    /// predict request's `design` field — the wire verb `load_design`.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] for a bad name (empty, too long,
    /// non `[A-Za-z0-9._-]`, starting with `.`, or shadowing a preset
    /// design), a body over [`ServiceConfig::max_design_bytes`], a full
    /// library, or a name already loaded (uploads are never replaced:
    /// per-model design caches are keyed by name, so replacement could
    /// serve stale artifacts); [`ServeError::ParseError`] when the body
    /// fails to parse (the message carries the reader's typed
    /// diagnostic).
    pub fn load_design(&self, name: &str, verilog: &str) -> Result<DesignInfo, ServeError> {
        if verilog.len() > self.shared.cfg.max_design_bytes {
            return Err(ServeError::InvalidRequest(format!(
                "design body of {} bytes exceeds the service limit {}",
                verilog.len(),
                self.shared.cfg.max_design_bytes
            )));
        }
        let design =
            Design::from_verilog(verilog).map_err(|e| ServeError::ParseError(e.to_string()))?;
        self.load_design_parsed(name, design)
    }

    /// Store an already-built [`Design`] in the design library under
    /// `name` — the in-process twin of [`AtlasService::load_design`].
    /// The stored fingerprint (and therefore the workload seed) is
    /// computed from the design's canonical `to_verilog` rendering, so
    /// predictions are bit-identical whichever route loaded it.
    ///
    /// # Errors
    ///
    /// The same name/library errors as [`AtlasService::load_design`].
    pub fn load_design_parsed(&self, name: &str, design: Design) -> Result<DesignInfo, ServeError> {
        let bad = |msg: String| ServeError::InvalidRequest(msg);
        let name_ok = !name.is_empty()
            && name.len() <= 64
            && !name.starts_with('.')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
        if !name_ok {
            return Err(bad(format!(
                "bad design name `{name}`: 1-64 chars of [A-Za-z0-9._-], not starting with `.`"
            )));
        }
        if self
            .shared
            .default_state
            .experiment
            .try_design(name)
            .is_ok()
        {
            return Err(bad(format!(
                "design name `{name}` shadows a built-in preset"
            )));
        }
        let info = DesignInfo {
            name: name.to_owned(),
            cells: design.cell_count(),
            nets: design.net_count(),
            fingerprint: design_fingerprint(&design),
        };
        let mut library = self.shared.designs.lock().expect("design lock");
        if library.contains_key(name) {
            return Err(bad(format!("design `{name}` is already loaded")));
        }
        if library.len() >= self.shared.cfg.max_designs {
            return Err(bad(format!(
                "design library is full ({} designs)",
                library.len()
            )));
        }
        library.insert(
            name.to_owned(),
            Arc::new(UploadedDesign {
                design,
                fingerprint: info.fingerprint,
            }),
        );
        Ok(info)
    }

    /// Every uploaded design, sorted by name.
    pub fn designs(&self) -> Vec<DesignInfo> {
        let library = self.shared.designs.lock().expect("design lock");
        let mut all: Vec<DesignInfo> = library
            .iter()
            .map(|(name, d)| DesignInfo {
                name: name.clone(),
                cells: d.design.cell_count(),
                nets: d.design.net_count(),
                fingerprint: d.fingerprint,
            })
            .collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }

    /// The experiment configuration the **default** model was trained
    /// under.
    pub fn experiment(&self) -> &ExperimentConfig {
        &self.shared.default_state.experiment
    }

    /// This process's shard identity ([`ServiceConfig::shard_id`];
    /// `None` when serving unsharded).
    pub fn shard_id(&self) -> Option<u32> {
        self.shared.cfg.shard_id
    }

    /// Serialize every hosted model's resident embedding cache to
    /// `path` — the warm-start snapshot a restarted shard reloads with
    /// [`AtlasService::restore_cache`]. JSON lines: one header carrying
    /// the registry format version, precision, and shard id, then one
    /// fingerprinted entry per cached embedding, oldest-first per model
    /// (so a restore reproduces eviction priority). Written to a
    /// sibling temporary and renamed into place, so a crash mid-write
    /// never leaves a truncated file under `path`. Returns the number
    /// of entries written.
    ///
    /// # Errors
    ///
    /// [`ServeError::Registry`] when serialization or the filesystem
    /// write fails.
    pub fn snapshot_cache(&self, path: impl AsRef<std::path::Path>) -> Result<usize, ServeError> {
        let path = path.as_ref();
        let fail = |what: &str, e: &dyn std::fmt::Display| {
            ServeError::Registry(format!("{what} cache snapshot {}: {e}", path.display()))
        };
        let header = SnapshotHeader {
            format_version: crate::registry::FORMAT_VERSION,
            precision: self.shared.cfg.precision.label().to_owned(),
            shard_id: self.shared.cfg.shard_id,
        };
        let mut out = serde_json::to_string(&header).map_err(|e| fail("render", &e))?;
        out.push('\n');
        let mut models: Vec<Arc<ModelState>> = self
            .shared
            .models
            .read()
            .expect("models lock")
            .values()
            .cloned()
            .collect();
        models.sort_by(|a, b| a.name.cmp(&b.name));
        let mut written = 0usize;
        for state in models {
            for (key, embeddings, _weight) in state.embeddings.export() {
                let entry = SnapshotEntry {
                    fingerprint: 0,
                    record: SnapshotRecord {
                        model: state.name.clone(),
                        config_fingerprint: state.config_fingerprint,
                        key,
                        embeddings: (*embeddings).clone(),
                    },
                };
                let body = serde_json::to_string(&entry.record).map_err(|e| fail("render", &e))?;
                let entry = SnapshotEntry {
                    fingerprint: fnv1a(body.bytes()),
                    ..entry
                };
                out.push_str(&serde_json::to_string(&entry).map_err(|e| fail("render", &e))?);
                out.push('\n');
                written += 1;
            }
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, out.as_bytes()).map_err(|e| fail("write", &e))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            fail("rename", &e)
        })?;
        Ok(written)
    }

    /// Re-admit a [`AtlasService::snapshot_cache`] file into the hosted
    /// models' embedding caches — the warm-start path of a restarted
    /// shard. Never fatal: a missing or unreadable file, a header whose
    /// format version or precision does not match this service, and any
    /// entry that is unparsable, fingerprint-mismatched, addressed to an
    /// unhosted model (or one hosted with a different config
    /// fingerprint), internally inconsistent, or too large for the cache
    /// budget are all *skipped*, degrading to a cold start for exactly
    /// those keys. Restored entries count as neither computed embeddings
    /// nor cache traffic: `embeddings_computed` stays untouched, so a
    /// warm-started shard answering its first request reports
    /// `embeddings_computed == 0` with a cache hit.
    pub fn restore_cache(&self, path: impl AsRef<std::path::Path>) -> SnapshotRestoreReport {
        let mut report = SnapshotRestoreReport::default();
        let Ok(text) = std::fs::read_to_string(path.as_ref()) else {
            return report;
        };
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header: Option<SnapshotHeader> =
            lines.next().and_then(|l| serde_json::from_str(l).ok());
        let header_ok = header.is_some_and(|h| {
            h.format_version == crate::registry::FORMAT_VERSION
                && h.precision == self.shared.cfg.precision.label()
        });
        if !header_ok {
            report.skipped = lines.count();
            return report;
        }
        // Validate in file order first (oldest-first per model), then
        // decide admission from the NEWEST end against each model's
        // *live* budget: a snapshot taken under a larger `--cache-mb`
        // must never churn the restored cache (restoring oldest-first
        // would admit old entries only to evict them lines later).
        struct Candidate {
            state: Arc<ModelState>,
            key: TraceKey,
            embeddings: TraceEmbeddings,
            weight: usize,
        }
        let mut candidates: Vec<Candidate> = Vec::new();
        for line in lines {
            let Ok(entry) = serde_json::from_str::<SnapshotEntry>(line) else {
                report.skipped += 1;
                continue;
            };
            // Re-derive the fingerprint from the *parsed* record: the
            // canonical rendering is a fixed point of parse-then-render,
            // so any corrupted bit — payload or fingerprint — mismatches.
            let authentic = serde_json::to_string(&entry.record)
                .is_ok_and(|body| fnv1a(body.bytes()) == entry.fingerprint);
            let state = self
                .shared
                .models
                .read()
                .expect("models lock")
                .get(&entry.record.model)
                .cloned();
            let admissible = authentic
                && state
                    .as_ref()
                    .is_some_and(|s| s.config_fingerprint == entry.record.config_fingerprint)
                && entry.record.embeddings.precision() == self.shared.cfg.precision
                && entry.record.embeddings.cycles() == entry.record.key.cycles;
            match (admissible, state) {
                (true, Some(state)) => {
                    let weight = entry.record.embeddings.approx_bytes();
                    candidates.push(Candidate {
                        state,
                        key: entry.record.key,
                        embeddings: entry.record.embeddings,
                        weight,
                    });
                }
                _ => report.skipped += 1,
            }
        }
        // Newest-first budget walk, stopping per model at the first entry
        // that no longer fits — strict recency order, so an older entry
        // is never admitted at the expense of a newer one.
        let mut spent: HashMap<String, (usize, bool)> = HashMap::new();
        let mut keep = vec![false; candidates.len()];
        for (i, c) in candidates.iter().enumerate().rev() {
            let budget = c.state.embeddings.budget();
            let (used, full) = spent.entry(c.state.name.clone()).or_insert((0, false));
            if !*full && *used + c.weight <= budget {
                *used += c.weight;
                keep[i] = true;
            } else {
                *full = true;
            }
        }
        // Insert the kept set in file order (oldest-first), reproducing
        // the snapshot's relative recency inside the live cache.
        for (c, keep) in candidates.into_iter().zip(keep) {
            let restored = keep
                && c.state
                    .embeddings
                    .insert_weighted(c.key, Arc::new(c.embeddings), c.weight);
            if restored {
                report.restored += 1;
            } else {
                report.skipped += 1;
            }
        }
        report
    }
}

impl Drop for AtlasService {
    fn drop(&mut self) {
        let drained = {
            let mut state = self.queue.state.lock().expect("queue lock");
            state.shutdown = true;
            // Pending jobs get a shutdown error rather than a hang.
            std::mem::take(&mut state.jobs)
        };
        for job in drained {
            job.reply.send(Err((job.request.id, ServeError::Shutdown)));
        }
        self.queue.ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // With the workers joined nothing can park anymore; jobs still
        // parked behind a saturated quota (their would-be releasers were
        // themselves answered with Shutdown) get the same typed error
        // instead of a silent drop.
        let models: Vec<Arc<ModelState>> = self
            .shared
            .models
            .read()
            .expect("models lock")
            .values()
            .cloned()
            .collect();
        for state in models {
            for job in state.gate.drain_parked() {
                job.reply.send(Err((job.request.id, ServeError::Shutdown)));
            }
        }
    }
}

/// Push a job onto the shared worker queue, or answer it with
/// [`ServeError::Shutdown`] if the service is stopping. Used by fresh
/// submissions and by quota releases re-dispatching parked jobs.
fn requeue(queue: &Queue, job: Job) {
    let mut state = queue.state.lock().expect("queue lock");
    if state.shutdown {
        drop(state);
        job.reply.send(Err((job.request.id, ServeError::Shutdown)));
    } else {
        state.jobs.push_back(job);
        drop(state);
        queue.ready.notify_one();
    }
}

/// Shared name/schedule validation of `register_workload` and journal
/// replay.
fn validate_workload(
    name: &str,
    phases: &[WorkloadPhase],
    cfg: &ServiceConfig,
) -> Result<(), ServeError> {
    let bad = |msg: String| ServeError::InvalidRequest(msg);
    let name_ok = !name.is_empty()
        && name.len() <= 64
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
    if !name_ok {
        return Err(bad(format!(
            "bad workload name `{name}`: 1-64 chars of [A-Za-z0-9._-], not starting with `.`"
        )));
    }
    if PhasedWorkload::preset(name, 0).is_some() {
        return Err(bad(format!(
            "workload name `{name}` shadows a built-in preset"
        )));
    }
    if phases.len() > cfg.max_phases {
        return Err(bad(format!(
            "schedule has {} phases, limit is {}",
            phases.len(),
            cfg.max_phases
        )));
    }
    // Validate the schedule exactly like an inline `phases` field.
    PhasedWorkload::try_new(name, phases.to_vec(), 0)
        .map_err(|e| bad(format!("bad schedule: {e}")))?;
    Ok(())
}

/// Rebuild the workload library from its journal (missing file = empty
/// library). Entries are validated like live registrations and the last
/// entry for a name wins, mirroring append order.
fn replay_workload_library(
    path: &std::path::Path,
    cfg: &ServiceConfig,
) -> Result<HashMap<String, StoredWorkload>, ServeError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(HashMap::new()),
        Err(e) => {
            return Err(ServeError::Registry(format!(
                "read workload journal {}: {e}",
                path.display()
            )))
        }
    };
    let mut library = HashMap::new();
    for entry in parse_workload_journal(&text)? {
        validate_workload(&entry.name, &entry.phases, cfg).map_err(|e| {
            ServeError::Registry(format!("workload journal entry `{}`: {e}", entry.name))
        })?;
        library.insert(
            entry.name,
            StoredWorkload {
                phases: entry.phases,
                fingerprint: entry.fingerprint,
            },
        );
        if library.len() > cfg.max_registered_workloads {
            return Err(ServeError::Registry(format!(
                "workload journal {} holds more than {} schedules",
                path.display(),
                cfg.max_registered_workloads
            )));
        }
    }
    Ok(library)
}

fn worker_loop(shared: &Shared, queue: &Queue) {
    loop {
        let job = {
            let mut state = queue.state.lock().expect("queue lock");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = queue.ready.wait(state).expect("queue lock");
            }
        };
        process_job(shared, queue, job);
    }
}

/// Answer one job, attributing the outcome to the service counters and —
/// when routing got that far — the model's. Every job is finished
/// exactly once; parked jobs are finished by the worker that picks them
/// back up after a quota release.
fn finish(
    shared: &Shared,
    state: Option<&ModelState>,
    job: Job,
    result: Result<Outcome, ServeError>,
) {
    shared.requests.fetch_add(1, Ordering::Relaxed);
    if result.is_err() {
        shared.errors.fetch_add(1, Ordering::Relaxed);
    }
    if let Some(state) = state {
        state.requests.fetch_add(1, Ordering::Relaxed);
        if result.is_err() {
            state.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
    let id = job.request.id;
    job.reply.send(result.map_err(|e| (id, e)));
}

/// Releases one cold-compute slot on drop (panic-safe), re-dispatching
/// the next job parked behind the quota — if any — through the shared
/// worker queue.
struct SlotGuard<'a> {
    gate: &'a QuotaGate<Job>,
    queue: &'a Queue,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        if let Some(job) = self.gate.release() {
            requeue(self.queue, job);
        }
    }
}

/// Validate, route, and answer (or park) one job.
fn process_job(shared: &Shared, queue: &Queue, job: Job) {
    // Service-level validation needs no model.
    let cycles = job.request.cycles;
    if cycles == 0 {
        let err = ServeError::InvalidRequest("cycles must be positive".into());
        return finish(shared, None, job, Err(err));
    }
    if cycles > shared.cfg.max_cycles {
        let err = ServeError::InvalidRequest(format!(
            "cycles {cycles} exceeds the service limit {}",
            shared.cfg.max_cycles
        ));
        return finish(shared, None, job, Err(err));
    }
    // Route to a live model. Cloning the `Arc` out of the read-locked
    // map keeps the model alive for this whole request even if it is
    // unloaded mid-flight — that is what makes unloads drain-safe. The
    // hosted-model count is captured from the same snapshot so the
    // fair-share quota below is consistent with the catalog this
    // request was routed under.
    let name = job
        .request
        .model
        .as_deref()
        .unwrap_or(&shared.default_model);
    let (routed, hosted) = {
        let map = shared.models.read().expect("models lock");
        (map.get(name).cloned(), map.len())
    };
    let Some(state) = routed else {
        let err = ServeError::UnknownModel(name.to_owned());
        return finish(shared, None, job, Err(err));
    };
    let started = Instant::now();
    // Resolve names before touching any cache so error paths are uniform
    // regardless of cache state (and need no quota slot).
    let resolved = resolve_design(shared, &state, &job.request.design)
        .and_then(|source| Ok((source, resolve_workload(shared, &job.request)?)));
    let (source, spec) = match resolved {
        Ok(r) => r,
        Err(e) => return finish(shared, Some(&state), job, Err(e)),
    };
    let key = TraceKey {
        design: job.request.design.clone(),
        workload: spec.label().to_owned(),
        cycles,
        schedule_fp: spec.fingerprint(),
    };
    // Resolve a delta job's base to its cache key up front: a malformed
    // edit description (e.g. a base naming both `phases` and
    // `workload_name`) is a typed error regardless of cache state, just
    // like the target's own validation above. The base itself is only a
    // lookup key — an unknown base design or evicted entry is not an
    // error, it just means nothing can be reused.
    let delta = match &job.work {
        Work::Predict => None,
        Work::Delta {
            base,
            changed_submodules,
        } => match resolve_workload(shared, base) {
            Ok(base_spec) => Some(DeltaPlan {
                base_key: TraceKey {
                    design: base.design.clone(),
                    workload: base_spec.label().to_owned(),
                    cycles: base.cycles,
                    schedule_fp: base_spec.fingerprint(),
                },
                changed_submodules: changed_submodules.clone(),
            }),
            Err(e) => return finish(shared, Some(&state), job, Err(e)),
        },
    };
    // The warm path pays only head evaluation and needs no admission.
    if let Some(embeddings) = state.embeddings.get(&key) {
        // Fully warm: stage one and two both skipped. Validate the
        // workload anyway so a cached entry never masks a bad request
        // (it cannot be cached under an invalid workload, but the
        // check is cheap and keeps the invariant obvious).
        let result = build_workload(&state, &spec, source.seed()).map(|_| {
            Outcome::predict(respond(
                &job.request,
                &state,
                &spec,
                &embeddings,
                true,
                true,
                started,
            ))
        });
        return finish(shared, Some(&state), job, result);
    }
    // Cold work goes through the model's admission gate, so one model's
    // cold storm can tie up at most its quota's worth of workers.
    let quota = state.effective_quota(&shared.cfg, hosted);
    match state.gate.admit(quota, job) {
        Admission::Granted(job) => {
            let _slot = SlotGuard {
                gate: &state.gate,
                queue,
            };
            let result = cold_predict(
                shared,
                &state,
                &job.request,
                &spec,
                &source,
                &key,
                delta.as_ref(),
                started,
            );
            finish(shared, Some(&state), job, result);
        }
        // The job now lives in the gate; this worker is free for other
        // models' requests. A quota release re-dispatches it.
        Admission::Parked => {}
        Admission::Rejected(job) => {
            let err = ServeError::QuotaExceeded(state.name.clone());
            finish(shared, Some(&state), job, Err(err));
        }
    }
}

/// Head evaluation over resolved embeddings: the tail every request path
/// shares.
fn respond(
    request: &PredictRequest,
    state: &ModelState,
    spec: &WorkloadSpec,
    embeddings: &TraceEmbeddings,
    cache_hit: bool,
    design_cache_hit: bool,
    started: Instant,
) -> PredictResponse {
    let trace = state.model.predict_from_embeddings(embeddings);
    let latency_ms = started.elapsed().as_secs_f64() * 1e3;
    summarize(
        request,
        &state.name,
        spec.label(),
        &trace,
        cache_hit,
        design_cache_hit,
        latency_ms,
    )
}

/// The request's workload, resolved to either a preset name or a concrete
/// phase schedule (inline or from the library) before any cache is
/// touched — so error paths are uniform regardless of cache state, and an
/// unknown `workload_name` is a structured [`ServeError::UnknownWorkload`]
/// (with the request id preserved by the reply plumbing), never a generic
/// parse error.
enum WorkloadSpec {
    Preset(String),
    Schedule {
        label: String,
        phases: Vec<WorkloadPhase>,
        fingerprint: u64,
    },
}

impl WorkloadSpec {
    fn label(&self) -> &str {
        match self {
            WorkloadSpec::Preset(name) => name,
            WorkloadSpec::Schedule { label, .. } => label,
        }
    }

    fn fingerprint(&self) -> u64 {
        match self {
            WorkloadSpec::Preset(_) => 0,
            WorkloadSpec::Schedule { fingerprint, .. } => *fingerprint,
        }
    }
}

/// The request's design, resolved to either a preset generator config or
/// an uploaded netlist from the design library. Presets are checked
/// first (uploads can never shadow them — `load_design` rejects preset
/// names), then the library; an unknown name is a structured
/// [`ServeError::UnknownDesign`].
enum DesignSource {
    Preset(atlas_designs::DesignConfig),
    Uploaded(Arc<UploadedDesign>),
}

/// The workload seed every uploaded design pins. A constant, not the
/// upload's content fingerprint: editing a netlist and re-uploading it
/// must keep the stimulus identical, or `predict_delta` could never
/// reuse anything (every design edit would also reshuffle every toggle
/// pattern). Both load routes (wire upload, in-process) trivially agree.
const UPLOADED_DESIGN_SEED: u64 = 0x0041_544c_4153;

impl DesignSource {
    /// The workload seed this design pins: the preset's configured seed,
    /// or [`UPLOADED_DESIGN_SEED`] for uploads.
    fn seed(&self) -> u64 {
        match self {
            DesignSource::Preset(cfg) => cfg.seed,
            DesignSource::Uploaded(_) => UPLOADED_DESIGN_SEED,
        }
    }
}

fn resolve_design(
    shared: &Shared,
    state: &ModelState,
    name: &str,
) -> Result<DesignSource, ServeError> {
    if let Ok(cfg) = state.experiment.try_design(name) {
        return Ok(DesignSource::Preset(cfg));
    }
    shared
        .designs
        .lock()
        .expect("design lock")
        .get(name)
        .cloned()
        .map(DesignSource::Uploaded)
        .ok_or_else(|| ServeError::UnknownDesign(name.to_owned()))
}

fn resolve_workload(shared: &Shared, request: &PredictRequest) -> Result<WorkloadSpec, ServeError> {
    let bad = |msg: &str| ServeError::InvalidRequest(msg.to_owned());
    match (&request.phases, &request.workload_name) {
        (Some(_), Some(_)) => Err(bad(
            "a request cannot carry both `phases` and `workload_name`",
        )),
        (Some(phases), None) => {
            if phases.len() > shared.cfg.max_phases {
                return Err(ServeError::InvalidRequest(format!(
                    "inline schedule has {} phases, limit is {}",
                    phases.len(),
                    shared.cfg.max_phases
                )));
            }
            let label = request
                .workload
                .clone()
                .ok_or_else(|| bad("an inline schedule needs a `workload` label"))?;
            let fingerprint = schedule_fingerprint(phases);
            Ok(WorkloadSpec::Schedule {
                label,
                phases: phases.clone(),
                fingerprint,
            })
        }
        (None, Some(name)) => {
            let library = shared.workloads.lock().expect("workload lock");
            match library.get(name) {
                Some(stored) => Ok(WorkloadSpec::Schedule {
                    label: name.clone(),
                    phases: stored.phases.clone(),
                    fingerprint: stored.fingerprint,
                }),
                None => Err(ServeError::UnknownWorkload(name.clone())),
            }
        }
        (None, None) => match &request.workload {
            Some(name) => Ok(WorkloadSpec::Preset(name.clone())),
            None => Err(bad(
                "a request must name a `workload`, a `workload_name`, or carry `phases`",
            )),
        },
    }
}

/// Build the simulation stimulus for a resolved workload.
fn build_workload(
    state: &ModelState,
    spec: &WorkloadSpec,
    seed: u64,
) -> Result<PhasedWorkload, ServeError> {
    match spec {
        WorkloadSpec::Preset(name) => Ok(state.experiment.try_workload(name, seed)?),
        WorkloadSpec::Schedule { label, phases, .. } => {
            PhasedWorkload::try_new(label.clone(), phases.clone(), seed)
                .map_err(|e| ServeError::InvalidRequest(format!("bad inline schedule: {e}")))
        }
    }
}

/// A validated delta job, resolved to the base cache key it may reuse
/// from plus the client's (advisory) edit hint.
struct DeltaPlan {
    base_key: TraceKey,
    changed_submodules: Option<Vec<usize>>,
}

/// Role of one cold request in the single-flight protocol.
enum FlightRole {
    Leader(Arc<Flight>),
    Follower(Arc<Flight>),
}

/// Resolves the leader's flight slot on drop, so followers are never
/// stranded — even if the leader's computation panics, they observe a
/// typed error instead of hanging.
struct FlightGuard<'a> {
    state: &'a ModelState,
    key: &'a TraceKey,
    flight: &'a Arc<Flight>,
    resolved: bool,
}

impl FlightGuard<'_> {
    fn resolve(mut self, outcome: Result<Arc<TraceEmbeddings>, ServeError>) {
        self.publish(outcome);
        self.resolved = true;
    }

    fn publish(&self, outcome: Result<Arc<TraceEmbeddings>, ServeError>) {
        self.state
            .inflight
            .lock()
            .expect("inflight lock")
            .remove(self.key);
        let mut slot = self.flight.result.lock().expect("flight lock");
        *slot = Some(outcome);
        drop(slot);
        self.flight.done.notify_all();
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.resolved {
            self.publish(Err(ServeError::Shutdown));
        }
    }
}

/// The cold path, run under a granted quota slot: single-flight the
/// (design, workload, cycles) computation per key, then evaluate the
/// heads. The first cold request for a key computes; concurrent
/// duplicates wait on its in-flight slot. NOTE: a follower occupies its
/// worker thread (and its quota slot) while waiting, but can never
/// deadlock the pool — a leader only exists once it is already running
/// on a worker, so it always makes progress.
fn cold_predict(
    shared: &Shared,
    state: &ModelState,
    request: &PredictRequest,
    spec: &WorkloadSpec,
    source: &DesignSource,
    key: &TraceKey,
    delta: Option<&DeltaPlan>,
    started: Instant,
) -> Result<Outcome, ServeError> {
    let role = {
        let mut inflight = state.inflight.lock().expect("inflight lock");
        match inflight.get(key) {
            Some(flight) => FlightRole::Follower(Arc::clone(flight)),
            None => {
                let flight = Arc::new(Flight {
                    result: Mutex::new(None),
                    done: Condvar::new(),
                });
                inflight.insert(key.clone(), Arc::clone(&flight));
                FlightRole::Leader(flight)
            }
        }
    };
    match role {
        FlightRole::Follower(flight) => {
            state.coalesced.fetch_add(1, Ordering::Relaxed);
            let mut slot = flight.result.lock().expect("flight lock");
            while slot.is_none() {
                slot = flight.done.wait(slot).expect("flight lock");
            }
            let embeddings = slot.clone().expect("checked Some")?;
            // The embedding work was shared, not redone: report it as a
            // cache hit (the follower paid only head evaluation plus the
            // wait). A delta follower likewise reused everything through
            // the flight, so its delta accounting stays zero.
            Ok(Outcome::predict(respond(
                request,
                state,
                spec,
                &embeddings,
                true,
                true,
                started,
            )))
        }
        FlightRole::Leader(flight) => {
            let guard = FlightGuard {
                state,
                key,
                flight: &flight,
                resolved: false,
            };
            // Re-check the cache: between the miss and leadership
            // another leader may have finished and populated it.
            if let Some(embeddings) = state.embeddings.get(key) {
                guard.resolve(Ok(Arc::clone(&embeddings)));
                build_workload(state, spec, source.seed())?;
                Ok(Outcome::predict(respond(
                    request,
                    state,
                    spec,
                    &embeddings,
                    true,
                    true,
                    started,
                )))
            } else {
                let outcome = compute_embeddings(shared, state, request, spec, source, key, delta);
                match outcome {
                    Ok(computed) => {
                        guard.resolve(Ok(Arc::clone(&computed.embeddings)));
                        Ok(Outcome {
                            response: respond(
                                request,
                                state,
                                spec,
                                &computed.embeddings,
                                false,
                                computed.design_cache_hit,
                                started,
                            ),
                            base_hit: computed.base_hit,
                            stats: computed.stats,
                        })
                    }
                    Err(e) => {
                        guard.resolve(Err(e.clone()));
                        Err(e)
                    }
                }
            }
        }
    }
}

/// What [`compute_embeddings`] produced: the (cached) embeddings plus the
/// cache/delta accounting the reply reports.
struct Computed {
    embeddings: Arc<TraceEmbeddings>,
    design_cache_hit: bool,
    base_hit: bool,
    stats: DeltaStats,
}

/// The cold path: materialize the design (cached), simulate the workload,
/// run the encoder — reusing base items on the delta path — and admit the
/// result against the byte budget.
fn compute_embeddings(
    shared: &Shared,
    state: &ModelState,
    request: &PredictRequest,
    spec: &WorkloadSpec,
    source: &DesignSource,
    key: &TraceKey,
    delta: Option<&DeltaPlan>,
) -> Result<Computed, ServeError> {
    let mut workload = build_workload(state, spec, source.seed())?;
    let (artifacts, design_cache_hit) = match state.designs.get(&request.design) {
        Some(artifacts) => (artifacts, true),
        None => {
            let gate = match source {
                DesignSource::Preset(cfg) => cfg.generate(),
                DesignSource::Uploaded(d) => d.design.clone(),
            };
            let data = build_submodule_data(&gate, &state.lib);
            let artifacts = Arc::new(DesignArtifacts { gate, data });
            state
                .designs
                .insert(request.design.clone(), Arc::clone(&artifacts));
            (artifacts, false)
        }
    };
    // The edit hint is advisory for reuse but still validated, so a typo
    // surfaces as a typed error instead of silently degrading to a full
    // recompute forever.
    if let Some(changed) = delta.and_then(|d| d.changed_submodules.as_ref()) {
        let count = artifacts.data.len();
        if let Some(&bad) = changed.iter().find(|&&i| i >= count) {
            return Err(ServeError::InvalidRequest(format!(
                "changed_submodules index {bad} out of range: design `{}` has {count} sub-modules",
                request.design
            )));
        }
    }
    let trace = simulate(&artifacts.gate, &mut workload, request.cycles)
        .map_err(|e| ServeError::Simulation(e.to_string()))?;
    let base = delta.and_then(|d| state.embeddings.get(&d.base_key));
    let (embeddings, base_hit, stats) = match (delta.is_some(), base) {
        (true, Some(base)) => {
            let (embeddings, stats) = state.model.embed_trace_delta_with(
                &state.prepared,
                &artifacts.gate,
                &state.lib,
                &artifacts.data,
                &trace,
                shared.cfg.embed_threads,
                &base,
            );
            (Arc::new(embeddings), true, stats)
        }
        (has_delta, _) => {
            // Plain predict, or a delta whose base nobody has cached:
            // full recompute. On the missed-base path every item counts
            // as recomputed; the unique-pattern split is not tracked.
            let embeddings = Arc::new(state.model.embed_trace_with(
                &state.prepared,
                &artifacts.gate,
                &state.lib,
                &artifacts.data,
                &trace,
                shared.cfg.embed_threads,
            ));
            let stats = DeltaStats {
                recomputed_cycles: if has_delta {
                    artifacts.data.len() * request.cycles
                } else {
                    0
                },
                ..DeltaStats::default()
            };
            (embeddings, false, stats)
        }
    };
    state.embeds_computed.fetch_add(1, Ordering::Relaxed);
    // An embedding bigger than the whole budget is rejected by the cache
    // (served once, never resident); everything else evicts LRU entries
    // until it fits.
    let _ = state.embeddings.insert_weighted(
        key.clone(),
        Arc::clone(&embeddings),
        embeddings.approx_bytes(),
    );
    Ok(Computed {
        embeddings,
        design_cache_hit,
        base_hit,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use atlas_core::pipeline::train_atlas;
    use atlas_sim::WorkloadPhase;

    use super::*;
    use crate::protocol::DeltaBase;

    /// A configuration small enough to train inside a unit test.
    fn micro_config() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick();
        cfg.cycles = 12;
        cfg.scale = 0.12;
        cfg.pretrain.steps = 10;
        cfg.pretrain.hidden_dim = 12;
        cfg.finetune.cycles_per_design = 4;
        cfg.finetune.gbdt.n_estimators = 12;
        cfg
    }

    #[test]
    fn serves_and_caches() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model.clone(),
            cfg.clone(),
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        );

        let request = PredictRequest::new("C2", "W1", 8);
        let cold = service.call(request.clone()).expect("cold request");
        assert!(!cold.cache_hit);
        assert!(!cold.design_cache_hit);
        assert_eq!(cold.cycles, 8);
        assert_eq!(cold.model, "default");
        assert_eq!(cold.per_cycle_total_w.len(), 8);
        assert!(cold.mean_total_w > 0.0);

        // Same key: embeddings cache hit, bit-identical numbers.
        let warm = service.call(request.clone()).expect("warm request");
        assert!(warm.cache_hit);
        assert!(warm.design_cache_hit);
        assert_eq!(warm.per_cycle_total_w, cold.per_cycle_total_w);
        assert_eq!(warm.mean_total_w, cold.mean_total_w);

        // Same design, different workload: design cache hit only.
        let other = service
            .call(PredictRequest::new("C2", "W2", 8))
            .expect("second workload");
        assert!(!other.cache_hit);
        assert!(other.design_cache_hit);

        // Parity with the direct model path.
        let lib = cfg.library();
        let dcfg = cfg.try_design("C2").expect("design");
        let gate = dcfg.generate();
        let mut w = cfg.try_workload("W1", dcfg.seed).expect("workload");
        let trace = simulate(&gate, &mut w, 8).expect("simulates");
        let direct = trained.model.predict(&gate, &lib, &trace);
        assert_eq!(direct.total_series(), cold.per_cycle_total_w);

        let stats = service.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.embedding_cache.hits, 1);
        assert_eq!(stats.design_cache.hits, 1);
        assert_eq!(stats.embeddings_computed, 2);
        assert_eq!(stats.coalesced_requests, 0);
        // Byte accounting: two embeddings resident, occupancy within budget.
        assert_eq!(stats.embedding_cache.len, 2);
        assert!(stats.embedding_cache.weight > 0);
        assert!(stats.embedding_cache.weight <= stats.embedding_cache.budget);
        // Single model: the per-model slice equals the aggregate.
        assert_eq!(stats.models.len(), 1);
        assert_eq!(stats.models[0].model, "default");
        assert_eq!(stats.models[0].requests, 3);
        assert_eq!(stats.models[0].embedding_cache, stats.embedding_cache);
    }

    #[test]
    fn predict_delta_reuses_the_base_and_stays_bit_identical() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let start = || {
            AtlasService::start_with(
                trained.model.clone(),
                cfg.clone(),
                ServiceConfig {
                    workers: 2,
                    ..ServiceConfig::default()
                },
            )
        };
        let service = start();

        // Warm the base trace, then ask for the same schedule at more
        // cycles as a delta against it.
        let base = service
            .call(PredictRequest::new("C2", "W1", 8))
            .expect("base predict");
        assert!(!base.cache_hit);
        let delta_request = PredictDeltaRequest {
            id: Some(7),
            model: None,
            design: "C2".to_owned(),
            workload: Some("W1".to_owned()),
            workload_name: None,
            cycles: 12,
            phases: None,
            base: Some(DeltaBase {
                design: None,
                workload: None,
                workload_name: None,
                cycles: Some(8),
                phases: None,
            }),
            changed_submodules: None,
        };
        let delta = service
            .call_delta(delta_request.clone())
            .expect("delta predict");
        assert_eq!(delta.id, Some(7));
        assert_eq!(delta.verb, "predict_delta");
        assert!(delta.base_hit, "the 8-cycle base trace is cached");
        assert!(!delta.cache_hit);
        assert!(
            delta.reused_cycles > 0,
            "appended-cycles edit must reuse clean items"
        );
        assert_eq!(delta.per_cycle_total_w.len(), 12);

        // Bit-identity: a fresh service computing the target cold
        // produces exactly the same series.
        let fresh = start()
            .call(PredictRequest::new("C2", "W1", 12))
            .expect("full recompute");
        assert_eq!(delta.per_cycle_total_w, fresh.per_cycle_total_w);
        assert_eq!(delta.mean_total_w, fresh.mean_total_w);
        assert_eq!(delta.peak_total_w, fresh.peak_total_w);

        // The delta result lands in the cache under the target key like
        // any other predict.
        let warm = service
            .call(PredictRequest::new("C2", "W1", 12))
            .expect("warm target");
        assert!(warm.cache_hit);
        assert_eq!(warm.per_cycle_total_w, delta.per_cycle_total_w);

        // Re-issuing the delta now short-circuits on the warm target.
        let again = service.call_delta(delta_request).expect("warm delta");
        assert!(again.cache_hit);
        assert_eq!(again.reused_cycles, 0);
        assert_eq!(again.per_cycle_total_w, delta.per_cycle_total_w);
    }

    #[test]
    fn predict_delta_handles_cold_bases_and_bad_edit_specs() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model.clone(),
            cfg.clone(),
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        );

        // A base nobody ever computed is not an error — the request
        // degenerates to a full cold predict with `base_hit: false`.
        let cold = service
            .call_delta(PredictDeltaRequest {
                id: None,
                model: None,
                design: "C2".to_owned(),
                workload: Some("W1".to_owned()),
                workload_name: None,
                cycles: 8,
                phases: None,
                base: Some(DeltaBase {
                    design: None,
                    workload: Some("W2".to_owned()),
                    workload_name: None,
                    cycles: None,
                    phases: None,
                }),
                changed_submodules: None,
            })
            .expect("cold-base delta");
        assert!(!cold.base_hit);
        assert!(!cold.cache_hit);
        assert_eq!(cold.reused_cycles, 0);
        assert!(cold.recomputed_cycles > 0);
        let reference = AtlasService::start_with(
            trained.model.clone(),
            cfg.clone(),
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        )
        .call(PredictRequest::new("C2", "W1", 8))
        .expect("reference");
        assert_eq!(cold.per_cycle_total_w, reference.per_cycle_total_w);

        // An out-of-range `changed_submodules` hint on a cold target is a
        // typed invalid_request, not a panic and not a silent ignore. (A
        // warm target never consults the hint — nothing recomputes.)
        let bad_hint = service.call_delta(PredictDeltaRequest {
            id: Some(3),
            model: None,
            design: "C2".to_owned(),
            workload: Some("W1".to_owned()),
            workload_name: None,
            cycles: 10,
            phases: None,
            base: None,
            changed_submodules: Some(vec![0, 9999]),
        });
        assert!(matches!(bad_hint, Err(ServeError::InvalidRequest(_))));

        // A base spec that is self-contradictory gets the same typed
        // error a predict carrying it would.
        let bad_base = service.call_delta(PredictDeltaRequest {
            id: Some(4),
            model: None,
            design: "C2".to_owned(),
            workload: Some("W1".to_owned()),
            workload_name: None,
            cycles: 8,
            phases: None,
            base: Some(DeltaBase {
                design: None,
                workload: None,
                workload_name: Some("lib".to_owned()),
                cycles: None,
                phases: Some(vec![WorkloadPhase {
                    activity: 0.2,
                    min_len: 2,
                    max_len: 4,
                }]),
            }),
            changed_submodules: None,
        });
        assert!(matches!(bad_base, Err(ServeError::InvalidRequest(_))));
    }

    #[test]
    fn f32_precision_serves_and_shrinks_cache_weight() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let start = |precision| {
            AtlasService::start_with(
                trained.model.clone(),
                cfg.clone(),
                ServiceConfig {
                    workers: 1,
                    precision,
                    ..ServiceConfig::default()
                },
            )
        };
        let f64_service = start(Precision::F64);
        let f32_service = start(Precision::F32);

        let request = PredictRequest::new("C2", "W1", 8);
        let wide = f64_service.call(request.clone()).expect("f64 request");
        let narrow = f32_service.call(request).expect("f32 request");

        // The f32 path produces sane power numbers of the same shape; it
        // trades bit parity for bytes, so no exact-equality assertion here
        // (the accuracy delta itself is gated in `infer_bench`).
        assert_eq!(narrow.cycles, wide.cycles);
        assert_eq!(narrow.per_cycle_total_w.len(), wide.per_cycle_total_w.len());
        assert!(narrow.mean_total_w > 0.0);
        assert!(narrow.per_cycle_total_w.iter().all(|w| w.is_finite()));

        // Cached embeddings cost fewer bytes at f32: the same trace weighs
        // less, so a byte-budgeted cache holds more traces.
        let wide_stats = f64_service.stats();
        let narrow_stats = f32_service.stats();
        assert!(narrow_stats.embedding_cache.weight > 0);
        assert!(narrow_stats.embedding_cache.weight < wide_stats.embedding_cache.weight);
        assert_eq!(wide_stats.models[0].precision, "f64");
        assert_eq!(narrow_stats.models[0].precision, "f32");
    }

    #[test]
    fn single_flight_collapses_concurrent_cold_requests() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let clients = 4;
        let service = AtlasService::start_with(
            trained.model,
            cfg,
            ServiceConfig {
                workers: clients,
                ..ServiceConfig::default()
            },
        );
        let barrier = std::sync::Barrier::new(clients);
        let responses: Vec<PredictResponse> = thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    let service = &service;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        service
                            .call(PredictRequest::new("C2", "W1", 8))
                            .expect("request succeeds")
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client"))
                .collect()
        });

        // All four answers are bit-identical.
        for resp in &responses[1..] {
            assert_eq!(resp.per_cycle_total_w, responses[0].per_cycle_total_w);
        }
        let stats = service.stats();
        assert_eq!(stats.requests, clients as u64);
        assert_eq!(stats.errors, 0);
        assert_eq!(
            stats.embeddings_computed, 1,
            "N concurrent cold requests for one key must compute exactly one embedding"
        );
        // Everyone who did not compute either coalesced onto the flight
        // or arrived after completion and hit the cache.
        assert_eq!(
            stats.coalesced_requests + stats.embedding_cache.hits,
            clients as u64 - 1
        );
    }

    #[test]
    fn inline_schedules_predict_and_cache_by_fingerprint() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model,
            cfg,
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        let phases = vec![
            WorkloadPhase {
                activity: 0.4,
                min_len: 2,
                max_len: 6,
            },
            WorkloadPhase {
                activity: 0.05,
                min_len: 4,
                max_len: 10,
            },
        ];
        let req = PredictRequest::with_phases("C2", "custom", 8, phases.clone());
        let cold = service.call(req.clone()).expect("inline request");
        assert!(!cold.cache_hit);
        assert_eq!(cold.workload, "custom");
        assert!(cold.mean_total_w > 0.0);

        // Same schedule again: a cache hit with identical numbers.
        let warm = service.call(req.clone()).expect("inline repeat");
        assert!(warm.cache_hit);
        assert_eq!(warm.per_cycle_total_w, cold.per_cycle_total_w);

        // Same label, different schedule: distinct cache entry.
        let mut other_phases = phases.clone();
        other_phases[0].activity = 0.9;
        let other = service
            .call(PredictRequest::with_phases("C2", "custom", 8, other_phases))
            .expect("different schedule");
        assert!(!other.cache_hit);
        assert_ne!(other.per_cycle_total_w, cold.per_cycle_total_w);

        // An inline schedule must not shadow the preset of the same name:
        // "W1"-labelled inline ≠ preset W1 cache entry.
        let preset = service
            .call(PredictRequest::new("C2", "W1", 8))
            .expect("preset");
        assert!(!preset.cache_hit);
        let inline_w1 = service
            .call(PredictRequest::with_phases("C2", "W1", 8, phases))
            .expect("inline W1 label");
        assert!(!inline_w1.cache_hit);

        // Bad schedules are typed errors.
        let empty = service.call(PredictRequest::with_phases("C2", "x", 8, vec![]));
        assert!(matches!(empty, Err(ServeError::InvalidRequest(_))));
        let bad = service.call(PredictRequest::with_phases(
            "C2",
            "x",
            8,
            vec![WorkloadPhase {
                activity: 2.0,
                min_len: 1,
                max_len: 2,
            }],
        ));
        assert!(matches!(bad, Err(ServeError::InvalidRequest(_))));
        let too_many = service.call(PredictRequest::with_phases(
            "C2",
            "x",
            8,
            vec![
                WorkloadPhase {
                    activity: 0.1,
                    min_len: 1,
                    max_len: 2,
                };
                65
            ],
        ));
        assert!(matches!(too_many, Err(ServeError::InvalidRequest(_))));
        // An inline schedule without a label is a typed error too.
        let mut unlabelled = PredictRequest::with_phases(
            "C2",
            "x",
            8,
            vec![WorkloadPhase {
                activity: 0.1,
                min_len: 1,
                max_len: 2,
            }],
        );
        unlabelled.workload = None;
        assert!(matches!(
            service.call(unlabelled),
            Err(ServeError::InvalidRequest(_))
        ));
    }

    #[test]
    fn registered_workloads_serve_by_name_with_cache_hits() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model,
            cfg,
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        let phases = vec![
            WorkloadPhase {
                activity: 0.5,
                min_len: 2,
                max_len: 5,
            },
            WorkloadPhase {
                activity: 0.02,
                min_len: 3,
                max_len: 9,
            },
        ];

        // Register once...
        let (info, replaced) = service
            .register_workload("bursty", phases.clone())
            .expect("registers");
        assert!(!replaced);
        assert_eq!(info.name, "bursty");
        assert_eq!(info.phases, 2);
        assert_eq!(info.fingerprint, schedule_fingerprint(&phases));
        assert_eq!(service.workloads(), vec![info.clone()]);

        // ...then reference it by name across requests: first cold, then
        // a cache hit.
        let req = PredictRequest::with_workload_name("C2", "bursty", 8);
        let cold = service.call(req.clone()).expect("registered request");
        assert!(!cold.cache_hit);
        assert_eq!(cold.workload, "bursty");
        let warm = service.call(req).expect("registered repeat");
        assert!(warm.cache_hit, "second use of a registered name must hit");
        assert_eq!(warm.per_cycle_total_w, cold.per_cycle_total_w);

        // A registered schedule and the identical inline schedule share a
        // cache entry only when labels match; here the labels differ
        // ("bursty" vs "inline-label"), so the entry is distinct, but the
        // same label + schedule does share.
        let inline_same = service
            .call(PredictRequest::with_phases(
                "C2",
                "bursty",
                8,
                phases.clone(),
            ))
            .expect("inline twin");
        assert!(
            inline_same.cache_hit,
            "inline schedule identical to the registered one (same label) shares the entry"
        );

        // Replacing the schedule under the same name is allowed, flagged,
        // and can never serve stale results (different fingerprint).
        let mut phases2 = phases.clone();
        phases2[0].activity = 0.9;
        let (info2, replaced) = service
            .register_workload("bursty", phases2)
            .expect("re-registers");
        assert!(replaced);
        assert_ne!(info2.fingerprint, info.fingerprint);
        let after = service
            .call(PredictRequest::with_workload_name("C2", "bursty", 8))
            .expect("post-replacement request");
        assert!(
            !after.cache_hit,
            "replaced schedule must not reuse old entry"
        );
        assert_ne!(after.per_cycle_total_w, cold.per_cycle_total_w);

        // Validation: bad names, preset shadowing, bad schedules, both
        // phases and workload_name at once.
        assert!(matches!(
            service.register_workload("", vec![]),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            service.register_workload("W1", phases.clone()),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            service.register_workload("x/y", phases.clone()),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            service.register_workload("bad", vec![]),
            Err(ServeError::InvalidRequest(_))
        ));
        let mut both = PredictRequest::with_workload_name("C2", "bursty", 8);
        both.phases = Some(phases);
        assert!(matches!(
            service.call(both),
            Err(ServeError::InvalidRequest(_))
        ));
    }

    #[test]
    fn unknown_workload_name_is_structured_and_preserves_the_id() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model,
            cfg,
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        // Direct call: a typed UnknownWorkload, not a parse error.
        let mut req = PredictRequest::with_workload_name("C2", "never-registered", 8);
        req.id = Some(42);
        assert_eq!(
            service.call(req.clone()),
            Err(ServeError::UnknownWorkload("never-registered".into()))
        );
        // Through the submit path the reply tuple carries the id, so the
        // wire layer can echo it.
        let reply = service.submit(req).recv().expect("reply");
        assert_eq!(
            reply,
            Err((
                Some(42),
                ServeError::UnknownWorkload("never-registered".into())
            ))
        );
        // Unknown preset names keep their id the same way.
        let mut preset = PredictRequest::new("C2", "W9", 8);
        preset.id = Some(43);
        let reply = service.submit(preset).recv().expect("reply");
        assert_eq!(
            reply,
            Err((Some(43), ServeError::UnknownWorkload("W9".into())))
        );
    }

    #[test]
    fn workload_library_is_bounded() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model,
            cfg,
            ServiceConfig {
                workers: 1,
                max_registered_workloads: 2,
                ..ServiceConfig::default()
            },
        );
        let phase = vec![WorkloadPhase {
            activity: 0.2,
            min_len: 1,
            max_len: 2,
        }];
        service.register_workload("a", phase.clone()).expect("a");
        service.register_workload("b", phase.clone()).expect("b");
        assert!(matches!(
            service.register_workload("c", phase.clone()),
            Err(ServeError::InvalidRequest(_))
        ));
        // Replacing an existing name still works at the cap.
        let (_, replaced) = service.register_workload("a", phase).expect("replace");
        assert!(replaced);
        assert_eq!(service.workloads().len(), 2);
    }

    #[test]
    fn multi_model_routing_is_isolated_and_parity_holds() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let mut catalog = ModelCatalog::new();
        catalog
            .insert_model("alpha", trained.model.clone(), cfg.clone())
            .expect("alpha");
        catalog
            .insert_model("beta", trained.model.clone(), cfg.clone())
            .expect("beta");
        let service = AtlasService::start_catalog(
            catalog,
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        )
        .expect("catalog serves");
        assert_eq!(service.default_model(), "alpha");
        let models = service.models();
        assert_eq!(models.len(), 2);
        assert_eq!(models[0].name, "alpha");
        assert_eq!(models[1].name, "beta");
        assert_eq!(models[0].config_fingerprint, models[1].config_fingerprint);

        // Parity: the same request is bit-identical whether the model is
        // addressed as the default or by name.
        let implicit = service
            .call(PredictRequest::new("C2", "W1", 8))
            .expect("default-addressed");
        assert_eq!(implicit.model, "alpha");
        let explicit = service
            .call(PredictRequest::new("C2", "W1", 8).on_model("alpha"))
            .expect("name-addressed");
        assert_eq!(explicit.model, "alpha");
        assert_eq!(explicit.per_cycle_total_w, implicit.per_cycle_total_w);
        assert!(explicit.cache_hit, "both routes share the model's cache");

        // The second model computes its own embedding (no cross-model
        // cache sharing) but produces identical numbers for identical
        // weights.
        let beta = service
            .call(PredictRequest::new("C2", "W1", 8).on_model("beta"))
            .expect("beta-addressed");
        assert_eq!(beta.model, "beta");
        assert!(!beta.cache_hit, "models do not share cache entries");
        assert_eq!(beta.per_cycle_total_w, implicit.per_cycle_total_w);

        // Per-model accounting: each model holds exactly its own entry.
        let stats = service.stats();
        assert_eq!(stats.models.len(), 2);
        let alpha = &stats.models[0];
        let beta_stats = &stats.models[1];
        assert_eq!(alpha.model, "alpha");
        assert_eq!(alpha.requests, 2);
        assert_eq!(alpha.embeddings_computed, 1);
        assert_eq!(alpha.embedding_cache.len, 1);
        assert_eq!(beta_stats.model, "beta");
        assert_eq!(beta_stats.requests, 1);
        assert_eq!(beta_stats.embeddings_computed, 1);
        assert_eq!(beta_stats.embedding_cache.len, 1);
        // Aggregates are the sums.
        assert_eq!(stats.embeddings_computed, 2);
        assert_eq!(stats.embedding_cache.len, 2);
        assert_eq!(
            stats.embedding_cache.weight,
            alpha.embedding_cache.weight + beta_stats.embedding_cache.weight
        );

        // Unknown model: typed error with the id preserved.
        let mut req = PredictRequest::new("C2", "W1", 8).on_model("gamma");
        req.id = Some(7);
        let reply = service.submit(req).recv().expect("reply");
        assert_eq!(
            reply,
            Err((Some(7), ServeError::UnknownModel("gamma".into())))
        );
    }

    #[test]
    fn tiny_embedding_budget_serves_but_does_not_cache() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model,
            cfg,
            ServiceConfig {
                workers: 1,
                embedding_cache_bytes: 1, // every embedding is oversized
                ..ServiceConfig::default()
            },
        );
        let req = PredictRequest::new("C2", "W1", 6);
        let first = service.call(req.clone()).expect("first");
        assert!(!first.cache_hit);
        let second = service.call(req).expect("second");
        assert!(!second.cache_hit, "oversized embeddings are never cached");
        let stats = service.stats();
        assert_eq!(stats.embeddings_computed, 2);
        assert_eq!(stats.embedding_cache.len, 0);
        assert_eq!(stats.embedding_cache.weight, 0);
        // Identical numbers either way.
        assert_eq!(first.per_cycle_total_w, second.per_cycle_total_w);
    }

    #[test]
    fn callback_submission_delivers_on_worker() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model,
            cfg,
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        );
        let (tx, rx) = mpsc::channel();
        service.submit_with(PredictRequest::new("C2", "W1", 6), move |reply| {
            tx.send(reply).expect("test channel");
        });
        let reply = rx.recv().expect("callback ran");
        let resp = reply.expect("request succeeds");
        assert_eq!(resp.cycles, 6);

        let (tx, rx) = mpsc::channel();
        service.submit_with(PredictRequest::new("C9", "W1", 6), move |reply| {
            tx.send(reply).expect("test channel");
        });
        let reply = rx.recv().expect("callback ran");
        assert_eq!(
            reply.expect_err("unknown design").1,
            ServeError::UnknownDesign("C9".into())
        );
    }

    #[test]
    fn hot_load_and_unload_mutate_the_live_catalog() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model.clone(),
            cfg.clone(),
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        );
        // Persist a model file for the hot load.
        let dir = std::env::temp_dir().join(format!("atlas-hotload-{}", std::process::id()));
        let registry = crate::registry::ModelRegistry::open(&dir).expect("registry opens");
        let path = registry
            .save("canary", &trained.model, &cfg)
            .expect("saves");

        // Warm the default model, then load the second one.
        let base = service
            .call(PredictRequest::new("C2", "W1", 8))
            .expect("default-model request");
        let info = service
            .load_model_file("canary", &path)
            .expect("hot load succeeds");
        assert_eq!(info.name, "canary");
        let models = service.models();
        assert_eq!(models.len(), 2, "the catalog reflects the load immediately");
        assert_eq!(models[0].name, "canary");

        // The loaded model answers (bit-identical weights → bit-identical
        // numbers) and accounts separately.
        let canary = service
            .call(PredictRequest::new("C2", "W1", 8).on_model("canary"))
            .expect("canary request");
        assert_eq!(canary.model, "canary");
        assert!(!canary.cache_hit, "a fresh model starts with empty caches");
        assert_eq!(canary.per_cycle_total_w, base.per_cycle_total_w);
        let stats = service.stats();
        assert_eq!(stats.models.len(), 2);
        assert_eq!(stats.models[0].model, "canary");
        assert_eq!(stats.models[0].requests, 1);

        // Duplicate and invalid names are typed errors.
        assert!(matches!(
            service.load_model_file("canary", &path),
            Err(ServeError::Registry(_))
        ));
        assert!(matches!(
            service.load_model_file("bad/name", &path),
            Err(ServeError::InvalidRequest(_))
        ));

        // Unload: gone from the catalog, requests get unknown_model, the
        // default model is not unloadable, unknown names are typed.
        service.unload_model("canary").expect("unload succeeds");
        assert_eq!(service.models().len(), 1);
        assert_eq!(
            service.call(PredictRequest::new("C2", "W1", 8).on_model("canary")),
            Err(ServeError::UnknownModel("canary".into()))
        );
        assert!(matches!(
            service.unload_model("default"),
            Err(ServeError::InvalidRequest(_))
        ));
        assert_eq!(
            service.unload_model("canary"),
            Err(ServeError::UnknownModel("canary".into()))
        );

        // A fresh load under the reclaimed name works (reload cycle).
        service
            .load_model_file("canary", &path)
            .expect("reload under the same name");
        let again = service
            .call(PredictRequest::new("C2", "W1", 8).on_model("canary"))
            .expect("post-reload request");
        assert_eq!(again.per_cycle_total_w, base.per_cycle_total_w);

        drop(service);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quota_saturation_parks_then_rejects() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model,
            cfg,
            ServiceConfig {
                workers: 4,
                model_quotas: [("default".to_owned(), 1)].into_iter().collect(),
                max_queued_per_model: 1,
                ..ServiceConfig::default()
            },
        );
        // Three concurrent cold requests with distinct keys: the quota
        // admits one, parks one (answered after the slot drains), and
        // rejects the third with a structured error.
        let receivers: Vec<_> = (0..3)
            .map(|i| service.submit(PredictRequest::new("C2", "W1", 32 + i)))
            .collect();
        let replies: Vec<Reply> = receivers
            .into_iter()
            .map(|rx| rx.recv().expect("reply arrives"))
            .collect();
        let ok = replies.iter().filter(|r| r.is_ok()).count();
        let rejected = replies
            .iter()
            .filter(|r| matches!(r, Err((_, ServeError::QuotaExceeded(m))) if m == "default"))
            .count();
        assert_eq!(
            (ok, rejected),
            (2, 1),
            "expected grant + park + reject, got {replies:?}"
        );
        let stats = service.stats();
        assert_eq!(stats.models[0].quota, 1);
        assert_eq!(stats.models[0].queued, 1);
        assert_eq!(stats.models[0].rejected_quota, 1);
        assert_eq!(stats.embeddings_computed, 2);
        // Warm requests bypass the gate entirely: re-ask a computed key.
        let warm_key = replies
            .iter()
            .find_map(|r| r.as_ref().ok())
            .expect("one succeeded")
            .cycles;
        let warm = service
            .call(PredictRequest::new("C2", "W1", warm_key))
            .expect("warm request");
        assert!(warm.cache_hit);
        assert_eq!(service.stats().models[0].queued, 1, "warm never queues");
    }

    #[test]
    fn workload_journal_replays_across_restarts() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let path = std::env::temp_dir().join(format!("atlas-journal-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let spiky = vec![WorkloadPhase {
            activity: 0.6,
            min_len: 1,
            max_len: 3,
        }];
        let calm = vec![WorkloadPhase {
            activity: 0.05,
            min_len: 4,
            max_len: 9,
        }];
        let service_cfg = |workload_file| ServiceConfig {
            workers: 1,
            workload_file: Some(workload_file),
            ..ServiceConfig::default()
        };
        let before = {
            let service = AtlasService::start_with(
                trained.model.clone(),
                cfg.clone(),
                service_cfg(path.clone()),
            );
            service
                .register_workload("spiky", spiky.clone())
                .expect("registers");
            service
                .register_workload("calm", calm.clone())
                .expect("registers");
            // Replacement journals too; replay takes the last entry.
            let (_, replaced) = service
                .register_workload("spiky", calm.clone())
                .expect("replaces");
            assert!(replaced);
            service.workloads()
        };
        // A fresh service over the same journal reproduces the library
        // (same names, same fingerprints) and serves by name.
        let service = AtlasService::start_with(
            trained.model.clone(),
            cfg.clone(),
            service_cfg(path.clone()),
        );
        assert_eq!(service.workloads(), before);
        let resp = service
            .call(PredictRequest::with_workload_name("C2", "spiky", 8))
            .expect("replayed workload serves");
        assert_eq!(resp.workload, "spiky");
        // Registrations after a replay keep appending.
        service.register_workload("late", spiky).expect("registers");
        drop(service);
        let service = AtlasService::start_with(
            trained.model.clone(),
            cfg.clone(),
            service_cfg(path.clone()),
        );
        assert_eq!(service.workloads().len(), 3);
        drop(service);

        // A tampered journal (fingerprint no longer matches the schedule)
        // refuses to replay rather than silently serving a wrong library.
        let text = std::fs::read_to_string(&path).expect("journal readable");
        std::fs::write(
            &path,
            text.replace("\"activity\":0.05", "\"activity\":0.25"),
        )
        .expect("writable");
        let mut catalog = ModelCatalog::new();
        catalog
            .insert_model("default", trained.model, cfg)
            .expect("catalog");
        assert!(matches!(
            AtlasService::start_catalog(catalog, service_cfg(path.clone())),
            Err(ServeError::Registry(_))
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn error_paths_are_typed() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model,
            cfg,
            ServiceConfig {
                workers: 1,
                max_cycles: 64,
                ..ServiceConfig::default()
            },
        );
        assert_eq!(
            service.call(PredictRequest::new("C9", "W1", 8)),
            Err(ServeError::UnknownDesign("C9".into()))
        );
        assert_eq!(
            service.call(PredictRequest::new("C2", "W9", 8)),
            Err(ServeError::UnknownWorkload("W9".into()))
        );
        assert!(matches!(
            service.call(PredictRequest::new("C2", "W1", 0)),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            service.call(PredictRequest::new("C2", "W1", 65)),
            Err(ServeError::InvalidRequest(_))
        ));
        let stats = service.stats();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.errors, 4);
    }

    /// A small uploadable design built from library cells only.
    fn uploadable_design() -> Design {
        use atlas_liberty::{CellClass, Drive};
        use atlas_netlist::NetlistBuilder;
        let mut b = NetlistBuilder::new("uploaded");
        let sm = b.add_submodule("top.u0", "top");
        let a = b.add_input();
        let c = b.add_input();
        let x = b
            .add_cell(CellClass::Nand2, Drive::X1, &[a, c], sm)
            .expect("ok");
        let y = b
            .add_cell(CellClass::Xor2, Drive::X1, &[x, c], sm)
            .expect("ok");
        let q = b.add_dff(y, sm).expect("ok");
        b.mark_output(q);
        b.finish().expect("valid")
    }

    #[test]
    fn uploaded_designs_serve_with_route_parity() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model,
            cfg,
            ServiceConfig {
                workers: 1,
                max_design_bytes: 4096,
                max_designs: 2,
                ..ServiceConfig::default()
            },
        );
        let design = uploadable_design();
        let verilog = design.to_verilog();

        // Upload path (the wire verb's backing API) and the in-process
        // path must agree on the fingerprint exactly.
        let up = service.load_design("up", &verilog).expect("upload loads");
        let local = service
            .load_design_parsed("local", design.clone())
            .expect("in-process loads");
        assert_eq!(up.fingerprint, local.fingerprint);
        assert_eq!(up.cells, design.cell_count());
        assert_eq!(up.nets, design.net_count());
        assert_eq!(service.designs().len(), 2);

        // ... and both routes must predict bit-identically.
        let a = service
            .call(PredictRequest::new("up", "W1", 6))
            .expect("uploaded design predicts");
        let b = service
            .call(PredictRequest::new("local", "W1", 6))
            .expect("in-process design predicts");
        assert!(a.mean_total_w > 0.0);
        assert_eq!(a.per_cycle_total_w, b.per_cycle_total_w);
        assert_eq!(a.mean_total_w, b.mean_total_w);

        // Warm repeat of an uploaded design hits the embedding cache.
        let warm = service
            .call(PredictRequest::new("up", "W1", 6))
            .expect("warm");
        assert!(warm.cache_hit);
        assert_eq!(warm.per_cycle_total_w, a.per_cycle_total_w);
    }

    #[test]
    fn bad_uploads_are_typed_errors() {
        let cfg = micro_config();
        let trained = train_atlas(&cfg);
        let service = AtlasService::start_with(
            trained.model,
            cfg,
            ServiceConfig {
                workers: 1,
                max_design_bytes: 512,
                max_designs: 1,
                ..ServiceConfig::default()
            },
        );
        // A malformed body is a parse_error carrying the reader's
        // diagnostic; a preset-shadowing or malformed name, an oversize
        // body, a duplicate, and a full library are invalid_request.
        let err = service
            .load_design("junk", "not a netlist")
            .expect_err("malformed");
        assert_eq!(err.kind(), "parse_error");
        let verilog = uploadable_design().to_verilog();
        assert!(verilog.len() <= 512, "test design must fit the cap");
        for (name, body) in [
            ("C2", verilog.as_str()),
            (".dot", verilog.as_str()),
            ("", verilog.as_str()),
            ("spaced name", verilog.as_str()),
        ] {
            let err = service.load_design(name, body).expect_err(name);
            assert_eq!(err.kind(), "invalid_request", "{name}");
        }
        let oversize = format!("{verilog}{}", "/".repeat(513));
        let err = service.load_design("big", &oversize).expect_err("oversize");
        assert_eq!(err.kind(), "invalid_request");
        assert!(err.to_string().contains("bytes"), "got: {err}");

        service.load_design("ok", &verilog).expect("fits");
        let err = service.load_design("ok", &verilog).expect_err("duplicate");
        assert_eq!(err.kind(), "invalid_request");
        assert!(err.to_string().contains("already loaded"), "got: {err}");
        let err = service.load_design("two", &verilog).expect_err("full");
        assert!(err.to_string().contains("full"), "got: {err}");

        // Predicting an unknown name is still a structured unknown_design.
        assert_eq!(
            service.call(PredictRequest::new("nope", "W1", 4)),
            Err(ServeError::UnknownDesign("nope".into()))
        );
    }
}
