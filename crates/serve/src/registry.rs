//! On-disk model registry: versioned persistence for trained models.
//!
//! A registry is a directory of `<name>.atlas.json` files, each holding a
//! [`ModelHeader`] (format version + configuration fingerprint), the
//! [`ExperimentConfig`] the model was trained under, and the
//! [`AtlasModel`] weights themselves (via its serde representation, the
//! same bytes `AtlasModel::to_json` produces). The header lets a service
//! refuse models written by an incompatible build instead of
//! mis-deserializing them, and the config fingerprint detects files whose
//! embedded config was edited after training.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use atlas_core::{AtlasModel, ExperimentConfig};
use serde::{Deserialize, Serialize};

/// Version of the on-disk model format. Bump on any breaking change to
/// the serialized layout of the private `ModelFile` type or its nested
/// types.
pub const FORMAT_VERSION: u32 = 1;

/// File suffix of registry entries.
const SUFFIX: &str = ".atlas.json";

/// Metadata stored alongside a persisted model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelHeader {
    /// On-disk format version ([`FORMAT_VERSION`] at write time).
    pub format_version: u32,
    /// Registry name the model was saved under.
    pub name: String,
    /// FNV-1a fingerprint of the training configuration's canonical JSON.
    pub config_fingerprint: u64,
}

/// The full on-disk layout of one registry entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ModelFile {
    header: ModelHeader,
    config: ExperimentConfig,
    model: AtlasModel,
}

/// A model loaded back from a registry.
#[derive(Debug, Clone)]
pub struct SavedModel {
    /// The persisted header.
    pub header: ModelHeader,
    /// The training configuration (the serving layer needs its `scale`
    /// and seeds to regenerate designs and workloads deterministically).
    pub config: ExperimentConfig,
    /// The deployable model.
    pub model: AtlasModel,
}

/// Why a registry operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// Filesystem problem (path + OS error text).
    Io(String),
    /// The file exists but is not a valid model file.
    Corrupt(String),
    /// The file was written by an incompatible format version.
    WrongVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build reads/writes.
        expected: u32,
    },
    /// The embedded config does not hash to the header's fingerprint.
    FingerprintMismatch {
        /// Fingerprint claimed by the header.
        claimed: u64,
        /// Fingerprint of the config actually in the file.
        actual: u64,
    },
    /// No entry with this name.
    NotFound(String),
    /// The model name contains path separators or other invalid chars.
    InvalidName(String),
    /// A catalog already holds a model under this serving name.
    Duplicate(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io(msg) => write!(f, "registry I/O error: {msg}"),
            RegistryError::Corrupt(msg) => write!(f, "corrupt model file: {msg}"),
            RegistryError::WrongVersion { found, expected } => write!(
                f,
                "model format version {found} is not supported (this build reads {expected})"
            ),
            RegistryError::FingerprintMismatch { claimed, actual } => write!(
                f,
                "config fingerprint mismatch: header claims {claimed:#018x}, \
                 embedded config hashes to {actual:#018x}"
            ),
            RegistryError::NotFound(name) => write!(f, "no model named `{name}` in registry"),
            RegistryError::InvalidName(name) => write!(f, "invalid model name `{name}`"),
            RegistryError::Duplicate(name) => {
                write!(f, "catalog already serves a model named `{name}`")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Stable FNV-1a fingerprint of an experiment configuration's canonical
/// JSON serialization.
pub fn config_fingerprint(config: &ExperimentConfig) -> u64 {
    let bytes = serde_json::to_vec(config).unwrap_or_default();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A directory of persisted models.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    dir: PathBuf,
}

impl ModelRegistry {
    /// Open (creating if needed) a registry rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ModelRegistry, RegistryError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| RegistryError::Io(format!("create {}: {e}", dir.display())))?;
        Ok(ModelRegistry { dir })
    }

    /// The registry's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file path a model name maps to.
    pub fn path_for(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}{SUFFIX}"))
    }

    /// Persist a model under `name`, overwriting any previous version.
    ///
    /// # Errors
    ///
    /// [`RegistryError::InvalidName`] for names with path separators;
    /// [`RegistryError::Io`] on write failure.
    pub fn save(
        &self,
        name: &str,
        model: &AtlasModel,
        config: &ExperimentConfig,
    ) -> Result<PathBuf, RegistryError> {
        validate_name(name)?;
        let file = ModelFile {
            header: ModelHeader {
                format_version: FORMAT_VERSION,
                name: name.to_owned(),
                config_fingerprint: config_fingerprint(config),
            },
            config: config.clone(),
            model: model.clone(),
        };
        let json = serde_json::to_string(&file)
            .map_err(|e| RegistryError::Corrupt(format!("serialize `{name}`: {e}")))?;
        let path = self.path_for(name);
        // Write-then-rename so a concurrent load never sees a torn file.
        let tmp = self.dir.join(format!(".{name}{SUFFIX}.tmp"));
        fs::write(&tmp, json)
            .map_err(|e| RegistryError::Io(format!("write {}: {e}", tmp.display())))?;
        fs::rename(&tmp, &path)
            .map_err(|e| RegistryError::Io(format!("rename {}: {e}", path.display())))?;
        Ok(path)
    }

    /// Load the model saved under `name`, validating its header.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`] when no such entry exists;
    /// [`RegistryError::WrongVersion`] for incompatible files;
    /// [`RegistryError::FingerprintMismatch`] when the embedded config
    /// does not match the header; [`RegistryError::Corrupt`] on parse
    /// failure.
    pub fn load(&self, name: &str) -> Result<SavedModel, RegistryError> {
        validate_name(name)?;
        let path = self.path_for(name);
        let json = match fs::read_to_string(&path) {
            Ok(json) => json,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(RegistryError::NotFound(name.to_owned()))
            }
            Err(e) => return Err(RegistryError::Io(format!("read {}: {e}", path.display()))),
        };
        parse_model_file(&path, &json)
    }

    /// Load a model file from an explicit path (not necessarily inside
    /// this — or any — registry directory), validating its header exactly
    /// like [`ModelRegistry::load`].
    ///
    /// # Errors
    ///
    /// The same validation errors as [`ModelRegistry::load`], plus
    /// [`RegistryError::Io`] when the file cannot be read.
    pub fn load_file(path: impl AsRef<Path>) -> Result<SavedModel, RegistryError> {
        let path = path.as_ref();
        let json = fs::read_to_string(path)
            .map_err(|e| RegistryError::Io(format!("read {}: {e}", path.display())))?;
        parse_model_file(path, &json)
    }

    /// Names of all models in the registry, sorted.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] when the directory cannot be read.
    pub fn list(&self) -> Result<Vec<String>, RegistryError> {
        let entries = fs::read_dir(&self.dir)
            .map_err(|e| RegistryError::Io(format!("read {}: {e}", self.dir.display())))?;
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry
                .map_err(|e| RegistryError::Io(format!("read {}: {e}", self.dir.display())))?;
            let file_name = entry.file_name();
            let file_name = file_name.to_string_lossy();
            if let Some(name) = file_name.strip_suffix(SUFFIX) {
                if !name.starts_with('.') {
                    names.push(name.to_owned());
                }
            }
        }
        names.sort();
        Ok(names)
    }
}

/// Version-check, fingerprint-check, and deserialize one model file's
/// contents (`path` only labels errors).
fn parse_model_file(path: &Path, json: &str) -> Result<SavedModel, RegistryError> {
    // Check the version before attempting to deserialize the weights:
    // a future format may not even parse as today's `ModelFile`.
    let version = peek_format_version(json)
        .ok_or_else(|| RegistryError::Corrupt(format!("{}: no header", path.display())))?;
    if version != FORMAT_VERSION {
        return Err(RegistryError::WrongVersion {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let file: ModelFile = serde_json::from_str(json)
        .map_err(|e| RegistryError::Corrupt(format!("{}: {e}", path.display())))?;
    let actual = config_fingerprint(&file.config);
    if actual != file.header.config_fingerprint {
        return Err(RegistryError::FingerprintMismatch {
            claimed: file.header.config_fingerprint,
            actual,
        });
    }
    Ok(SavedModel {
        header: file.header,
        config: file.config,
        model: file.model,
    })
}

/// An ordered set of models to serve behind one front door, each under a
/// serving name. The first inserted model is the **default** (used by
/// requests that carry no `model` field) unless
/// [`ModelCatalog::set_default`] picks another.
///
/// A catalog is assembled before the service starts — from registry
/// entries, explicit files ([`ModelCatalog::load_spec`]), or in-memory
/// models — and handed to `AtlasService::start_catalog`. Every loading
/// path runs the full registry validation (format version + config
/// fingerprint), so an incompatible file is rejected at catalog build
/// time, never at request time.
#[derive(Debug, Clone, Default)]
pub struct ModelCatalog {
    entries: Vec<(String, SavedModel)>,
    default: Option<String>,
}

impl ModelCatalog {
    /// An empty catalog.
    pub fn new() -> ModelCatalog {
        ModelCatalog::default()
    }

    /// Whether `name` is usable as a serving name (the same rule the
    /// registry applies to entry names).
    pub fn valid_name(name: &str) -> bool {
        validate_name(name).is_ok()
    }

    /// Add a loaded model under `name`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::InvalidName`] for names the registry itself would
    /// reject; [`RegistryError::Duplicate`] when the name is taken.
    pub fn insert(
        &mut self,
        name: impl Into<String>,
        saved: SavedModel,
    ) -> Result<(), RegistryError> {
        let name = name.into();
        validate_name(&name)?;
        if self.entries.iter().any(|(n, _)| *n == name) {
            return Err(RegistryError::Duplicate(name));
        }
        self.entries.push((name, saved));
        Ok(())
    }

    /// Add an in-memory model (no registry file) under `name`, wrapping
    /// it in a synthesized header — the path tests and benches use.
    ///
    /// # Errors
    ///
    /// Same as [`ModelCatalog::insert`].
    pub fn insert_model(
        &mut self,
        name: impl Into<String>,
        model: AtlasModel,
        config: ExperimentConfig,
    ) -> Result<(), RegistryError> {
        let name = name.into();
        let header = ModelHeader {
            format_version: FORMAT_VERSION,
            name: name.clone(),
            config_fingerprint: config_fingerprint(&config),
        };
        self.insert(
            name,
            SavedModel {
                header,
                config,
                model,
            },
        )
    }

    /// Load one `--model` flag value into the catalog.
    ///
    /// The spec is `NAME`, `ALIAS=NAME`, or `ALIAS=PATH`: a bare `NAME`
    /// loads that registry entry and serves it under the same name; the
    /// `=` forms serve the loaded model under `ALIAS`. A value containing
    /// a path separator (or ending in `.atlas.json`) is read as a file
    /// path instead of a registry entry, so one process can serve models
    /// from several directories.
    ///
    /// Returns the serving name the model landed under.
    ///
    /// # Errors
    ///
    /// Any [`RegistryError`] from loading or inserting — including
    /// [`RegistryError::WrongVersion`] and
    /// [`RegistryError::FingerprintMismatch`], which reject incompatible
    /// files before the service ever starts.
    pub fn load_spec(
        &mut self,
        registry: &ModelRegistry,
        spec: &str,
    ) -> Result<String, RegistryError> {
        let (alias, source) = match spec.split_once('=') {
            Some((alias, source)) => (Some(alias), source),
            None => (None, spec),
        };
        let is_path = source.contains(std::path::MAIN_SEPARATOR) || source.ends_with(SUFFIX);
        let (saved, fallback_name) = if is_path {
            let stem = Path::new(source)
                .file_name()
                .map(|f| f.to_string_lossy().into_owned())
                .unwrap_or_default();
            let fallback = stem.strip_suffix(SUFFIX).unwrap_or(&stem).to_owned();
            (ModelRegistry::load_file(source)?, fallback)
        } else {
            (registry.load(source)?, source.to_owned())
        };
        let name = alias.map_or(fallback_name, str::to_owned);
        self.insert(name.clone(), saved)?;
        Ok(name)
    }

    /// Pick the default model (the one `model`-less requests route to).
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`] when no entry has this serving name.
    pub fn set_default(&mut self, name: &str) -> Result<(), RegistryError> {
        if self.entries.iter().any(|(n, _)| n == name) {
            self.default = Some(name.to_owned());
            Ok(())
        } else {
            Err(RegistryError::NotFound(name.to_owned()))
        }
    }

    /// The default serving name: [`ModelCatalog::set_default`]'s choice,
    /// else the first inserted entry. `None` for an empty catalog.
    pub fn default_model(&self) -> Option<&str> {
        self.default
            .as_deref()
            .or_else(|| self.entries.first().map(|(n, _)| n.as_str()))
    }

    /// Serving names in insertion order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Number of models in the catalog.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog holds no models.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Consume the catalog into `(default_name, entries)` — the service
    /// constructor's input. `None` when the catalog is empty.
    pub fn into_entries(self) -> Option<(String, Vec<(String, SavedModel)>)> {
        let default = self.default_model()?.to_owned();
        Some((default, self.entries))
    }
}

fn validate_name(name: &str) -> Result<(), RegistryError> {
    let ok = !name.is_empty()
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
    if ok {
        Ok(())
    } else {
        Err(RegistryError::InvalidName(name.to_owned()))
    }
}

/// Extract `header.format_version` without deserializing the weights.
fn peek_format_version(json: &str) -> Option<u32> {
    let value = serde_json::from_str_value(json).ok()?;
    let header = value
        .as_map()?
        .iter()
        .find(|(k, _)| k == "header")
        .map(|(_, v)| v)?;
    let version = header
        .as_map()?
        .iter()
        .find(|(k, _)| k == "format_version")
        .map(|(_, v)| v)?;
    match version {
        serde::Value::UInt(n) => u32::try_from(*n).ok(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_validation() {
        assert!(validate_name("atlas-v1.2_final").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name("../escape").is_err());
        assert!(validate_name("a/b").is_err());
        assert!(validate_name(".hidden").is_err());
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = ExperimentConfig::quick();
        let mut b = ExperimentConfig::quick();
        assert_eq!(config_fingerprint(&a), config_fingerprint(&a));
        b.cycles += 1;
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
    }

    #[test]
    fn version_peek_reads_header_only() {
        let json = r#"{"header":{"format_version":7,"name":"x","config_fingerprint":1}}"#;
        assert_eq!(peek_format_version(json), Some(7));
        assert_eq!(peek_format_version("{}"), None);
        assert_eq!(peek_format_version("not json"), None);
    }
}
