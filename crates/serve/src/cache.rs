//! A small thread-safe weighted LRU cache with hit/miss accounting.
//!
//! Admission and eviction are driven by a **weight budget** rather than an
//! entry count: every entry carries a weight (bytes, for the embedding
//! cache — see `TraceEmbeddings::approx_bytes`) and the cache evicts
//! least-recently-used entries until the total weight fits the budget.
//! Unit-weight entries ([`LruCache::insert`]) recover the classic
//! count-bounded cache, which is what the design-artifact cache uses.
//! Every hosted model of the serving layer owns one cache of each kind;
//! they never share or evict each other's entries.
//!
//! ```
//! use std::sync::Arc;
//! use atlas_serve::cache::LruCache;
//!
//! // A 100-byte budget: admission is by weight, not entry count.
//! let cache: LruCache<&str, Vec<u8>> = LruCache::with_budget(100);
//! assert!(cache.insert_weighted("a", Arc::new(vec![0; 60]), 60));
//! assert!(cache.insert_weighted("b", Arc::new(vec![0; 30]), 30));
//! // 60 + 30 + 40 > 100: the LRU entry ("a") is evicted to fit "c".
//! assert!(cache.insert_weighted("c", Arc::new(vec![0; 40]), 40));
//! assert!(cache.get(&"a").is_none());
//! // A value wider than the whole budget is rejected outright.
//! assert!(!cache.insert_weighted("huge", Arc::new(vec![0; 101]), 101));
//! let stats = cache.stats();
//! assert_eq!((stats.len, stats.weight, stats.budget), (2, 70, 100));
//! ```

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

/// Hit/miss/occupancy counters of one cache.
///
/// `weight` and `budget` are in whatever unit the cache is budgeted in:
/// bytes for the embedding cache, entries for the unit-weight design
/// cache (where `weight == len`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Total weight currently resident (occupancy).
    pub weight: usize,
    /// Admission budget: `weight` never exceeds this.
    pub budget: usize,
}

/// Weighted least-recently-used cache over `Arc`-shared values.
///
/// Values are handed out as `Arc<V>` clones so an entry can be evicted
/// while a worker still computes with it. Eviction scans for the oldest
/// entry — O(len), which is the right trade at the double-digit entry
/// counts a prediction service holds (design presets × workloads).
#[derive(Debug)]
pub struct LruCache<K: Eq + Hash + Clone, V> {
    inner: Mutex<Inner<K, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
    budget: usize,
}

#[derive(Debug)]
struct Entry<V> {
    value: Arc<V>,
    last_used: u64,
    weight: usize,
}

#[derive(Debug)]
struct Inner<K, V> {
    entries: HashMap<K, Entry<V>>,
    tick: u64,
    weight: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Create a unit-weight cache holding at most `capacity` entries
    /// (min 1). Equivalent to `with_budget(capacity)` when every insert
    /// uses [`LruCache::insert`].
    pub fn new(capacity: usize) -> LruCache<K, V> {
        LruCache::with_budget(capacity)
    }

    /// Create a cache admitting entries until their total weight would
    /// exceed `budget` (min 1).
    pub fn with_budget(budget: usize) -> LruCache<K, V> {
        LruCache {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                tick: 0,
                weight: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            budget: budget.max(1),
        }
    }

    /// The admission budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) a unit-weight entry.
    pub fn insert(&self, key: K, value: Arc<V>) {
        let _ = self.insert_weighted(key, value, 1);
    }

    /// Insert (or refresh) an entry of the given weight, evicting
    /// least-recently-used entries until the budget holds.
    ///
    /// Replacing a resident key counts as a *use*: the entry moves to
    /// most-recently-used (and its old weight is released before
    /// eviction runs, so the replaced entry itself is never an eviction
    /// candidate for its own insert).
    ///
    /// Returns `false` — leaving the cache untouched — when `weight`
    /// alone exceeds the budget: a single oversized value is rejected
    /// outright rather than evicting everything and still not fitting.
    pub fn insert_weighted(&self, key: K, value: Arc<V>, weight: usize) -> bool {
        if weight > self.budget {
            return false;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.entries.remove(&key) {
            inner.weight -= old.weight;
        }
        // Evict oldest-first until the new entry fits. Terminates because
        // `weight <= budget`: at worst the cache empties, at which point
        // `inner.weight == 0` and the condition is false.
        while inner.weight + weight > self.budget {
            let oldest = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("over-budget cache cannot be empty");
            let evicted = inner.entries.remove(&oldest).expect("key just found");
            inner.weight -= evicted.weight;
        }
        inner.weight += weight;
        inner.entries.insert(
            key,
            Entry {
                value,
                last_used: tick,
                weight,
            },
        );
        true
    }

    /// Snapshot every resident entry, oldest-first, with its weight.
    ///
    /// Recency is *not* refreshed and hit/miss counters are untouched:
    /// exporting is an observation, not a use. Oldest-first ordering
    /// means a consumer that re-inserts in order (warm-start restore)
    /// reproduces the same eviction priority the cache had at export
    /// time.
    pub fn export(&self) -> Vec<(K, Arc<V>, usize)> {
        let inner = self.inner.lock().expect("cache lock");
        let mut entries: Vec<_> = inner
            .entries
            .iter()
            .map(|(k, e)| (e.last_used, k.clone(), Arc::clone(&e.value), e.weight))
            .collect();
        entries.sort_by_key(|(last_used, ..)| *last_used);
        entries.into_iter().map(|(_, k, v, w)| (k, v, w)).collect()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            len: inner.entries.len(),
            weight: inner.weight,
            budget: self.budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_accounting() {
        let cache: LruCache<u32, &'static str> = LruCache::new(4);
        assert!(cache.get(&1).is_none());
        cache.insert(1, Arc::new("one"));
        assert_eq!(cache.get(&1).as_deref(), Some(&"one"));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
        assert_eq!((stats.weight, stats.budget), (1, 4));
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(1, Arc::new(10));
        cache.insert(2, Arc::new(20));
        // Touch 1 so 2 becomes the eviction candidate.
        assert!(cache.get(&1).is_some());
        cache.insert(3, Arc::new(30));
        assert!(cache.get(&2).is_none(), "LRU entry should be evicted");
        assert!(cache.get(&1).is_some());
        assert!(cache.get(&3).is_some());
        assert_eq!(cache.stats().len, 2);
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(1, Arc::new(10));
        cache.insert(2, Arc::new(20));
        cache.insert(1, Arc::new(11));
        assert_eq!(cache.get(&1).as_deref(), Some(&11));
        assert!(cache.get(&2).is_some());
    }

    #[test]
    fn evicted_values_stay_alive_through_arc() {
        let cache: LruCache<u32, Vec<u8>> = LruCache::new(1);
        cache.insert(1, Arc::new(vec![1, 2, 3]));
        let held = cache.get(&1).expect("present");
        cache.insert(2, Arc::new(vec![4]));
        assert!(cache.get(&1).is_none());
        assert_eq!(*held, vec![1, 2, 3], "held Arc survives eviction");
    }

    #[test]
    fn weighted_eviction_frees_enough_for_large_entries() {
        let cache: LruCache<u32, u32> = LruCache::with_budget(100);
        assert!(cache.insert_weighted(1, Arc::new(10), 40));
        assert!(cache.insert_weighted(2, Arc::new(20), 40));
        // 90 > 100 - 80: must evict 1 (the LRU) to fit.
        assert!(cache.insert_weighted(3, Arc::new(30), 90));
        assert!(cache.get(&1).is_none());
        assert!(cache.get(&2).is_none());
        assert!(cache.get(&3).is_some());
        let stats = cache.stats();
        assert_eq!((stats.len, stats.weight), (1, 90));
    }

    #[test]
    fn oversized_entries_are_rejected_not_looped() {
        let cache: LruCache<u32, u32> = LruCache::with_budget(64);
        assert!(
            cache.insert_weighted(1, Arc::new(10), 64),
            "exact fit admits"
        );
        assert!(
            !cache.insert_weighted(2, Arc::new(20), 65),
            "oversized rejected"
        );
        // The resident entry survived the rejected insert.
        assert!(cache.get(&1).is_some());
        assert!(cache.get(&2).is_none());
        assert_eq!(cache.stats().weight, 64);
    }

    /// Regression pin for the recency semantics of `insert_weighted`
    /// replacement: overwriting a resident key must move it to
    /// most-recently-used, so later over-budget inserts evict the *other*
    /// entries first — and the replacement itself may only evict entries
    /// older than the one it refreshes.
    #[test]
    fn replacement_refreshes_recency_for_eviction_order() {
        let cache: LruCache<u32, u32> = LruCache::with_budget(12);
        assert!(cache.insert_weighted(1, Arc::new(10), 4)); // oldest
        assert!(cache.insert_weighted(2, Arc::new(20), 4));
        assert!(cache.insert_weighted(3, Arc::new(30), 4));
        // Replace key 1 (same weight): key 2 becomes the LRU entry.
        assert!(cache.insert_weighted(1, Arc::new(11), 4));
        assert!(cache.insert_weighted(4, Arc::new(40), 4));
        assert!(
            cache.get(&2).is_none(),
            "after replacing key 1, key 2 is the eviction victim"
        );
        assert_eq!(cache.get(&1).as_deref(), Some(&11), "replaced key survives");
        assert!(cache.get(&3).is_some());
        assert!(cache.get(&4).is_some());

        // Replacement that *grows* an entry evicts strictly oldest-first
        // among the others and never the replaced key itself.
        let cache: LruCache<u32, u32> = LruCache::with_budget(12);
        assert!(cache.insert_weighted(1, Arc::new(10), 4));
        assert!(cache.insert_weighted(2, Arc::new(20), 4));
        assert!(cache.insert_weighted(3, Arc::new(30), 4));
        assert!(cache.insert_weighted(1, Arc::new(12), 8)); // 4 → 8: must free 4
        assert!(cache.get(&2).is_none(), "oldest other entry is evicted");
        assert!(cache.get(&3).is_some(), "newer entry survives the growth");
        assert_eq!(cache.get(&1).as_deref(), Some(&12));
        let stats = cache.stats();
        assert_eq!((stats.len, stats.weight), (2, 12));

        // The unit-weight `insert` front end pins the same semantics.
        let cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(1, Arc::new(10));
        cache.insert(2, Arc::new(20));
        cache.insert(1, Arc::new(11)); // refresh: 2 is now LRU
        cache.insert(3, Arc::new(30));
        assert!(cache.get(&2).is_none());
        assert_eq!(cache.get(&1).as_deref(), Some(&11));
        assert!(cache.get(&3).is_some());
    }

    #[test]
    fn refreshing_a_key_with_new_weight_adjusts_occupancy() {
        let cache: LruCache<u32, u32> = LruCache::with_budget(10);
        assert!(cache.insert_weighted(1, Arc::new(10), 8));
        assert!(cache.insert_weighted(1, Arc::new(11), 3));
        let stats = cache.stats();
        assert_eq!((stats.len, stats.weight), (1, 3));
        assert_eq!(cache.get(&1).as_deref(), Some(&11));
    }

    #[test]
    fn export_is_oldest_first_and_not_a_use() {
        let cache: LruCache<u32, u32> = LruCache::with_budget(100);
        assert!(cache.insert_weighted(1, Arc::new(10), 4));
        assert!(cache.insert_weighted(2, Arc::new(20), 8));
        assert!(cache.insert_weighted(3, Arc::new(30), 2));
        // Touch 1 so it becomes the most recently used entry.
        assert!(cache.get(&1).is_some());
        let before = cache.stats();
        let exported = cache.export();
        let keys: Vec<u32> = exported.iter().map(|(k, ..)| *k).collect();
        assert_eq!(keys, vec![2, 3, 1], "oldest-first with refreshed recency");
        let weights: Vec<usize> = exported.iter().map(|(.., w)| *w).collect();
        assert_eq!(weights, vec![8, 2, 4]);
        let after = cache.stats();
        assert_eq!(
            (before.hits, before.misses),
            (after.hits, after.misses),
            "export must not perturb hit/miss accounting"
        );
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache: Arc<LruCache<u64, u64>> = Arc::new(LruCache::new(8));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let k = (t * 37 + i) % 16;
                        if let Some(v) = cache.get(&k) {
                            assert_eq!(*v, k * 2);
                        } else {
                            cache.insert(k, Arc::new(k * 2));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panic");
        }
        let stats = cache.stats();
        assert!(stats.len <= 8);
        assert_eq!(stats.weight, stats.len, "unit weights track entry count");
    }
}
