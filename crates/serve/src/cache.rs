//! A small thread-safe LRU cache with hit/miss accounting.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hit/miss/occupancy counters of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Maximum resident entries.
    pub capacity: usize,
}

/// Least-recently-used cache over `Arc`-shared values.
///
/// Values are handed out as `Arc<V>` clones so an entry can be evicted
/// while a worker still computes with it. Eviction scans for the oldest
/// entry — O(len), which is the right trade at the double-digit
/// capacities a prediction service uses (design presets × workloads).
#[derive(Debug)]
pub struct LruCache<K: Eq + Hash + Clone, V> {
    inner: Mutex<Inner<K, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
}

#[derive(Debug)]
struct Inner<K, V> {
    entries: HashMap<K, (Arc<V>, u64)>,
    tick: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Create a cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> LruCache<K, V> {
        LruCache {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(key) {
            Some((value, last_used)) => {
                *last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) an entry, evicting the least recently used one
    /// when full.
    pub fn insert(&self, key: K, value: Arc<V>) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.entries.contains_key(&key) && inner.entries.len() >= self.capacity {
            if let Some(oldest) = inner
                .entries
                .iter()
                .min_by_key(|(_, (_, last_used))| *last_used)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&oldest);
            }
        }
        inner.entries.insert(key, (value, tick));
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            len: inner.entries.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_accounting() {
        let cache: LruCache<u32, &'static str> = LruCache::new(4);
        assert!(cache.get(&1).is_none());
        cache.insert(1, Arc::new("one"));
        assert_eq!(cache.get(&1).as_deref(), Some(&"one"));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(1, Arc::new(10));
        cache.insert(2, Arc::new(20));
        // Touch 1 so 2 becomes the eviction candidate.
        assert!(cache.get(&1).is_some());
        cache.insert(3, Arc::new(30));
        assert!(cache.get(&2).is_none(), "LRU entry should be evicted");
        assert!(cache.get(&1).is_some());
        assert!(cache.get(&3).is_some());
        assert_eq!(cache.stats().len, 2);
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(1, Arc::new(10));
        cache.insert(2, Arc::new(20));
        cache.insert(1, Arc::new(11));
        assert_eq!(cache.get(&1).as_deref(), Some(&11));
        assert!(cache.get(&2).is_some());
    }

    #[test]
    fn evicted_values_stay_alive_through_arc() {
        let cache: LruCache<u32, Vec<u8>> = LruCache::new(1);
        cache.insert(1, Arc::new(vec![1, 2, 3]));
        let held = cache.get(&1).expect("present");
        cache.insert(2, Arc::new(vec![4]));
        assert!(cache.get(&1).is_none());
        assert_eq!(*held, vec![1, 2, 3], "held Arc survives eviction");
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache: Arc<LruCache<u64, u64>> = Arc::new(LruCache::new(8));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let k = (t * 37 + i) % 16;
                        if let Some(v) = cache.get(&k) {
                            assert_eq!(*v, k * 2);
                        } else {
                            cache.insert(k, Arc::new(k * 2));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panic");
        }
        assert!(cache.stats().len <= 8);
    }
}
