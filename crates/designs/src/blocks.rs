//! Structural generator blocks: the datapath and control structures the
//! CPU-like designs are assembled from.
//!
//! Every block appends cells to a [`NetlistBuilder`] inside one sub-module
//! and returns its output nets. Multi-bit buses are LSB-first
//! `Vec<NetId>`. Blocks never fail on well-formed inputs; errors from the
//! builder (which indicate generator bugs) are propagated.

use atlas_liberty::{CellClass, Drive};
use atlas_netlist::{BuildError, NetId, NetlistBuilder, SubmoduleId};

/// A ripple-carry adder. Returns `(sum_bits, carry_out)`.
///
/// Per bit: XOR-based sum via [`CellClass::HalfAdder`]/[`CellClass::FullAdder`]
/// plus explicit generate/propagate gates for the carry chain.
///
/// # Errors
///
/// Propagates [`BuildError`] from the builder.
///
/// # Panics
///
/// Panics if `a` and `b` differ in width or are empty.
pub fn ripple_adder(
    b: &mut NetlistBuilder,
    sm: SubmoduleId,
    a: &[NetId],
    bb: &[NetId],
    cin: Option<NetId>,
) -> Result<(Vec<NetId>, NetId), BuildError> {
    assert_eq!(a.len(), bb.len(), "adder operands must match in width");
    assert!(!a.is_empty(), "adder width must be positive");
    let mut sums = Vec::with_capacity(a.len());
    let mut carry = cin;
    for (&x, &y) in a.iter().zip(bb) {
        match carry {
            None => {
                let s = b.add_cell(CellClass::HalfAdder, Drive::X1, &[x, y], sm)?;
                let c = b.add_cell(CellClass::And2, Drive::X1, &[x, y], sm)?;
                sums.push(s);
                carry = Some(c);
            }
            Some(c_in) => {
                let s = b.add_cell(CellClass::FullAdder, Drive::X1, &[x, y, c_in], sm)?;
                // carry_out = (x & y) | (c_in & (x ^ y))
                let g = b.add_cell(CellClass::And2, Drive::X1, &[x, y], sm)?;
                let p = b.add_cell(CellClass::Xor2, Drive::X1, &[x, y], sm)?;
                let pc = b.add_cell(CellClass::And2, Drive::X1, &[p, c_in], sm)?;
                let c = b.add_cell(CellClass::Or2, Drive::X1, &[g, pc], sm)?;
                sums.push(s);
                carry = Some(c);
            }
        }
    }
    Ok((sums, carry.expect("width >= 1 produces a carry")))
}

/// A bank of D flip-flops registering `d`. Returns the Q bus.
///
/// # Errors
///
/// Propagates [`BuildError`] from the builder.
pub fn register_bank(
    b: &mut NetlistBuilder,
    sm: SubmoduleId,
    d: &[NetId],
) -> Result<Vec<NetId>, BuildError> {
    d.iter().map(|&n| b.add_dff(n, sm)).collect()
}

/// A bank of resettable flip-flops registering `d`. Returns the Q bus.
///
/// # Errors
///
/// Propagates [`BuildError`] from the builder.
pub fn register_bank_r(
    b: &mut NetlistBuilder,
    sm: SubmoduleId,
    d: &[NetId],
) -> Result<Vec<NetId>, BuildError> {
    d.iter().map(|&n| b.add_dffr(n, sm)).collect()
}

/// A free-running binary counter of `width` bits (self-stimulating: counts
/// up every cycle from reset). Returns the count bus.
///
/// # Errors
///
/// Propagates [`BuildError`] from the builder.
pub fn counter(
    b: &mut NetlistBuilder,
    sm: SubmoduleId,
    width: usize,
) -> Result<Vec<NetId>, BuildError> {
    assert!(width >= 1);
    let mut q = Vec::with_capacity(width);
    // Bit 0 toggles every cycle: q0' = !q0.
    let q0 = b.new_net();
    let nq0 = b.add_cell(CellClass::Inv, Drive::X1, &[q0], sm)?;
    b.add_dff_onto(q0, nq0, sm)?;
    q.push(q0);
    // carry = AND of lower bits; qi' = qi ^ carry.
    let mut carry = q0;
    for _ in 1..width {
        let qi = b.new_net();
        let di = b.add_cell(CellClass::Xor2, Drive::X1, &[qi, carry], sm)?;
        b.add_dff_onto(qi, di, sm)?;
        carry = b.add_cell(CellClass::And2, Drive::X1, &[qi, carry], sm)?;
        q.push(qi);
    }
    Ok(q)
}

/// A Galois-style LFSR with XNOR feedback (free-runs from the all-zero
/// reset state). Returns the register outputs — a deterministic
/// pseudo-random bus used to emulate datapath entropy.
///
/// # Errors
///
/// Propagates [`BuildError`] from the builder.
pub fn lfsr(
    b: &mut NetlistBuilder,
    sm: SubmoduleId,
    width: usize,
) -> Result<Vec<NetId>, BuildError> {
    assert!(width >= 2);
    let q: Vec<NetId> = (0..width).map(|_| b.new_net()).collect();
    // Feedback = XNOR of the last two stages (all-zeros is a working state).
    let fb = b.add_cell(
        CellClass::Xnor2,
        Drive::X1,
        &[q[width - 1], q[width - 2]],
        sm,
    )?;
    b.add_dff_onto(q[0], fb, sm)?;
    for i in 1..width {
        b.add_dff_onto(q[i], q[i - 1], sm)?;
    }
    Ok(q)
}

/// A one-hot decoder over `sel` (up to 6 bits). Returns the `2^n` one-hot
/// outputs.
///
/// # Errors
///
/// Propagates [`BuildError`] from the builder.
///
/// # Panics
///
/// Panics if `sel` is empty or wider than 6 bits.
pub fn decoder(
    b: &mut NetlistBuilder,
    sm: SubmoduleId,
    sel: &[NetId],
) -> Result<Vec<NetId>, BuildError> {
    assert!(
        !sel.is_empty() && sel.len() <= 6,
        "decoder select must be 1..=6 bits"
    );
    let inv: Vec<NetId> = sel
        .iter()
        .map(|&s| b.add_cell(CellClass::Inv, Drive::X1, &[s], sm))
        .collect::<Result<_, _>>()?;
    let mut outs = Vec::with_capacity(1 << sel.len());
    for code in 0..(1usize << sel.len()) {
        // AND tree over the selected polarity of each bit.
        let mut term = if code & 1 == 1 { sel[0] } else { inv[0] };
        for (bit, (&s, &i)) in sel.iter().zip(&inv).enumerate().skip(1) {
            let lit = if (code >> bit) & 1 == 1 { s } else { i };
            term = b.add_cell(CellClass::And2, Drive::X1, &[term, lit], sm)?;
        }
        outs.push(term);
    }
    Ok(outs)
}

/// A mux tree selecting one of `data` by `sel` (LSB-first). `data.len()`
/// must equal `2^sel.len()`. Returns the selected net.
///
/// # Errors
///
/// Propagates [`BuildError`] from the builder.
///
/// # Panics
///
/// Panics on width mismatch.
pub fn mux_tree(
    b: &mut NetlistBuilder,
    sm: SubmoduleId,
    data: &[NetId],
    sel: &[NetId],
) -> Result<NetId, BuildError> {
    assert_eq!(data.len(), 1 << sel.len(), "mux tree needs 2^sel inputs");
    let mut layer: Vec<NetId> = data.to_vec();
    for &s in sel {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            next.push(b.add_cell(CellClass::Mux2, Drive::X1, &[pair[0], pair[1], s], sm)?);
        }
        layer = next;
    }
    Ok(layer[0])
}

/// Balanced XOR reduction (parity) of `xs`. Returns the parity net.
///
/// # Errors
///
/// Propagates [`BuildError`] from the builder.
pub fn xor_reduce(
    b: &mut NetlistBuilder,
    sm: SubmoduleId,
    xs: &[NetId],
) -> Result<NetId, BuildError> {
    reduce(b, sm, xs, CellClass::Xor2)
}

/// Balanced AND reduction of `xs`.
///
/// # Errors
///
/// Propagates [`BuildError`] from the builder.
pub fn and_reduce(
    b: &mut NetlistBuilder,
    sm: SubmoduleId,
    xs: &[NetId],
) -> Result<NetId, BuildError> {
    reduce(b, sm, xs, CellClass::And2)
}

/// Balanced OR reduction of `xs`.
///
/// # Errors
///
/// Propagates [`BuildError`] from the builder.
pub fn or_reduce(
    b: &mut NetlistBuilder,
    sm: SubmoduleId,
    xs: &[NetId],
) -> Result<NetId, BuildError> {
    reduce(b, sm, xs, CellClass::Or2)
}

fn reduce(
    b: &mut NetlistBuilder,
    sm: SubmoduleId,
    xs: &[NetId],
    class: CellClass,
) -> Result<NetId, BuildError> {
    assert!(!xs.is_empty(), "reduction needs at least one input");
    let mut layer = xs.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(b.add_cell(class, Drive::X1, &[pair[0], pair[1]], sm)?);
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    Ok(layer[0])
}

/// Bitwise equality comparator: `1` when `a == b`. Returns the match net.
///
/// # Errors
///
/// Propagates [`BuildError`] from the builder.
///
/// # Panics
///
/// Panics if widths differ or are zero.
pub fn comparator_eq(
    b: &mut NetlistBuilder,
    sm: SubmoduleId,
    a: &[NetId],
    bb: &[NetId],
) -> Result<NetId, BuildError> {
    assert_eq!(a.len(), bb.len());
    let eqs: Vec<NetId> = a
        .iter()
        .zip(bb)
        .map(|(&x, &y)| b.add_cell(CellClass::Xnor2, Drive::X1, &[x, y], sm))
        .collect::<Result<_, _>>()?;
    and_reduce(b, sm, &eqs)
}

/// A small ALU over `a`/`b` with a 2-bit op select:
/// `00 → a+b`, `01 → a&b`, `10 → a|b`, `11 → a^b`. Returns the result bus.
///
/// # Errors
///
/// Propagates [`BuildError`] from the builder.
pub fn alu(
    b: &mut NetlistBuilder,
    sm: SubmoduleId,
    a: &[NetId],
    bb: &[NetId],
    op: [NetId; 2],
) -> Result<Vec<NetId>, BuildError> {
    let (sums, _) = ripple_adder(b, sm, a, bb, None)?;
    let mut out = Vec::with_capacity(a.len());
    for (i, (&x, &y)) in a.iter().zip(bb).enumerate() {
        let and_l = b.add_cell(CellClass::And2, Drive::X1, &[x, y], sm)?;
        let or_l = b.add_cell(CellClass::Or2, Drive::X1, &[x, y], sm)?;
        let xor_l = b.add_cell(CellClass::Xor2, Drive::X1, &[x, y], sm)?;
        let r = mux_tree(b, sm, &[sums[i], and_l, or_l, xor_l], &op)?;
        out.push(r);
    }
    Ok(out)
}

/// An array multiplier computing `a × b`, truncated to `a.len()` result
/// bits. Large combinational block (≈ `n²` cells).
///
/// # Errors
///
/// Propagates [`BuildError`] from the builder.
pub fn multiplier(
    b: &mut NetlistBuilder,
    sm: SubmoduleId,
    a: &[NetId],
    bb: &[NetId],
) -> Result<Vec<NetId>, BuildError> {
    let n = a.len();
    // Row 0: partial products of b[0].
    let mut acc: Vec<NetId> = a
        .iter()
        .map(|&x| b.add_cell(CellClass::And2, Drive::X1, &[x, bb[0]], sm))
        .collect::<Result<_, _>>()?;
    for (row, &y) in bb.iter().enumerate().skip(1) {
        if row >= n {
            break;
        }
        // Partial products for this row, aligned: acc[row..] += a * y.
        let pp: Vec<NetId> = a[..n - row]
            .iter()
            .map(|&x| b.add_cell(CellClass::And2, Drive::X1, &[x, y], sm))
            .collect::<Result<_, _>>()?;
        let (sums, _) = ripple_adder(b, sm, &acc[row..], &pp, None)?;
        acc.truncate(row);
        acc.extend(sums);
    }
    Ok(acc)
}

/// A FIFO-style occupancy controller: write/read pointers (counters gated
/// by enables), a fullness comparator, and a registered data word.
/// Returns `(match_flag, registered_data)`.
///
/// # Errors
///
/// Propagates [`BuildError`] from the builder.
pub fn fifo_ctrl(
    b: &mut NetlistBuilder,
    sm: SubmoduleId,
    ptr_bits: usize,
    data: &[NetId],
    wen: NetId,
    ren: NetId,
) -> Result<(NetId, Vec<NetId>), BuildError> {
    // Write pointer: increments when wen; implemented as gated toggle chain.
    let wptr = gated_counter(b, sm, ptr_bits, wen)?;
    let rptr = gated_counter(b, sm, ptr_bits, ren)?;
    let same = comparator_eq(b, sm, &wptr, &rptr)?;
    let held = register_bank(b, sm, data)?;
    Ok((same, held))
}

/// A counter that only advances when `en` is high.
///
/// # Errors
///
/// Propagates [`BuildError`] from the builder.
pub fn gated_counter(
    b: &mut NetlistBuilder,
    sm: SubmoduleId,
    width: usize,
    en: NetId,
) -> Result<Vec<NetId>, BuildError> {
    assert!(width >= 1);
    let mut q = Vec::with_capacity(width);
    let mut carry = en;
    for _ in 0..width {
        let qi = b.new_net();
        let di = b.add_cell(CellClass::Xor2, Drive::X1, &[qi, carry], sm)?;
        b.add_dff_onto(qi, di, sm)?;
        carry = b.add_cell(CellClass::And2, Drive::X1, &[qi, carry], sm)?;
        q.push(qi);
    }
    Ok(q)
}

/// A shift register of `depth` stages over `input`. Returns all stage
/// outputs (useful as a pipeline / instruction-queue model).
///
/// # Errors
///
/// Propagates [`BuildError`] from the builder.
pub fn shift_register(
    b: &mut NetlistBuilder,
    sm: SubmoduleId,
    input: NetId,
    depth: usize,
) -> Result<Vec<NetId>, BuildError> {
    let mut outs = Vec::with_capacity(depth);
    let mut cur = input;
    for _ in 0..depth {
        cur = b.add_dff(cur, sm)?;
        outs.push(cur);
    }
    Ok(outs)
}

/// An SRAM bank: the macro plus registered input digests. Returns the
/// read-data digest net.
///
/// # Errors
///
/// Propagates [`BuildError`] from the builder.
pub fn sram_bank(
    b: &mut NetlistBuilder,
    sm: SubmoduleId,
    words: u32,
    bits: u32,
    ren: NetId,
    wen: NetId,
    addr: NetId,
    data: NetId,
) -> Result<NetId, BuildError> {
    // Input registers (address/data setup flops, as a memory wrapper has).
    let ren_q = b.add_dff(ren, sm)?;
    let wen_q = b.add_dff(wen, sm)?;
    let addr_q = b.add_dff(addr, sm)?;
    let data_q = b.add_dff(data, sm)?;
    b.add_sram(words, bits, ren_q, wen_q, addr_q, data_q, sm)
}

#[cfg(test)]
mod tests {
    use atlas_netlist::{Design, NetlistBuilder};
    use atlas_sim::{Simulator, VectorStimulus};

    use super::*;

    /// Drive a pure-combinational block exhaustively and compare against a
    /// reference function on bit-vectors.
    fn check_comb(
        n_inputs: usize,
        build: impl Fn(&mut NetlistBuilder, SubmoduleId, &[NetId]) -> Vec<NetId>,
        reference: impl Fn(&[bool]) -> Vec<bool>,
    ) {
        let mut b = NetlistBuilder::new("comb");
        let sm = b.add_submodule("t.u", "t");
        let inputs = b.add_inputs(n_inputs);
        let outs = build(&mut b, sm, &inputs);
        for &o in &outs {
            b.mark_output(o);
        }
        let design: Design = b.finish().expect("valid");
        let mut sim = Simulator::new(&design).expect("levelizes");
        for code in 0..(1usize << n_inputs) {
            let vec: Vec<bool> = (0..n_inputs).map(|i| (code >> i) & 1 == 1).collect();
            let mut stim = VectorStimulus::new(vec![vec.clone()], 0);
            sim.step(&mut stim);
            let got: Vec<bool> = outs.iter().map(|&o| sim.net_value(o)).collect();
            assert_eq!(got, reference(&vec), "mismatch on input {code:0n_inputs$b}");
        }
    }

    #[test]
    fn adder_adds() {
        check_comb(
            8,
            |b, sm, ins| {
                let (sums, cout) =
                    ripple_adder(b, sm, &ins[0..4], &ins[4..8], None).expect("builds");
                let mut v = sums;
                v.push(cout);
                v
            },
            |v| {
                let a = v[0..4]
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| (x as usize) << i)
                    .sum::<usize>();
                let b = v[4..8]
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| (x as usize) << i)
                    .sum::<usize>();
                let s = a + b;
                (0..5).map(|i| (s >> i) & 1 == 1).collect()
            },
        );
    }

    #[test]
    fn multiplier_multiplies() {
        check_comb(
            6,
            |b, sm, ins| multiplier(b, sm, &ins[0..3], &ins[3..6]).expect("builds"),
            |v| {
                let a = v[0..3]
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| (x as usize) << i)
                    .sum::<usize>();
                let b = v[3..6]
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| (x as usize) << i)
                    .sum::<usize>();
                let p = a * b;
                (0..3).map(|i| (p >> i) & 1 == 1).collect()
            },
        );
    }

    #[test]
    fn decoder_is_one_hot() {
        check_comb(
            3,
            |b, sm, ins| decoder(b, sm, ins).expect("builds"),
            |v| {
                let idx = v
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| (x as usize) << i)
                    .sum::<usize>();
                (0..8).map(|i| i == idx).collect()
            },
        );
    }

    #[test]
    fn mux_tree_selects() {
        check_comb(
            6,
            |b, sm, ins| vec![mux_tree(b, sm, &ins[0..4], &ins[4..6]).expect("builds")],
            |v| {
                let sel = (v[4] as usize) | ((v[5] as usize) << 1);
                vec![v[sel]]
            },
        );
    }

    #[test]
    fn alu_ops() {
        check_comb(
            6,
            |b, sm, ins| alu(b, sm, &ins[0..2], &ins[2..4], [ins[4], ins[5]]).expect("builds"),
            |v| {
                let a = (v[0] as usize) | ((v[1] as usize) << 1);
                let b = (v[2] as usize) | ((v[3] as usize) << 1);
                let op = (v[4] as usize) | ((v[5] as usize) << 1);
                let r = match op {
                    0 => (a + b) & 3,
                    1 => a & b,
                    2 => a | b,
                    _ => a ^ b,
                };
                vec![r & 1 == 1, r & 2 == 2]
            },
        );
    }

    #[test]
    fn comparator_matches_equality() {
        check_comb(
            8,
            |b, sm, ins| vec![comparator_eq(b, sm, &ins[0..4], &ins[4..8]).expect("builds")],
            |v| vec![v[0..4] == v[4..8]],
        );
    }

    #[test]
    fn reductions() {
        check_comb(
            5,
            |b, sm, ins| {
                vec![
                    xor_reduce(b, sm, ins).expect("builds"),
                    and_reduce(b, sm, ins).expect("builds"),
                    or_reduce(b, sm, ins).expect("builds"),
                ]
            },
            |v| {
                vec![
                    v.iter().fold(false, |a, &x| a ^ x),
                    v.iter().all(|&x| x),
                    v.iter().any(|&x| x),
                ]
            },
        );
    }

    #[test]
    fn counter_counts() {
        let mut b = NetlistBuilder::new("cnt");
        let sm = b.add_submodule("t.u", "t");
        let q = counter(&mut b, sm, 4).expect("builds");
        for &n in &q {
            b.mark_output(n);
        }
        let d = b.finish().expect("valid");
        let mut sim = Simulator::new(&d).expect("levelizes");
        let mut stim = VectorStimulus::new(vec![vec![]], 0);
        for steps in 0..20usize {
            // After `steps` steps the visible count is `steps - 1` (the
            // registers expose the state latched at the previous edge).
            let got: usize = q
                .iter()
                .enumerate()
                .map(|(i, &n)| (sim.net_value(n) as usize) << i)
                .sum();
            if steps > 0 {
                assert_eq!(got, (steps - 1) % 16, "after {steps} steps");
            }
            sim.step(&mut stim);
        }
    }

    #[test]
    fn lfsr_cycles_through_states() {
        let mut b = NetlistBuilder::new("lfsr");
        let sm = b.add_submodule("t.u", "t");
        let q = lfsr(&mut b, sm, 8).expect("builds");
        for &n in &q {
            b.mark_output(n);
        }
        let d = b.finish().expect("valid");
        let mut sim = Simulator::new(&d).expect("levelizes");
        let mut stim = VectorStimulus::new(vec![vec![]], 0);
        let mut states = std::collections::HashSet::new();
        for _ in 0..64 {
            sim.step(&mut stim);
            let state: usize = q
                .iter()
                .enumerate()
                .map(|(i, &n)| (sim.net_value(n) as usize) << i)
                .sum();
            states.insert(state);
        }
        assert!(
            states.len() > 30,
            "LFSR visited only {} states",
            states.len()
        );
    }

    #[test]
    fn shift_register_delays() {
        let mut b = NetlistBuilder::new("sr");
        let sm = b.add_submodule("t.u", "t");
        let din = b.add_input();
        let taps = shift_register(&mut b, sm, din, 3).expect("builds");
        for &n in &taps {
            b.mark_output(n);
        }
        let d = b.finish().expect("valid");
        let mut sim = Simulator::new(&d).expect("levelizes");
        // Pulse on cycle 0, then zeros.
        let mut stim = VectorStimulus::new(
            vec![
                vec![true],
                vec![false],
                vec![false],
                vec![false],
                vec![false],
            ],
            0,
        );
        sim.step(&mut stim); // pulse captured by stage 0 at end of cycle 0
        sim.step(&mut stim);
        assert!(sim.net_value(taps[0]));
        sim.step(&mut stim);
        assert!(sim.net_value(taps[1]));
        sim.step(&mut stim);
        assert!(sim.net_value(taps[2]));
    }

    #[test]
    fn fifo_ctrl_flags_pointer_match() {
        let mut b = NetlistBuilder::new("fifo");
        let sm = b.add_submodule("t.u", "t");
        let wen = b.add_input();
        let ren = b.add_input();
        let data = b.add_inputs(4);
        let (same, held) = fifo_ctrl(&mut b, sm, 3, &data, wen, ren).expect("builds");
        b.mark_output(same);
        for &n in &held {
            b.mark_output(n);
        }
        let d = b.finish().expect("valid");
        let mut sim = Simulator::new(&d).expect("levelizes");
        // Write twice without reading → pointers differ.
        let mut stim = VectorStimulus::new(
            vec![
                vec![true, false, true, false, true, false],
                vec![true, false, true, false, true, false],
                vec![false, false, false, false, false, false],
            ],
            0,
        );
        sim.step(&mut stim);
        sim.step(&mut stim);
        sim.step(&mut stim);
        assert!(!sim.net_value(same));
    }

    #[test]
    fn sram_bank_builds() {
        let mut b = NetlistBuilder::new("bank");
        let sm = b.add_submodule("t.u", "t");
        let pins = b.add_inputs(4);
        let q = sram_bank(&mut b, sm, 256, 32, pins[0], pins[1], pins[2], pins[3]).expect("builds");
        b.mark_output(q);
        let d = b.finish().expect("valid");
        assert_eq!(d.stats().sram_bits, 256 * 32);
        assert!(d.validate().is_empty());
    }
}
