//! Design configurations (the C1..C6 presets).

use atlas_netlist::Design;
use serde::{Deserialize, Serialize};

use crate::cpu;

/// Parameters of one synthetic CPU-like design.
///
/// The six presets [`c1`](DesignConfig::c1)..[`c6`](DesignConfig::c6)
/// mirror the paper's six designs: same architecture family, increasing
/// size. All generation is deterministic in `(name, seed, scale, ...)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignConfig {
    /// Design name (`C1`..`C6`).
    pub name: String,
    /// Generation seed.
    pub seed: u64,
    /// Multiplier on all unit counts (1.0 = demo scale).
    pub scale: f64,
    /// Datapath width in bits.
    pub width: usize,
    /// Number of primary inputs.
    pub pi_count: usize,
    /// Units in the `frontend` component.
    pub frontend_units: usize,
    /// Units in the `core` component.
    pub core_units: usize,
    /// Units in the `lsu` component.
    pub lsu_units: usize,
    /// Units in the `dcache` component.
    pub dcache_units: usize,
    /// Units in the `ptw` component.
    pub ptw_units: usize,
}

impl DesignConfig {
    fn preset(
        name: &str,
        seed: u64,
        width: usize,
        frontend_units: usize,
        core_units: usize,
        lsu_units: usize,
        dcache_units: usize,
        ptw_units: usize,
    ) -> DesignConfig {
        DesignConfig {
            name: name.to_owned(),
            seed,
            scale: 1.0,
            width,
            pi_count: 48,
            frontend_units,
            core_units,
            lsu_units,
            dcache_units,
            ptw_units,
        }
    }

    /// Smallest benchmark design.
    pub fn c1() -> DesignConfig {
        DesignConfig::preset("C1", 101, 13, 26, 30, 10, 12, 4)
    }

    /// Second design (a held-out *test* design in the paper's split).
    pub fn c2() -> DesignConfig {
        DesignConfig::preset("C2", 202, 14, 28, 33, 11, 13, 4)
    }

    /// Third design.
    pub fn c3() -> DesignConfig {
        DesignConfig::preset("C3", 303, 15, 30, 36, 12, 14, 5)
    }

    /// Fourth design (the other held-out *test* design).
    pub fn c4() -> DesignConfig {
        DesignConfig::preset("C4", 404, 16, 33, 39, 13, 15, 5)
    }

    /// Fifth design.
    pub fn c5() -> DesignConfig {
        DesignConfig::preset("C5", 505, 16, 37, 45, 15, 17, 6)
    }

    /// Largest benchmark design.
    pub fn c6() -> DesignConfig {
        DesignConfig::preset("C6", 606, 18, 42, 52, 18, 20, 7)
    }

    /// All six presets, smallest to largest.
    pub fn all() -> Vec<DesignConfig> {
        vec![
            DesignConfig::c1(),
            DesignConfig::c2(),
            DesignConfig::c3(),
            DesignConfig::c4(),
            DesignConfig::c5(),
            DesignConfig::c6(),
        ]
    }

    /// The paper's training designs (C1, C3, C5, C6).
    pub fn training_set() -> Vec<DesignConfig> {
        vec![
            DesignConfig::c1(),
            DesignConfig::c3(),
            DesignConfig::c5(),
            DesignConfig::c6(),
        ]
    }

    /// The paper's held-out test designs (C2, C4).
    pub fn test_set() -> Vec<DesignConfig> {
        vec![DesignConfig::c2(), DesignConfig::c4()]
    }

    /// A minimal configuration for fast unit tests.
    pub fn tiny() -> DesignConfig {
        DesignConfig {
            pi_count: 16,
            ..DesignConfig::preset("TINY", 7, 8, 2, 2, 1, 1, 1)
        }
    }

    /// Scale all unit counts by `factor` (use > 20 to approach the paper's
    /// 300K–600K cell counts).
    pub fn scaled(mut self, factor: f64) -> DesignConfig {
        self.scale = factor;
        self
    }

    /// Effective unit count after scaling (at least 1).
    pub(crate) fn units(&self, base: usize) -> usize {
        ((base as f64 * self.scale).round() as usize).max(1)
    }

    /// Generate the design.
    ///
    /// # Examples
    ///
    /// ```
    /// use atlas_designs::DesignConfig;
    ///
    /// let d = DesignConfig::tiny().generate();
    /// assert!(d.validate().is_empty());
    /// ```
    pub fn generate(&self) -> Design {
        cpu::generate(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_grow_monotonically() {
        let sizes: Vec<usize> = DesignConfig::all()
            .iter()
            .map(|c| c.frontend_units + c.core_units + c.lsu_units + c.dcache_units + c.ptw_units)
            .collect();
        for w in sizes.windows(2) {
            assert!(w[0] < w[1], "unit counts must grow: {sizes:?}");
        }
    }

    #[test]
    fn train_test_split_is_disjoint() {
        let train: Vec<String> = DesignConfig::training_set()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let test: Vec<String> = DesignConfig::test_set()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        assert_eq!(train, vec!["C1", "C3", "C5", "C6"]);
        assert_eq!(test, vec!["C2", "C4"]);
        for t in &test {
            assert!(!train.contains(t));
        }
    }

    #[test]
    fn scaling_multiplies_units() {
        let c = DesignConfig::c1().scaled(2.0);
        assert_eq!(c.units(10), 20);
        assert_eq!(c.units(0), 1);
    }
}
