//! Assembly of the CPU-shaped designs from generator blocks.
//!
//! A design is five components (`frontend`, `core`, `lsu`, `dcache`,
//! `ptw`), each a sequence of *units*. A unit is one sub-module built from
//! a component-specific menu of block recipes; its operands are drawn from
//! a pool of previously produced nets (plus the primary inputs), and its
//! outputs are registered before joining the pool, which bounds
//! combinational depth the way pipeline registers do in real CPUs.

use atlas_netlist::detrng::DetRng;
use atlas_netlist::{BuildError, Design, NetId, NetlistBuilder, SubmoduleId};
use rand::Rng;

use crate::blocks;
use crate::config::DesignConfig;

/// Pool of nets available as operands for the next unit.
struct NetPool {
    /// Primary inputs — always pickable, keeps activity workload-coupled.
    anchors: Vec<NetId>,
    /// Recently produced (registered) nets.
    recent: Vec<NetId>,
    cap: usize,
}

impl NetPool {
    fn new(anchors: Vec<NetId>) -> NetPool {
        NetPool {
            anchors,
            recent: Vec::new(),
            cap: 1024,
        }
    }

    fn pick(&self, rng: &mut DetRng) -> NetId {
        if self.recent.is_empty() || rng.chance(0.3) {
            self.anchors[rng.gen_range(0..self.anchors.len())]
        } else {
            // Bias toward the newest nets so data flows forward.
            let n = self.recent.len();
            let start = n.saturating_sub(256);
            self.recent[rng.gen_range(start..n)]
        }
    }

    fn pick_bus(&self, rng: &mut DetRng, width: usize) -> Vec<NetId> {
        (0..width).map(|_| self.pick(rng)).collect()
    }

    fn push(&mut self, nets: &[NetId]) {
        self.recent.extend_from_slice(nets);
        if self.recent.len() > self.cap {
            let excess = self.recent.len() - self.cap;
            self.recent.drain(..excess);
        }
    }
}

/// The block recipes available to each component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnitKind {
    Fetch,
    Decode,
    Predict,
    IQueue,
    ICache,
    Alu,
    Mul,
    Regfile,
    Issue,
    Bypass,
    Agen,
    Queue,
    CacheBank,
    TagCheck,
    Mshr,
    Walker,
}

impl UnitKind {
    fn label(self) -> &'static str {
        match self {
            UnitKind::Fetch => "fetch",
            UnitKind::Decode => "decode",
            UnitKind::Predict => "predict",
            UnitKind::IQueue => "iqueue",
            UnitKind::ICache => "icache",
            UnitKind::Alu => "alu",
            UnitKind::Mul => "mul",
            UnitKind::Regfile => "regfile",
            UnitKind::Issue => "issue",
            UnitKind::Bypass => "bypass",
            UnitKind::Agen => "agen",
            UnitKind::Queue => "queue",
            UnitKind::CacheBank => "bank",
            UnitKind::TagCheck => "tag",
            UnitKind::Mshr => "mshr",
            UnitKind::Walker => "walker",
        }
    }
}

/// Menu of unit kinds per component, cycled with jitter.
fn menu(component: &str) -> &'static [UnitKind] {
    match component {
        "frontend" => &[
            UnitKind::Fetch,
            UnitKind::Decode,
            UnitKind::Predict,
            UnitKind::IQueue,
            UnitKind::ICache,
        ],
        "core" => &[
            UnitKind::Alu,
            UnitKind::Regfile,
            UnitKind::Bypass,
            UnitKind::Issue,
            UnitKind::Mul,
        ],
        "lsu" => &[UnitKind::Agen, UnitKind::Queue],
        "dcache" => &[
            UnitKind::CacheBank,
            UnitKind::TagCheck,
            UnitKind::CacheBank,
            UnitKind::Mshr,
        ],
        "ptw" => &[UnitKind::Walker],
        other => panic!("unknown component {other}"),
    }
}

/// Generate the full design described by `cfg`.
pub(crate) fn generate(cfg: &DesignConfig) -> Design {
    try_generate(cfg).expect("generator invariants guarantee a valid design")
}

fn try_generate(cfg: &DesignConfig) -> Result<Design, BuildError> {
    let mut b = NetlistBuilder::new(&cfg.name);
    let mut rng = DetRng::new(cfg.seed);
    let pis = b.add_inputs(cfg.pi_count);
    // Reserve the reset net up front so Dffr-containing units can use it.
    let _ = b.reset_net();
    let mut pool = NetPool::new(pis);

    let components: [(&str, usize); 5] = [
        ("frontend", cfg.units(cfg.frontend_units)),
        ("core", cfg.units(cfg.core_units)),
        ("lsu", cfg.units(cfg.lsu_units)),
        ("dcache", cfg.units(cfg.dcache_units)),
        ("ptw", cfg.units(cfg.ptw_units)),
    ];

    for (component, count) in components {
        let kinds = menu(component);
        for i in 0..count {
            // Cycle the menu with occasional random substitution for variety.
            let kind = if rng.chance(0.25) {
                kinds[rng.gen_range(0..kinds.len())]
            } else {
                kinds[i % kinds.len()]
            };
            let sm = b.add_submodule(format!("{component}.{}{i}", kind.label()), component);
            let outs = build_unit(&mut b, sm, kind, cfg.width, &pool, &mut rng)?;
            // Buffer each unit output before exporting it: the registered
            // Q nets stay local to the unit (register power is then
            // dominated by clock-pin energy, as in real designs), and the
            // long cross-unit wire belongs to the output buffer — i.e. to
            // the combinational group.
            let mut exported = Vec::with_capacity(outs.len());
            for &o in &outs {
                exported.push(b.add_cell(
                    atlas_liberty::CellClass::Buf,
                    atlas_liberty::Drive::X2,
                    &[o],
                    sm,
                )?);
            }
            pool.push(&exported);
        }
    }

    // Primary outputs: a digest sub-module observing the final pool state,
    // so nothing is dangling and the design has real outputs.
    let sm = b.add_submodule("core.obs", "core");
    let sample = pool.pick_bus(&mut rng, cfg.width.max(8));
    let digest = blocks::xor_reduce(&mut b, sm, &sample)?;
    let held = blocks::register_bank(&mut b, sm, &sample)?;
    b.mark_output(digest);
    for &n in held.iter().take(8) {
        b.mark_output(n);
    }
    b.finish()
}

/// Build one unit; returns its (registered) output nets.
fn build_unit(
    b: &mut NetlistBuilder,
    sm: SubmoduleId,
    kind: UnitKind,
    width: usize,
    pool: &NetPool,
    rng: &mut DetRng,
) -> Result<Vec<NetId>, BuildError> {
    let w = width.max(4);
    match kind {
        UnitKind::Fetch => {
            // Program counter: free-running counter + offset adder.
            let pc = blocks::counter(b, sm, w)?;
            let offset = pool.pick_bus(rng, w);
            let (next_pc, _) = blocks::ripple_adder(b, sm, &pc, &offset, None)?;
            blocks::register_bank(b, sm, &next_pc)
        }
        UnitKind::Decode => {
            let sel = pool.pick_bus(rng, 5);
            let onehot = blocks::decoder(b, sm, &sel)?;
            // Register a sample of decode lines plus a grouped mux.
            let choice = blocks::mux_tree(b, sm, &onehot[0..8], &pool.pick_bus(rng, 3))?;
            let mut outs = blocks::register_bank(b, sm, &onehot[0..w.min(16)])?;
            outs.push(b.add_dff(choice, sm)?);
            Ok(outs)
        }
        UnitKind::Predict => {
            // Branch-history hash: LFSR xored with live data.
            let hist = blocks::lfsr(b, sm, w)?;
            let live = pool.pick_bus(rng, w);
            let mixed: Vec<NetId> = hist
                .iter()
                .zip(&live)
                .map(|(&h, &l)| {
                    b.add_cell(
                        atlas_liberty::CellClass::Xor2,
                        atlas_liberty::Drive::X1,
                        &[h, l],
                        sm,
                    )
                })
                .collect::<Result<_, _>>()?;
            blocks::register_bank(b, sm, &mixed)
        }
        UnitKind::IQueue => {
            // Instruction queue: parallel shift registers.
            let mut outs = Vec::new();
            for _ in 0..(w / 2).max(2) {
                let input = pool.pick(rng);
                let taps = blocks::shift_register(b, sm, input, 4)?;
                outs.push(*taps.last().expect("depth >= 1"));
            }
            Ok(outs)
        }
        UnitKind::ICache => {
            let q = blocks::sram_bank(
                b,
                sm,
                512,
                64,
                pool.pick(rng),
                pool.pick(rng),
                pool.pick(rng),
                pool.pick(rng),
            )?;
            // A little way-select logic around the macro.
            let tag_a = pool.pick_bus(rng, w / 2);
            let tag_b = pool.pick_bus(rng, w / 2);
            let hit = blocks::comparator_eq(b, sm, &tag_a, &tag_b)?;
            Ok(vec![q, b.add_dff(hit, sm)?])
        }
        UnitKind::Alu => {
            let a = pool.pick_bus(rng, w);
            let bb = pool.pick_bus(rng, w);
            let op = [pool.pick(rng), pool.pick(rng)];
            let r = blocks::alu(b, sm, &a, &bb, op)?;
            blocks::register_bank(b, sm, &r)
        }
        UnitKind::Mul => {
            let half = (w / 2).max(3);
            let a = pool.pick_bus(rng, half);
            let bb = pool.pick_bus(rng, half);
            let p = blocks::multiplier(b, sm, &a, &bb)?;
            blocks::register_bank(b, sm, &p)
        }
        UnitKind::Regfile => {
            // Four write banks + a read mux per bit.
            let banks: Vec<Vec<NetId>> = (0..4)
                .map(|_| blocks::register_bank(b, sm, &pool.pick_bus(rng, w)))
                .collect::<Result<_, _>>()?;
            let rsel = pool.pick_bus(rng, 2);
            let mut reads = Vec::with_capacity(w);
            let lane = |bit: usize| [banks[0][bit], banks[1][bit], banks[2][bit], banks[3][bit]];
            for lanes in (0..w).map(lane) {
                reads.push(blocks::mux_tree(b, sm, &lanes, &rsel)?);
            }
            blocks::register_bank(b, sm, &reads)
        }
        UnitKind::Issue => {
            // Wakeup match: tag comparators, a grant OR, and an age counter.
            let mut matches = Vec::new();
            for _ in 0..4 {
                let a = pool.pick_bus(rng, (w / 2).max(3));
                let bb = pool.pick_bus(rng, (w / 2).max(3));
                matches.push(blocks::comparator_eq(b, sm, &a, &bb)?);
            }
            let grant = blocks::or_reduce(b, sm, &matches)?;
            let age = blocks::gated_counter(b, sm, 4, grant)?;
            let mut outs = blocks::register_bank(b, sm, &matches)?;
            outs.extend(age);
            Ok(outs)
        }
        UnitKind::Bypass => {
            // Forwarding network: per-bit 2:1 muxes plus an XOR checksum.
            let a = pool.pick_bus(rng, w);
            let bb = pool.pick_bus(rng, w);
            let s = pool.pick(rng);
            let mut fwd = Vec::with_capacity(w);
            for bit in 0..w {
                fwd.push(b.add_cell(
                    atlas_liberty::CellClass::Mux2,
                    atlas_liberty::Drive::X1,
                    &[a[bit], bb[bit], s],
                    sm,
                )?);
            }
            let parity = blocks::xor_reduce(b, sm, &fwd)?;
            let mut outs = blocks::register_bank(b, sm, &fwd)?;
            outs.push(b.add_dff(parity, sm)?);
            Ok(outs)
        }
        UnitKind::Agen => {
            let base = pool.pick_bus(rng, w);
            let off = pool.pick_bus(rng, w);
            let (addr, carry) = blocks::ripple_adder(b, sm, &base, &off, None)?;
            let mut outs = blocks::register_bank(b, sm, &addr)?;
            outs.push(b.add_dff(carry, sm)?);
            Ok(outs)
        }
        UnitKind::Queue => {
            let data = pool.pick_bus(rng, (w / 2).max(4));
            let wen = pool.pick(rng);
            let ren = pool.pick(rng);
            let (flag, held) = blocks::fifo_ctrl(b, sm, 4, &data, wen, ren)?;
            let mut outs = held;
            outs.push(b.add_dff(flag, sm)?);
            Ok(outs)
        }
        UnitKind::CacheBank => {
            let words = if w >= 16 { 1024 } else { 512 };
            let q = blocks::sram_bank(
                b,
                sm,
                words,
                32,
                pool.pick(rng),
                pool.pick(rng),
                pool.pick(rng),
                pool.pick(rng),
            )?;
            Ok(vec![q])
        }
        UnitKind::TagCheck => {
            let a = pool.pick_bus(rng, (w / 2).max(4));
            let bb = pool.pick_bus(rng, (w / 2).max(4));
            let hit = blocks::comparator_eq(b, sm, &a, &bb)?;
            let ways = blocks::decoder(b, sm, &pool.pick_bus(rng, 3))?;
            let lru = blocks::register_bank(b, sm, &ways)?;
            let mut outs = lru;
            outs.push(b.add_dff(hit, sm)?);
            Ok(outs)
        }
        UnitKind::Mshr => {
            let data = pool.pick_bus(rng, 4);
            let (flag, held) = blocks::fifo_ctrl(b, sm, 3, &data, pool.pick(rng), pool.pick(rng))?;
            let mut outs = held;
            outs.push(b.add_dff(flag, sm)?);
            Ok(outs)
        }
        UnitKind::Walker => {
            // Page-walk FSM: level counter, state decode, completion match.
            let en = pool.pick(rng);
            let level = blocks::gated_counter(b, sm, 3, en)?;
            let state = blocks::decoder(b, sm, &level)?;
            let done = blocks::comparator_eq(b, sm, &level, &pool.pick_bus(rng, 3))?;
            let mut outs = blocks::register_bank(b, sm, &state)?;
            outs.push(b.add_dff(done, sm)?);
            Ok(outs)
        }
    }
}

#[cfg(test)]
mod tests {
    use atlas_liberty::PowerGroup;
    use atlas_sim::{simulate, PhasedWorkload};

    use super::*;

    #[test]
    fn tiny_design_is_valid_and_simulates() {
        let d = DesignConfig::tiny().generate();
        assert!(d.validate().is_empty());
        let trace = simulate(&d, &mut PhasedWorkload::w1(1), 32).expect("simulates");
        let total: usize = trace.per_cycle_counts().iter().sum();
        assert!(total > 0, "a live design must toggle");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DesignConfig::c1().generate();
        let b = DesignConfig::c1().generate();
        assert_eq!(a, b);
    }

    #[test]
    fn designs_have_five_components() {
        let d = DesignConfig::tiny().generate();
        assert_eq!(
            d.components(),
            vec!["frontend", "core", "lsu", "dcache", "ptw"]
        );
    }

    #[test]
    fn presets_have_increasing_cell_counts() {
        let counts: Vec<usize> = DesignConfig::all()
            .iter()
            .map(|c| c.generate().cell_count())
            .collect();
        for w in counts.windows(2) {
            assert!(w[0] < w[1], "cell counts must grow: {counts:?}");
        }
    }

    #[test]
    fn register_fraction_is_realistic() {
        let d = DesignConfig::c1().generate();
        let groups = d.group_counts();
        let regs = groups[PowerGroup::Register.index()] as f64;
        let frac = regs / d.cell_count() as f64;
        assert!(
            (0.10..0.60).contains(&frac),
            "register fraction {frac:.2} outside a plausible CPU range"
        );
    }

    #[test]
    fn has_memory_macros() {
        let d = DesignConfig::c2().generate();
        assert!(d.count_in_group(PowerGroup::Memory) > 0);
        assert!(d.stats().sram_bits > 0);
    }

    #[test]
    fn workload_dependence() {
        // Different workloads must produce different activity.
        let d = DesignConfig::tiny().generate();
        let t1 = simulate(&d, &mut PhasedWorkload::w1(1), 64).expect("simulates");
        let t2 = simulate(&d, &mut PhasedWorkload::w2(1), 64).expect("simulates");
        assert_ne!(t1.per_cycle_counts(), t2.per_cycle_counts());
    }

    #[test]
    fn submodules_are_many_and_bounded() {
        let d = DesignConfig::c1().generate();
        let graphs = d.submodule_graphs();
        assert!(
            graphs.len() >= 20,
            "expected many sub-modules, got {}",
            graphs.len()
        );
        let max = graphs
            .iter()
            .map(|g| g.node_count())
            .max()
            .expect("nonempty");
        assert!(max < 4000, "sub-modules should stay small, got {max}");
    }

    #[test]
    fn scaled_config_grows() {
        let base = DesignConfig::tiny().generate().cell_count();
        let big = DesignConfig::tiny().scaled(3.0).generate().cell_count();
        assert!(big > base * 2, "base={base} big={big}");
    }
}
