//! Synthetic CPU-like benchmark designs — the C1..C6 substitute.
//!
//! The paper evaluates ATLAS on six realistic designs (out-of-order CPUs,
//! 300K–600K cells) synthesized from proprietary RTL. This crate generates
//! the closest open equivalent: parameterized CPU-shaped designs assembled
//! from structural generator blocks (adders, multipliers, ALUs, register
//! files, FIFOs, decoders, LFSRs, cache banks with SRAM macros), organized
//! into the five components the paper's Fig. 6 reports power for —
//! `frontend`, `core`, `lsu`, `dcache`, `ptw` — each split into many
//! non-overlapping sub-modules.
//!
//! Generation is fully deterministic: a [`DesignConfig`] (name, seed,
//! scale) always produces the identical [`atlas_netlist::Design`].
//!
//! Sizes default to "demo scale" so the entire ML pipeline runs on a CPU
//! in minutes; [`DesignConfig::scaled`] reaches paper-scale cell counts
//! when wanted (see DESIGN.md §2 on the scale substitution).
//!
//! # Examples
//!
//! ```
//! use atlas_designs::DesignConfig;
//!
//! let design = DesignConfig::c1().generate();
//! assert!(design.cell_count() > 1000);
//! assert_eq!(
//!     design.components(),
//!     vec!["frontend", "core", "lsu", "dcache", "ptw"]
//! );
//! ```

pub mod blocks;
mod config;
mod cpu;

pub use config::DesignConfig;
