//! Timing optimization: load-driven gate sizing and fanout-driven buffer
//! insertion.
//!
//! These are the transformations that make post-layout power differ from a
//! naive gate-level estimate: upsized drives present larger input
//! capacitance, and inserted buffers both burn power themselves and split
//! heavily loaded nets.

use atlas_liberty::{CellClass, Drive, Library};
use atlas_netlist::{Design, NetId, Sink, SinkPin, SubmoduleId};

use crate::place::Placement;

/// Statistics from one timing-optimization run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimingOptStats {
    /// Cells whose drive strength was increased.
    pub upsized: usize,
    /// Buffers inserted for fanout/load control.
    pub buffers: usize,
    /// Buffering passes executed.
    pub passes: usize,
}

/// Total load on a net (pF): sink pin capacitances plus estimated wire
/// capacitance from placement geometry.
pub fn net_load(
    design: &Design,
    lib: &Library,
    placement: &Placement,
    net: NetId,
    cap_per_um: f64,
) -> f64 {
    let mut cap = placement.hpwl(design, net) * cap_per_um;
    for sink in design.net(net).sinks() {
        let cell = design.cell(sink.cell);
        if cell.class() == CellClass::Sram {
            if let Some(m) = cell.sram().and_then(|c| lib.sram_at_least(c.words, c.bits)) {
                cap += m.pin_cap();
            }
            continue;
        }
        if let Some(lc) = lib.cell(cell.class(), cell.drive()) {
            cap += match sink.pin {
                SinkPin::Input(_) | SinkPin::Reset => lc.input_cap(),
                SinkPin::Clock => lc.clock_cap(),
            };
        }
    }
    cap
}

/// Run buffer insertion followed by gate sizing.
///
/// Buffering: any non-clock net with fanout above `max_fanout` has its
/// sinks split into placement-local groups of at most `buffer_fanout`,
/// each behind a new `BUF_X4`; repeated until no net exceeds the limit
/// (so giant nets grow a buffer tree).
///
/// Sizing: every cell driving more than its library `max_load` is upsized
/// until the load fits or `X8` is reached.
pub fn optimize_timing(
    design: &mut Design,
    lib: &Library,
    placement: &mut Placement,
    cap_per_um: f64,
    max_fanout: usize,
    buffer_fanout: usize,
) -> TimingOptStats {
    let mut stats = TimingOptStats::default();
    assert!(buffer_fanout >= 2, "buffer fanout must be at least 2");

    // --- Buffer insertion passes ---
    loop {
        let clock = design.clock();
        let heavy: Vec<NetId> = design
            .net_ids()
            .filter(|&n| Some(n) != clock)
            .filter(|&n| design.net(n).fanout() > max_fanout)
            // Skip pure clock-pin nets (handled by CTS).
            .filter(|&n| {
                design
                    .net(n)
                    .sinks()
                    .iter()
                    .any(|s| !matches!(s.pin, SinkPin::Clock))
            })
            .collect();
        if heavy.is_empty() || stats.passes >= 8 {
            break;
        }
        stats.passes += 1;
        for net in heavy {
            let sinks: Vec<Sink> = design
                .net(net)
                .sinks()
                .iter()
                .copied()
                .filter(|s| !matches!(s.pin, SinkPin::Clock))
                .collect();
            if sinks.len() <= max_fanout {
                continue;
            }
            // Sort sinks by position so each buffer serves a local group.
            let mut ordered = sinks;
            ordered.sort_by(|a, b| {
                let pa = placement.position(a.cell);
                let pb = placement.position(b.cell);
                (pa.0 + pa.1)
                    .partial_cmp(&(pb.0 + pb.1))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cell.cmp(&b.cell))
            });
            let owner = buffer_submodule(design, net);
            for group in ordered.chunks(buffer_fanout) {
                let out = design.add_net();
                let buf = design.insert_cell(
                    CellClass::Buf,
                    Drive::X4,
                    &[net],
                    out,
                    None,
                    None,
                    owner,
                    None,
                );
                // Place the buffer at the centroid of the sinks it serves.
                let (mut cx, mut cy) = (0.0, 0.0);
                for s in group {
                    let p = placement.position(s.cell);
                    cx += p.0;
                    cy += p.1;
                }
                placement.set_position(buf, (cx / group.len() as f64, cy / group.len() as f64));
                design.move_sinks(net, out, group);
                stats.buffers += 1;
            }
        }
    }

    // --- Gate sizing (to a fixpoint: upsizing a cell grows its input
    // capacitance, which can push its fanin driver over the limit) ---
    let ids: Vec<_> = design.cell_ids().collect();
    for _pass in 0..6 {
        let mut changed = false;
        for &id in &ids {
            let class = design.cell(id).class();
            if class == CellClass::Sram {
                continue;
            }
            loop {
                let drive = design.cell(id).drive();
                let Some(lc) = lib.cell(class, drive) else {
                    break;
                };
                let load = net_load(design, lib, placement, design.cell(id).output(), cap_per_um);
                if load <= lc.max_load() || drive == Drive::X8 {
                    break;
                }
                design.set_drive(id, drive.upsized());
                stats.upsized += 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    stats
}

/// Pick the sub-module for a buffer on `net`: the driver's sub-module, or
/// the first sink's for driverless (primary-input) nets.
fn buffer_submodule(design: &Design, net: NetId) -> SubmoduleId {
    if let Some(driver) = design.net(net).driver() {
        design.cell(driver).submodule()
    } else {
        design
            .net(net)
            .sinks()
            .first()
            .map(|s| design.cell(s.cell).submodule())
            .unwrap_or_else(|| SubmoduleId::from_index(0))
    }
}

#[cfg(test)]
mod tests {
    use atlas_designs::DesignConfig;
    use atlas_liberty::Library;
    use atlas_sim::{PhasedWorkload, Simulator};

    use super::*;
    use crate::place::place;

    fn optimized() -> (Design, Placement, TimingOptStats, Design) {
        let gate = DesignConfig::tiny().generate();
        let mut d = gate.clone();
        let lib = Library::synthetic_40nm();
        let mut p = place(&d, &lib, 0.7);
        let stats = optimize_timing(&mut d, &lib, &mut p, 0.00025, 10, 8);
        (d, p, stats, gate)
    }

    #[test]
    fn fanout_limit_enforced() {
        let (d, _, stats, _) = optimized();
        assert!(stats.buffers > 0, "the design has high-fanout nets to fix");
        let clock = d.clock();
        for n in d.net_ids() {
            if Some(n) == clock {
                continue;
            }
            let data_fanout = d
                .net(n)
                .sinks()
                .iter()
                .filter(|s| !matches!(s.pin, SinkPin::Clock))
                .count();
            assert!(data_fanout <= 10, "net {n} still has fanout {data_fanout}");
        }
    }

    #[test]
    fn structure_stays_valid() {
        let (d, p, _, _) = optimized();
        assert!(d.validate().is_empty());
        assert!(p.len() >= d.cell_count());
    }

    #[test]
    fn buffering_preserves_function() {
        let (d, _, _, gate) = optimized();
        let mut sim_a = Simulator::new(&gate).expect("levelizes");
        let mut sim_b = Simulator::new(&d).expect("levelizes");
        let mut stim_a = PhasedWorkload::w1(5);
        let mut stim_b = PhasedWorkload::w1(5);
        for t in 0..64 {
            sim_a.step(&mut stim_a);
            sim_b.step(&mut stim_b);
            for (&pa, &pb) in gate.primary_outputs().iter().zip(d.primary_outputs()) {
                assert_eq!(sim_a.net_value(pa), sim_b.net_value(pb), "cycle {t}");
            }
        }
    }

    #[test]
    fn sizing_respects_max_load() {
        let (d, p, stats, _) = optimized();
        let lib = Library::synthetic_40nm();
        assert!(stats.upsized > 0, "some cells should be upsized");
        let mut violations = 0usize;
        for id in d.cell_ids() {
            let cell = d.cell(id);
            if cell.class() == CellClass::Sram {
                continue;
            }
            let lc = lib.cell(cell.class(), cell.drive()).expect("characterized");
            let load = net_load(&d, &lib, &p, cell.output(), 0.00025);
            if load > lc.max_load() && cell.drive() != Drive::X8 {
                violations += 1;
            }
        }
        assert_eq!(violations, 0);
    }

    #[test]
    fn net_load_includes_pins_and_wire() {
        let (d, p, _, _) = optimized();
        let lib = Library::synthetic_40nm();
        // A net with sinks must have nonzero load.
        let net = d
            .net_ids()
            .find(|&n| d.net(n).fanout() > 0 && d.net(n).driver().is_some())
            .expect("driven net with sinks exists");
        assert!(net_load(&d, &lib, &p, net, 0.00025) > 0.0);
        // Wire term grows with cap_per_um.
        assert!(net_load(&d, &lib, &p, net, 0.01) >= net_load(&d, &lib, &p, net, 0.00025));
    }
}
