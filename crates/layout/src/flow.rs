//! The end-to-end layout flow: restructure → place → optimize → CTS → RC.

use atlas_liberty::{CellClass, Library};
use atlas_netlist::{Design, Stage};
use serde::{Deserialize, Serialize};

use crate::cts;
use crate::parasitics;
use crate::place::{place, Placement};
use crate::restructure::restructure;
use crate::route::{global_route, RouteConfig};
use crate::sizing;

/// Knobs of the layout flow (the Innovus option set of this reproduction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayoutConfig {
    /// Seed for the restructuring pass.
    pub seed: u64,
    /// Placement row utilization (0, 1].
    pub utilization: f64,
    /// Routing capacitance per micron of HPWL (pF/µm).
    pub cap_per_um: f64,
    /// Fixed per-pin via capacitance (pF).
    pub via_cap: f64,
    /// Maximum data-net fanout before buffering.
    pub max_fanout: usize,
    /// Sinks per inserted buffer.
    pub buffer_fanout: usize,
    /// Register clock pins per CTS leaf buffer.
    pub cts_leaf_fanout: usize,
    /// CTS trunk branching factor.
    pub cts_branch: usize,
    /// Fraction of combinational cells rewritten by the in-flow
    /// "netlist reconstruction" pass.
    pub reconstruct_intensity: f64,
    /// Run congestion-aware global routing and extract RC from routed
    /// wirelength (`false` falls back to HPWL-based estimation).
    pub use_router: bool,
    /// Global-router parameters.
    pub route: RouteConfig,
}

impl Default for LayoutConfig {
    fn default() -> LayoutConfig {
        LayoutConfig {
            seed: 1,
            utilization: 0.7,
            // Tuned so that wire capacitance dominates pin capacitance the
            // way it does at 40nm — the root cause of the gate-level
            // baseline's large combinational-power underestimate.
            cap_per_um: 0.00022,
            via_cap: 0.00032,
            max_fanout: 10,
            buffer_fanout: 8,
            cts_leaf_fanout: 12,
            cts_branch: 4,
            reconstruct_intensity: 0.03,
            use_router: true,
            route: RouteConfig::default(),
        }
    }
}

/// Summary of what the flow did (the "layout report").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayoutReport {
    /// Cells in the input gate-level netlist.
    pub gate_cells: usize,
    /// Cells in the post-layout netlist (Table II's second row).
    pub post_cells: usize,
    /// Cells added by restructuring ("netlist reconstruction").
    pub reconstructed_added: usize,
    /// Buffers inserted by timing optimization.
    pub buffers_added: usize,
    /// Cells upsized.
    pub cells_upsized: usize,
    /// CK cells inserted by CTS.
    pub clock_cells: usize,
    /// Clock tree depth.
    pub cts_levels: usize,
    /// Total half-perimeter wirelength (µm).
    pub wirelength_um: f64,
    /// Total routed wirelength (µm; 0 when the router is disabled).
    pub routed_um: f64,
    /// Grid edges left over capacity by the router.
    pub route_overflows: usize,
    /// Die (width, height) in µm.
    pub die: (f64, f64),
}

/// The post-layout netlist plus its placement and report.
#[derive(Debug, Clone)]
pub struct LayoutResult {
    /// Post-layout netlist `Np` (stage = [`Stage::PostLayout`]).
    pub design: Design,
    /// Final cell placement (including inserted cells).
    pub placement: Placement,
    /// Flow statistics.
    pub report: LayoutReport,
}

/// Run the full layout flow on a gate-level netlist, producing the
/// post-layout netlist `Np` with annotated wire capacitance.
///
/// Mirrors the paper's flow (§III-B2, §VI-A): logic is lightly
/// reconstructed for timing, cells are placed, drives are sized, buffers
/// inserted, the clock tree synthesized, and parasitics extracted. The
/// input design is not modified.
///
/// # Panics
///
/// Panics if `gate` is not a [`Stage::GateLevel`] design.
///
/// # Examples
///
/// ```
/// use atlas_designs::DesignConfig;
/// use atlas_layout::{run_layout, LayoutConfig};
/// use atlas_liberty::Library;
///
/// let gate = DesignConfig::tiny().generate();
/// let result = run_layout(&gate, &Library::synthetic_40nm(), &LayoutConfig::default());
/// // Timing optimization and CTS only ever add cells (Table II).
/// assert!(result.report.post_cells > result.report.gate_cells);
/// ```
pub fn run_layout(gate: &Design, lib: &Library, cfg: &LayoutConfig) -> LayoutResult {
    assert_eq!(
        gate.stage(),
        Stage::GateLevel,
        "layout starts from a gate-level netlist"
    );
    // 1. Timing-driven netlist reconstruction (light restructuring).
    let mut design = restructure(gate, cfg.seed, cfg.reconstruct_intensity);
    let reconstructed_added = design.cell_count() - gate.cell_count();

    // 2. Placement.
    let mut placement = place(&design, lib, cfg.utilization);

    // 3. Timing optimization: buffering + sizing.
    let opt = sizing::optimize_timing(
        &mut design,
        lib,
        &mut placement,
        cfg.cap_per_um,
        cfg.max_fanout,
        cfg.buffer_fanout,
    );

    // 4. Clock tree synthesis.
    let cts_stats = cts::synthesize_clock_tree(
        &mut design,
        &mut placement,
        cfg.cts_leaf_fanout,
        cfg.cts_branch,
    );

    // 5. Global routing + parasitic extraction.
    let (routed_um, route_overflows) = if cfg.use_router {
        let routed = global_route(&design, &placement, &cfg.route);
        parasitics::annotate_from_route(&mut design, &routed, cfg.cap_per_um, cfg.via_cap);
        (routed.total_length_um, routed.overflowed_edges)
    } else {
        parasitics::annotate_wire_caps(&mut design, &placement, cfg.cap_per_um, cfg.via_cap);
        (0.0, 0)
    };

    design.set_stage(Stage::PostLayout);
    let report = LayoutReport {
        gate_cells: gate.cell_count(),
        post_cells: design.cell_count(),
        reconstructed_added,
        buffers_added: opt.buffers,
        cells_upsized: opt.upsized,
        clock_cells: cts_stats.leaf_cells + cts_stats.trunk_cells,
        cts_levels: cts_stats.levels,
        wirelength_um: placement.total_wirelength(&design),
        routed_um,
        route_overflows,
        die: placement.die(),
    };
    LayoutResult {
        design,
        placement,
        report,
    }
}

/// Convenience: does this post-layout design contain a clock tree?
pub fn has_clock_tree(design: &Design) -> bool {
    design.cells().iter().any(|c| c.class() == CellClass::Clk)
}

#[cfg(test)]
mod tests {
    use atlas_designs::DesignConfig;
    use atlas_sim::{PhasedWorkload, Simulator};

    use super::*;

    fn flow() -> (Design, LayoutResult) {
        let gate = DesignConfig::tiny().generate();
        let lib = Library::synthetic_40nm();
        let result = run_layout(&gate, &lib, &LayoutConfig::default());
        (gate, result)
    }

    #[test]
    fn cell_count_grows_a_few_percent() {
        let (gate, result) = flow();
        let growth = result.report.post_cells as f64 / gate.cell_count() as f64;
        assert!(
            (1.01..1.35).contains(&growth),
            "post/gate cell ratio {growth:.3} outside the plausible band"
        );
    }

    #[test]
    fn post_layout_is_valid_and_staged() {
        let (_, result) = flow();
        assert!(result.design.validate().is_empty());
        assert_eq!(result.design.stage(), Stage::PostLayout);
        assert!(has_clock_tree(&result.design));
        assert!(result.report.wirelength_um > 0.0);
    }

    #[test]
    fn wire_caps_annotated() {
        let (_, result) = flow();
        let total: f64 = result
            .design
            .net_ids()
            .map(|n| result.design.net(n).wire_cap())
            .sum();
        assert!(total > 0.0);
    }

    #[test]
    fn function_preserved_through_whole_flow() {
        let (gate, result) = flow();
        let mut sim_a = Simulator::new(&gate).expect("levelizes");
        let mut sim_b = Simulator::new(&result.design).expect("levelizes");
        let mut stim_a = PhasedWorkload::w1(21);
        let mut stim_b = PhasedWorkload::w1(21);
        for t in 0..64 {
            sim_a.step(&mut stim_a);
            sim_b.step(&mut stim_b);
            for (&pa, &pb) in gate
                .primary_outputs()
                .iter()
                .zip(result.design.primary_outputs())
            {
                assert_eq!(sim_a.net_value(pa), sim_b.net_value(pb), "cycle {t}");
            }
        }
    }

    #[test]
    fn flow_is_deterministic() {
        let gate = DesignConfig::tiny().generate();
        let lib = Library::synthetic_40nm();
        let a = run_layout(&gate, &lib, &LayoutConfig::default());
        let b = run_layout(&gate, &lib, &LayoutConfig::default());
        assert_eq!(a.design, b.design);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn submodule_alignment_preserved() {
        let (gate, result) = flow();
        // Every gate-level sub-module still exists at the same id.
        for (i, sm) in gate.submodules().iter().enumerate() {
            let post = &result.design.submodules()[i];
            assert_eq!(sm.name(), post.name());
            assert_eq!(sm.component(), post.component());
        }
        // Layout may append CTS sub-modules after them.
        assert!(result.design.submodules().len() >= gate.submodules().len());
    }

    #[test]
    #[should_panic(expected = "gate-level")]
    fn rejects_post_layout_input() {
        let (_, result) = flow();
        let lib = Library::synthetic_40nm();
        let _ = run_layout(&result.design, &lib, &LayoutConfig::default());
    }
}
