//! Layout-flow substitute — the Innovus stand-in of the ATLAS reproduction.
//!
//! The paper transforms each post-synthesis gate-level netlist `Ng` into a
//! post-layout netlist `Np` with Innovus (mixed-size placement, clock tree
//! synthesis, routing, with timing optimization at every step) and extracts
//! RC parasitics into SPEF. This crate reproduces every behaviour of that
//! flow that matters to power:
//!
//! * [`restructure`] — logic-invariant rewriting, producing the
//!   functionally-equivalent netlist `N+g` used as contrastive positives
//!   (paper §III-B1), and also applied lightly inside the layout flow to
//!   model "netlist reconstruction" during timing optimization;
//! * [`place`] — hierarchical grid placement (sub-modules cluster inside
//!   component regions), giving every cell a coordinate;
//! * gate **sizing** and **buffer insertion** driven by load/fanout limits
//!   (the reason post-layout cell counts exceed gate-level counts in
//!   Table II);
//! * [`cts`] — clock tree synthesis: per-sub-module leaf buffers plus a
//!   balanced trunk of `CK`-class cells (the clock-tree power group exists
//!   only after this step, which is why a gate-level power tool scores
//!   100% MAPE on it);
//! * [`parasitics`] — wire capacitance from placement geometry, written
//!   and read back as SPEF-lite.
//!
//! The entry point is [`run_layout`].
//!
//! # Examples
//!
//! ```
//! use atlas_designs::DesignConfig;
//! use atlas_layout::{run_layout, LayoutConfig};
//! use atlas_liberty::Library;
//! use atlas_netlist::Stage;
//!
//! let gate = DesignConfig::tiny().generate();
//! let lib = Library::synthetic_40nm();
//! let result = run_layout(&gate, &lib, &LayoutConfig::default());
//! assert_eq!(result.design.stage(), Stage::PostLayout);
//! assert!(result.design.cell_count() > gate.cell_count());
//! ```

pub mod cts;
mod flow;
pub mod parasitics;
pub mod place;
pub mod restructure;
pub mod route;
pub mod sizing;

pub use flow::{has_clock_tree, run_layout, LayoutConfig, LayoutReport, LayoutResult};
pub use parasitics::{annotate_from_route, read_spef, write_spef, ParseSpefError};
pub use place::Placement;
pub use route::{global_route, RouteConfig, RouteResult};
