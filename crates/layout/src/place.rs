//! Hierarchical grid placement.
//!
//! Components get horizontal die bands proportional to their area;
//! sub-modules are shelf-packed inside their component band; cells fill a
//! local grid inside their sub-module tile. The result is what matters to
//! power: intra-sub-module wires are short, cross-boundary wires are long,
//! and wire capacitance can be estimated from half-perimeter wirelength.

use std::collections::HashMap;

use atlas_liberty::{CellClass, Library};
use atlas_netlist::{CellId, Design, NetId};
use serde::{Deserialize, Serialize};

/// Cell coordinates on the die (µm).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    positions: Vec<(f64, f64)>,
    die_width: f64,
    die_height: f64,
}

impl Placement {
    /// Position of one placed cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell has not been placed (index out of range).
    pub fn position(&self, cell: CellId) -> (f64, f64) {
        self.positions[cell.index()]
    }

    /// Number of placed cells.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether no cells are placed.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Die dimensions (width, height) in µm.
    pub fn die(&self) -> (f64, f64) {
        (self.die_width, self.die_height)
    }

    /// Place (or move) a cell; extends the table for newly inserted cells.
    pub fn set_position(&mut self, cell: CellId, pos: (f64, f64)) {
        if cell.index() >= self.positions.len() {
            self.positions.resize(cell.index() + 1, (0.0, 0.0));
        }
        self.positions[cell.index()] = pos;
    }

    /// Half-perimeter wirelength of a net (µm) over its placed driver and
    /// sinks. Nets with fewer than two placed endpoints have zero length.
    pub fn hpwl(&self, design: &Design, net: NetId) -> f64 {
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        let mut points = 0usize;
        let mut add = |p: (f64, f64)| {
            min_x = min_x.min(p.0);
            max_x = max_x.max(p.0);
            min_y = min_y.min(p.1);
            max_y = max_y.max(p.1);
            points += 1;
        };
        let n = design.net(net);
        if let Some(driver) = n.driver() {
            if driver.index() < self.positions.len() {
                add(self.positions[driver.index()]);
            }
        }
        for sink in n.sinks() {
            if sink.cell.index() < self.positions.len() {
                add(self.positions[sink.cell.index()]);
            }
        }
        if points < 2 {
            0.0
        } else {
            (max_x - min_x) + (max_y - min_y)
        }
    }

    /// Sum of HPWL over all nets (µm) — the layout quality metric reported
    /// by the flow.
    pub fn total_wirelength(&self, design: &Design) -> f64 {
        design.net_ids().map(|n| self.hpwl(design, n)).sum()
    }

    /// Centroid of a net's sink cells (for placing inserted buffers).
    pub fn sink_centroid(&self, design: &Design, net: NetId) -> (f64, f64) {
        let sinks = design.net(net).sinks();
        if sinks.is_empty() {
            return (self.die_width / 2.0, self.die_height / 2.0);
        }
        let mut x = 0.0;
        let mut y = 0.0;
        let mut count = 0usize;
        for s in sinks {
            if s.cell.index() < self.positions.len() {
                let p = self.positions[s.cell.index()];
                x += p.0;
                y += p.1;
                count += 1;
            }
        }
        if count == 0 {
            (self.die_width / 2.0, self.die_height / 2.0)
        } else {
            (x / count as f64, y / count as f64)
        }
    }
}

/// Place every cell of `design`, returning the [`Placement`].
///
/// # Examples
///
/// ```
/// use atlas_designs::DesignConfig;
/// use atlas_layout::place::place;
/// use atlas_liberty::Library;
///
/// let d = DesignConfig::tiny().generate();
/// let p = place(&d, &Library::synthetic_40nm(), 0.7);
/// assert_eq!(p.len(), d.cell_count());
/// assert!(p.total_wirelength(&d) > 0.0);
/// ```
pub fn place(design: &Design, lib: &Library, utilization: f64) -> Placement {
    assert!(
        utilization > 0.0 && utilization <= 1.0,
        "utilization must be in (0, 1]"
    );
    let cell_area = |id: CellId| -> f64 {
        let c = design.cell(id);
        if c.class() == CellClass::Sram {
            c.sram()
                .and_then(|cfg| lib.sram_at_least(cfg.words, cfg.bits))
                .map(|m| m.area())
                .unwrap_or(100.0)
        } else {
            lib.cell(c.class(), c.drive())
                .map(|lc| lc.area())
                .unwrap_or(1.0)
        }
    };

    // Group cells: component -> submodule -> cells.
    let mut by_component: Vec<(String, Vec<(usize, Vec<CellId>)>)> = Vec::new();
    {
        let mut sm_cells: HashMap<usize, Vec<CellId>> = HashMap::new();
        for id in design.cell_ids() {
            sm_cells
                .entry(design.cell(id).submodule().index())
                .or_default()
                .push(id);
        }
        for comp in design.components() {
            let mut submods: Vec<(usize, Vec<CellId>)> = design
                .submodule_ids()
                .filter(|&sm| design.submodule(sm).component() == comp)
                .filter_map(|sm| {
                    sm_cells
                        .remove(&sm.index())
                        .map(|cells| (sm.index(), cells))
                })
                .collect();
            submods.sort_by_key(|(sm, _)| *sm);
            by_component.push((comp.to_owned(), submods));
        }
        // Any cells in components not returned by `components()` (defensive).
        let mut leftovers: Vec<(usize, Vec<CellId>)> = sm_cells.into_iter().collect();
        if !leftovers.is_empty() {
            leftovers.sort_by_key(|(sm, _)| *sm);
            by_component.push(("misc".to_owned(), leftovers));
        }
    }

    let total_area: f64 = design.cell_ids().map(cell_area).sum();
    let die_area = total_area / utilization;
    let die_side = die_area.sqrt().max(1.0);

    let mut positions = vec![(0.0, 0.0); design.cell_count()];

    // Horizontal bands per component, heights proportional to area.
    let comp_area: Vec<f64> = by_component
        .iter()
        .map(|(_, submods)| {
            submods
                .iter()
                .flat_map(|(_, cells)| cells.iter())
                .map(|&c| cell_area(c))
                .sum::<f64>()
                / utilization
        })
        .collect();
    let mut band_y = 0.0;
    for ((_, submods), area) in by_component.iter().zip(&comp_area) {
        let band_h = (area / die_side).max(1.0);
        // Shelf-pack sub-module tiles inside the band.
        let mut shelf_x = 0.0;
        let mut shelf_y = band_y;
        let mut shelf_h: f64 = 0.0;
        for (_, cells) in submods {
            let sm_area: f64 = cells.iter().map(|&c| cell_area(c)).sum::<f64>() / utilization;
            let tile = sm_area.sqrt().max(0.5);
            if shelf_x + tile > die_side && shelf_x > 0.0 {
                shelf_x = 0.0;
                shelf_y += shelf_h;
                shelf_h = 0.0;
            }
            shelf_h = shelf_h.max(tile);
            // Cells in a grid inside the tile.
            let cols = (cells.len() as f64).sqrt().ceil().max(1.0) as usize;
            let pitch = tile / cols as f64;
            for (i, &c) in cells.iter().enumerate() {
                let col = i % cols;
                let row = i / cols;
                positions[c.index()] = (
                    shelf_x + (col as f64 + 0.5) * pitch,
                    shelf_y + (row as f64 + 0.5) * pitch,
                );
            }
            shelf_x += tile;
        }
        band_y += band_h.max(shelf_y + shelf_h - band_y);
    }

    Placement {
        positions,
        die_width: die_side,
        die_height: band_y.max(1.0),
    }
}

#[cfg(test)]
mod tests {
    use atlas_designs::DesignConfig;

    use super::*;

    fn placed() -> (Design, Placement) {
        let d = DesignConfig::tiny().generate();
        let p = place(&d, &Library::synthetic_40nm(), 0.7);
        (d, p)
    }

    #[test]
    fn all_cells_placed_inside_die() {
        let (d, p) = placed();
        assert_eq!(p.len(), d.cell_count());
        let (w, h) = p.die();
        for id in d.cell_ids() {
            let (x, y) = p.position(id);
            assert!(x >= 0.0 && x <= w * 1.01, "x={x} outside die width {w}");
            assert!(y >= 0.0 && y <= h * 1.01, "y={y} outside die height {h}");
        }
    }

    #[test]
    fn same_submodule_cells_are_near() {
        let (d, p) = placed();
        // Average intra-submodule distance must be well below die diagonal.
        let (w, h) = p.die();
        let diag = (w * w + h * h).sqrt();
        let mut intra = 0.0;
        let mut pairs = 0usize;
        for g in d.submodule_graphs() {
            let cells = g.cells();
            for pair in cells.windows(2) {
                let a = p.position(pair[0]);
                let b = p.position(pair[1]);
                intra += ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
                pairs += 1;
            }
        }
        let avg = intra / pairs.max(1) as f64;
        assert!(
            avg < diag * 0.25,
            "avg intra-submodule distance {avg:.1} vs diagonal {diag:.1}"
        );
    }

    #[test]
    fn hpwl_positive_for_multi_terminal_nets() {
        let (d, p) = placed();
        let mut nonzero = 0usize;
        for n in d.net_ids() {
            let net = d.net(n);
            if net.driver().is_some() && net.fanout() > 0 {
                let l = p.hpwl(&d, n);
                assert!(l >= 0.0);
                if l > 0.0 {
                    nonzero += 1;
                }
            }
        }
        assert!(
            nonzero > d.net_count() / 4,
            "most driven nets should have length"
        );
    }

    #[test]
    fn set_position_extends() {
        let (d, mut p) = placed();
        let new_cell = CellId::from_index(d.cell_count() + 5);
        p.set_position(new_cell, (1.0, 2.0));
        assert_eq!(p.position(new_cell), (1.0, 2.0));
    }

    #[test]
    fn placement_is_deterministic() {
        let d = DesignConfig::tiny().generate();
        let lib = Library::synthetic_40nm();
        assert_eq!(place(&d, &lib, 0.7), place(&d, &lib, 0.7));
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn bad_utilization_panics() {
        let d = DesignConfig::tiny().generate();
        let _ = place(&d, &Library::synthetic_40nm(), 0.0);
    }
}
