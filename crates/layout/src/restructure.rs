//! Logic-invariant netlist restructuring.
//!
//! Rebuilds a design while rewriting a seeded random subset of its
//! combinational cells into functionally-equivalent forms (De Morgan
//! duals, AOI/OAI decompositions, double inversions, adder-cell
//! expansions). Two uses, matching the paper:
//!
//! 1. With a high intensity, produces the `N+g` netlist whose sub-modules
//!    are the *positive samples* of gate-level contrastive learning
//!    (Task #4, paper §IV).
//! 2. With a low intensity inside [`crate::run_layout`], models the
//!    "netlist reconstruction" performed by timing optimization (§III-A).
//!
//! Sub-module ids, primary-input order, and output semantics are all
//! preserved, so `Ng`/`N+g`/`Np` stay aligned sub-module by sub-module.

use atlas_liberty::{CellClass, Drive};
use atlas_netlist::detrng::DetRng;
use atlas_netlist::{BuildError, Design, NetId, NetlistBuilder, SubmoduleId};

/// Rewrite a seeded random `intensity` fraction of combinational cells
/// into equivalent forms; returns the rebuilt design.
///
/// The result is functionally identical cycle-for-cycle (verified by the
/// crate's simulation-equivalence tests) but structurally different: cell
/// count grows, node types shift, and local graph shapes change.
///
/// # Panics
///
/// Panics if `design` violates builder invariants (impossible for designs
/// produced by [`NetlistBuilder`]) — rebuilding a valid design cannot fail.
///
/// # Examples
///
/// ```
/// use atlas_designs::DesignConfig;
/// use atlas_layout::restructure::restructure;
///
/// let gate = DesignConfig::tiny().generate();
/// let plus = restructure(&gate, 1, 0.5);
/// assert!(plus.cell_count() > gate.cell_count());
/// assert_eq!(plus.submodules().len(), gate.submodules().len());
/// ```
pub fn restructure(design: &Design, seed: u64, intensity: f64) -> Design {
    try_restructure(design, seed, intensity)
        .expect("rebuilding a valid design preserves builder invariants")
}

fn try_restructure(design: &Design, seed: u64, intensity: f64) -> Result<Design, BuildError> {
    let mut rng = DetRng::new(seed ^ 0x5EC0_15EC);
    let mut b = NetlistBuilder::new(design.name());

    for sm in design.submodules() {
        b.add_submodule(sm.name().to_owned(), sm.component().to_owned());
    }

    // Recreate every net 1:1 (ids are preserved because creation order is
    // id order); rewrites append fresh internal nets afterwards.
    let pi_set: std::collections::HashSet<usize> =
        design.primary_inputs().iter().map(|n| n.index()).collect();
    let mut net_map: Vec<NetId> = Vec::with_capacity(design.net_count());
    for id in design.net_ids() {
        let new = if pi_set.contains(&id.index()) {
            b.add_input()
        } else if design.clock() == Some(id) {
            b.clock_net()
        } else if design.reset() == Some(id) {
            b.reset_net()
        } else {
            b.new_net()
        };
        net_map.push(new);
    }

    for cell in design.cells() {
        let sm = cell.submodule();
        let out = net_map[cell.output().index()];
        let ins: Vec<NetId> = cell.inputs().iter().map(|&n| net_map[n.index()]).collect();
        match cell.class() {
            CellClass::Dff => {
                b.add_dff_onto(out, ins[0], sm)?;
            }
            CellClass::Dffr => {
                b.add_dffr_onto(out, ins[0], sm)?;
            }
            CellClass::Sram => {
                let cfg = cell.sram().expect("sram cells carry a config");
                b.add_sram_onto(out, cfg.words, cfg.bits, ins[0], ins[1], ins[2], ins[3], sm)?;
            }
            class => {
                if rng.chance(intensity) {
                    rewrite_cell(&mut b, sm, class, cell.drive(), &ins, out, &mut rng)?;
                } else {
                    b.add_cell_onto(out, class, cell.drive(), &ins, sm)?;
                }
            }
        }
    }

    for &po in design.primary_outputs() {
        b.mark_output(net_map[po.index()]);
    }
    b.finish()
}

/// Emit a functionally-equivalent replacement for one combinational cell,
/// driving `out`.
fn rewrite_cell(
    b: &mut NetlistBuilder,
    sm: SubmoduleId,
    class: CellClass,
    drive: Drive,
    ins: &[NetId],
    out: NetId,
    rng: &mut DetRng,
) -> Result<(), BuildError> {
    // Occasionally wrap the original cell in a double inversion instead of
    // changing its body.
    if rng.chance(0.25) {
        let orig = b.add_cell(class, drive, ins, sm)?;
        let inv = b.add_cell(CellClass::Inv, Drive::X1, &[orig], sm)?;
        b.add_cell_onto(out, CellClass::Inv, drive, &[inv], sm)?;
        return Ok(());
    }
    match class {
        CellClass::And2 => {
            // a & b == !nand(a, b)
            let n = b.add_cell(CellClass::Nand2, drive, ins, sm)?;
            b.add_cell_onto(out, CellClass::Inv, drive, &[n], sm)?;
        }
        CellClass::Or2 => {
            let n = b.add_cell(CellClass::Nor2, drive, ins, sm)?;
            b.add_cell_onto(out, CellClass::Inv, drive, &[n], sm)?;
        }
        CellClass::Nand2 => {
            let n = b.add_cell(CellClass::And2, drive, ins, sm)?;
            b.add_cell_onto(out, CellClass::Inv, drive, &[n], sm)?;
        }
        CellClass::Nor2 => {
            let n = b.add_cell(CellClass::Or2, drive, ins, sm)?;
            b.add_cell_onto(out, CellClass::Inv, drive, &[n], sm)?;
        }
        CellClass::Xor2 => {
            let n = b.add_cell(CellClass::Xnor2, drive, ins, sm)?;
            b.add_cell_onto(out, CellClass::Inv, drive, &[n], sm)?;
        }
        CellClass::Xnor2 => {
            let n = b.add_cell(CellClass::Xor2, drive, ins, sm)?;
            b.add_cell_onto(out, CellClass::Inv, drive, &[n], sm)?;
        }
        CellClass::Buf => {
            let n = b.add_cell(CellClass::Inv, drive, ins, sm)?;
            b.add_cell_onto(out, CellClass::Inv, drive, &[n], sm)?;
        }
        CellClass::Inv => {
            // !a == nand(a, a)
            b.add_cell_onto(out, CellClass::Nand2, drive, &[ins[0], ins[0]], sm)?;
        }
        CellClass::Mux2 => {
            // mux(a, b, s) == !aoi22(a, !s, b, s)
            let (a, d, s) = (ins[0], ins[1], ins[2]);
            let ns = b.add_cell(CellClass::Inv, Drive::X1, &[s], sm)?;
            let aoi = b.add_cell(CellClass::Aoi22, drive, &[a, ns, d, s], sm)?;
            b.add_cell_onto(out, CellClass::Inv, drive, &[aoi], sm)?;
        }
        CellClass::Aoi21 => {
            // !(ab | c) == nor(ab, c)
            let ab = b.add_cell(CellClass::And2, Drive::X1, &[ins[0], ins[1]], sm)?;
            b.add_cell_onto(out, CellClass::Nor2, drive, &[ab, ins[2]], sm)?;
        }
        CellClass::Oai21 => {
            // !((a|b) & c) == nand(a|b, c)
            let ab = b.add_cell(CellClass::Or2, Drive::X1, &[ins[0], ins[1]], sm)?;
            b.add_cell_onto(out, CellClass::Nand2, drive, &[ab, ins[2]], sm)?;
        }
        CellClass::Aoi22 => {
            let ab = b.add_cell(CellClass::And2, Drive::X1, &[ins[0], ins[1]], sm)?;
            let cd = b.add_cell(CellClass::And2, Drive::X1, &[ins[2], ins[3]], sm)?;
            b.add_cell_onto(out, CellClass::Nor2, drive, &[ab, cd], sm)?;
        }
        CellClass::HalfAdder => {
            b.add_cell_onto(out, CellClass::Xor2, drive, ins, sm)?;
        }
        CellClass::FullAdder => {
            let ab = b.add_cell(CellClass::Xor2, Drive::X1, &[ins[0], ins[1]], sm)?;
            b.add_cell_onto(out, CellClass::Xor2, drive, &[ab, ins[2]], sm)?;
        }
        CellClass::Clk => {
            // Clock cells pass through unchanged (absent at gate level).
            b.add_cell_onto(out, CellClass::Clk, drive, ins, sm)?;
        }
        CellClass::Dff | CellClass::Dffr | CellClass::Sram => {
            unreachable!("sequential cells are copied, not rewritten")
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use atlas_designs::DesignConfig;
    use atlas_sim::{simulate, PhasedWorkload, Simulator, VectorStimulus};

    use super::*;

    /// Simulate both designs under the same stimulus and compare primary
    /// outputs every cycle.
    fn assert_po_equivalent(a: &Design, bb: &Design, cycles: usize) {
        assert_eq!(a.primary_outputs().len(), bb.primary_outputs().len());
        let mut sim_a = Simulator::new(a).expect("levelizes");
        let mut sim_b = Simulator::new(bb).expect("levelizes");
        let mut stim_a = PhasedWorkload::w1(77);
        let mut stim_b = PhasedWorkload::w1(77);
        for t in 0..cycles {
            sim_a.step(&mut stim_a);
            sim_b.step(&mut stim_b);
            for (&pa, &pb) in a.primary_outputs().iter().zip(bb.primary_outputs()) {
                assert_eq!(
                    sim_a.net_value(pa),
                    sim_b.net_value(pb),
                    "PO mismatch at cycle {t}"
                );
            }
        }
    }

    #[test]
    fn restructured_design_is_equivalent() {
        let gate = DesignConfig::tiny().generate();
        let plus = restructure(&gate, 42, 0.6);
        assert!(plus.validate().is_empty());
        assert_po_equivalent(&gate, &plus, 64);
    }

    #[test]
    fn restructure_grows_cell_count_with_intensity() {
        let gate = DesignConfig::tiny().generate();
        let light = restructure(&gate, 1, 0.05);
        let heavy = restructure(&gate, 1, 0.9);
        assert!(light.cell_count() >= gate.cell_count());
        assert!(heavy.cell_count() > light.cell_count());
    }

    #[test]
    fn zero_intensity_is_identity_up_to_ids() {
        let gate = DesignConfig::tiny().generate();
        let same = restructure(&gate, 9, 0.0);
        assert_eq!(same.cell_count(), gate.cell_count());
        assert_eq!(same.stats().per_class, gate.stats().per_class);
        assert_po_equivalent(&gate, &same, 32);
    }

    #[test]
    fn restructure_is_deterministic() {
        let gate = DesignConfig::tiny().generate();
        assert_eq!(restructure(&gate, 3, 0.5), restructure(&gate, 3, 0.5));
    }

    #[test]
    fn different_seeds_give_different_structures() {
        let gate = DesignConfig::tiny().generate();
        let a = restructure(&gate, 1, 0.5);
        let b = restructure(&gate, 2, 0.5);
        assert_ne!(a, b);
        assert_po_equivalent(&a, &b, 32);
    }

    #[test]
    fn registers_and_srams_preserved() {
        let gate = DesignConfig::tiny().generate();
        let plus = restructure(&gate, 5, 0.9);
        let gs = gate.stats();
        let ps = plus.stats();
        assert_eq!(
            gs.class_count(CellClass::Dff),
            ps.class_count(CellClass::Dff)
        );
        assert_eq!(
            gs.class_count(CellClass::Dffr),
            ps.class_count(CellClass::Dffr)
        );
        assert_eq!(
            gs.class_count(CellClass::Sram),
            ps.class_count(CellClass::Sram)
        );
        assert_eq!(gs.sram_bits, ps.sram_bits);
    }

    #[test]
    fn every_rewrite_rule_is_sound() {
        // Build one cell of each rewritable class, force intensity 1.0, and
        // exhaustively compare primary outputs over all input vectors.
        use atlas_netlist::logic;
        for class in CellClass::ALL {
            if class.is_sequential() || class == CellClass::Clk {
                continue;
            }
            let n = class.input_pins();
            let mut b = NetlistBuilder::new("one");
            let sm = b.add_submodule("t.u", "t");
            let ins = b.add_inputs(n);
            let y = b.add_cell(class, Drive::X1, &ins, sm).expect("builds");
            b.mark_output(y);
            let gate = b.finish().expect("valid");

            // Try several seeds to hit both the double-inversion and the
            // class-specific rewrite paths.
            for seed in 0..6 {
                let plus = restructure(&gate, seed, 1.0);
                let mut sim = Simulator::new(&plus).expect("levelizes");
                for code in 0..(1usize << n) {
                    let vec: Vec<bool> = (0..n).map(|i| (code >> i) & 1 == 1).collect();
                    let expect = logic::eval(class, &vec).expect("combinational");
                    let mut stim = VectorStimulus::new(vec![vec], 0);
                    sim.step(&mut stim);
                    let got = sim.net_value(plus.primary_outputs()[0]);
                    assert_eq!(
                        got, expect,
                        "{class} rewrite (seed {seed}) broke input {code:b}"
                    );
                }
            }
        }
    }

    #[test]
    fn toggle_activity_stays_similar() {
        // Restructuring shouldn't wildly change activity (it adds inverters
        // whose toggles mirror their drivers).
        let gate = DesignConfig::tiny().generate();
        let plus = restructure(&gate, 11, 0.4);
        let tg = simulate(&gate, &mut PhasedWorkload::w1(3), 128).expect("simulates");
        let tp = simulate(&plus, &mut PhasedWorkload::w1(3), 128).expect("simulates");
        let rate_g: f64 =
            tg.per_cycle_counts().iter().sum::<usize>() as f64 / (gate.net_count() * 128) as f64;
        let rate_p: f64 =
            tp.per_cycle_counts().iter().sum::<usize>() as f64 / (plus.net_count() * 128) as f64;
        assert!(
            (rate_g - rate_p).abs() < 0.1,
            "toggle rates diverged: {rate_g:.3} vs {rate_p:.3}"
        );
    }
}
