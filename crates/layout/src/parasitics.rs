//! Parasitic estimation and SPEF-lite interchange.
//!
//! After placement, every net's wire capacitance is estimated from its
//! half-perimeter wirelength. The values can be dumped to and re-read from
//! a SPEF-shaped text format, mirroring how the paper's flow moves RC data
//! from Innovus to PrimeTime PX.

use std::fmt;

use atlas_netlist::{Design, NetId};

use crate::place::Placement;
use crate::route::RouteResult;

/// Annotate every net's `wire_cap` from placement geometry:
/// `cap = hpwl × cap_per_um + fanout × via_cap`.
///
/// `cap_per_um` is the routing-layer capacitance per micron (pF/µm);
/// `via_cap` models the fixed per-pin via/jog contribution.
pub fn annotate_wire_caps(
    design: &mut Design,
    placement: &Placement,
    cap_per_um: f64,
    via_cap: f64,
) {
    for net in design.net_ids().collect::<Vec<_>>() {
        let hpwl = placement.hpwl(design, net);
        let fanout = design.net(net).fanout() as f64;
        design.set_wire_cap(net, hpwl * cap_per_um + fanout * via_cap);
    }
}

/// Annotate wire capacitance from *routed* wirelength:
/// `cap = routed_len × cap_per_um + fanout × via_cap`. The routed length
/// reflects congestion detours, which HPWL cannot see.
pub fn annotate_from_route(
    design: &mut Design,
    routed: &RouteResult,
    cap_per_um: f64,
    via_cap: f64,
) {
    for net in design.net_ids().collect::<Vec<_>>() {
        let len = routed
            .net_length_um
            .get(net.index())
            .copied()
            .unwrap_or(0.0);
        let fanout = design.net(net).fanout() as f64;
        design.set_wire_cap(net, len * cap_per_um + fanout * via_cap);
    }
}

/// Error from parsing SPEF-lite text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpefError {
    line: usize,
    message: String,
}

impl ParseSpefError {
    /// 1-based line of the problem.
    pub fn line(&self) -> usize {
        self.line
    }

    /// Description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseSpefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SPEF parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseSpefError {}

/// Serialize the design's net capacitances as SPEF-lite text.
///
/// # Examples
///
/// ```
/// use atlas_designs::DesignConfig;
/// use atlas_layout::{read_spef, write_spef};
///
/// # fn main() -> Result<(), atlas_layout::ParseSpefError> {
/// let d = DesignConfig::tiny().generate();
/// let text = write_spef(&d);
/// let entries = read_spef(&text)?;
/// assert_eq!(entries.len(), d.net_count());
/// # Ok(())
/// # }
/// ```
pub fn write_spef(design: &Design) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "*SPEF atlas-lite");
    let _ = writeln!(out, "*DESIGN {}", design.name());
    let _ = writeln!(out, "*C_UNIT pf");
    for net in design.net_ids() {
        let _ = writeln!(
            out,
            "*D_NET n{} {:.9}",
            net.index(),
            design.net(net).wire_cap()
        );
    }
    out
}

/// Parse SPEF-lite text into `(net_index, wire_cap_pf)` entries.
///
/// # Errors
///
/// Returns [`ParseSpefError`] on malformed lines or a missing header.
pub fn read_spef(text: &str) -> Result<Vec<(usize, f64)>, ParseSpefError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, first)) if first.trim() == "*SPEF atlas-lite" => {}
        _ => {
            return Err(ParseSpefError {
                line: 1,
                message: "missing `*SPEF atlas-lite` header".to_owned(),
            })
        }
    }
    let mut entries = Vec::new();
    for (i, line) in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with("*DESIGN") || line.starts_with("*C_UNIT") {
            continue;
        }
        let lineno = i + 1;
        let rest = line.strip_prefix("*D_NET ").ok_or_else(|| ParseSpefError {
            line: lineno,
            message: format!("expected `*D_NET`, got `{line}`"),
        })?;
        let mut parts = rest.split_whitespace();
        let name = parts.next().ok_or_else(|| ParseSpefError {
            line: lineno,
            message: "missing net name".to_owned(),
        })?;
        let idx: usize = name
            .strip_prefix('n')
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ParseSpefError {
                line: lineno,
                message: format!("bad net name `{name}`"),
            })?;
        let cap: f64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ParseSpefError {
                line: lineno,
                message: "missing or bad capacitance".to_owned(),
            })?;
        entries.push((idx, cap));
    }
    Ok(entries)
}

/// Apply SPEF entries back onto a design (the PTPX-side read path).
///
/// Entries referencing nets beyond the design are ignored.
pub fn apply_spef(design: &mut Design, entries: &[(usize, f64)]) {
    for &(idx, cap) in entries {
        if idx < design.net_count() {
            design.set_wire_cap(NetId::from_index(idx), cap);
        }
    }
}

#[cfg(test)]
mod tests {
    use atlas_designs::DesignConfig;
    use atlas_liberty::Library;

    use super::*;
    use crate::place::place;

    #[test]
    fn annotation_produces_positive_caps() {
        let mut d = DesignConfig::tiny().generate();
        let lib = Library::synthetic_40nm();
        let p = place(&d, &lib, 0.7);
        annotate_wire_caps(&mut d, &p, 0.00025, 0.00005);
        let with_cap = d.net_ids().filter(|&n| d.net(n).wire_cap() > 0.0).count();
        assert!(
            with_cap > d.net_count() / 2,
            "most nets should get wire cap"
        );
    }

    #[test]
    fn spef_roundtrip() {
        let mut d = DesignConfig::tiny().generate();
        let lib = Library::synthetic_40nm();
        let p = place(&d, &lib, 0.7);
        annotate_wire_caps(&mut d, &p, 0.00025, 0.00005);
        let text = write_spef(&d);
        let entries = read_spef(&text).expect("parses");
        let mut fresh = DesignConfig::tiny().generate();
        apply_spef(&mut fresh, &entries);
        for n in d.net_ids() {
            assert!((d.net(n).wire_cap() - fresh.net(n).wire_cap()).abs() < 1e-9);
        }
    }

    #[test]
    fn bad_header_rejected() {
        let err = read_spef("hello\n").expect_err("must fail");
        assert_eq!(err.line(), 1);
    }

    #[test]
    fn bad_line_rejected() {
        let err = read_spef("*SPEF atlas-lite\nnonsense 5\n").expect_err("must fail");
        assert_eq!(err.line(), 2);
        assert!(err.message().contains("D_NET"));
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn bad_cap_rejected() {
        let err = read_spef("*SPEF atlas-lite\n*D_NET n3 banana\n").expect_err("must fail");
        assert!(err.message().contains("capacitance"));
    }
}
