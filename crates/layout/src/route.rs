//! Congestion-aware global routing.
//!
//! Real flows spend most of their runtime in placement/routing
//! optimization — the cost ATLAS bypasses (paper Table IV). This module
//! implements an honest global router rather than a stopwatch stub:
//! nets are routed over a capacitated grid graph with congestion-aware
//! path search and rip-up-and-reroute, and the *routed* wirelength (not
//! the HPWL lower bound) drives parasitic extraction.
//!
//! Algorithm: for each net, grow a Steiner-ish tree by connecting each
//! terminal to the partial tree with a cheapest path (Dijkstra over grid
//! edges whose cost rises with congestion); after each pass, nets through
//! over-capacity edges are ripped up and rerouted with a stiffer
//! congestion penalty, history-cost style.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use atlas_netlist::Design;
use serde::{Deserialize, Serialize};

use crate::place::Placement;

/// Router parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteConfig {
    /// Grid bin pitch in µm.
    pub bin_um: f64,
    /// Routing tracks per grid edge.
    pub capacity: u32,
    /// Maximum rip-up-and-reroute passes.
    pub max_passes: usize,
    /// Congestion penalty multiplier per unit of overflow.
    pub overflow_penalty: f64,
}

impl Default for RouteConfig {
    fn default() -> RouteConfig {
        RouteConfig {
            bin_um: 4.0,
            capacity: 24,
            max_passes: 3,
            overflow_penalty: 2.0,
        }
    }
}

/// Result of global routing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteResult {
    /// Routed wirelength per net (µm), indexed by net id.
    pub net_length_um: Vec<f64>,
    /// Total routed wirelength (µm).
    pub total_length_um: f64,
    /// Grid edges still over capacity after the final pass.
    pub overflowed_edges: usize,
    /// Passes executed.
    pub passes: usize,
}

/// Grid-edge usage state.
struct Grid {
    w: usize,
    /// Horizontal edges: (w-1) × h, index `y * (w-1) + x`.
    h_use: Vec<u32>,
    /// Vertical edges: w × (h-1), index `y * w + x`.
    v_use: Vec<u32>,
    capacity: u32,
}

impl Grid {
    fn new(w: usize, h: usize, capacity: u32) -> Grid {
        Grid {
            w,
            h_use: vec![0; (w.saturating_sub(1)) * h],
            v_use: vec![0; w * h.saturating_sub(1)],
            capacity,
        }
    }

    /// Cost of crossing an edge given current usage.
    #[inline]
    fn edge_cost(&self, usage: u32, penalty: f64) -> f64 {
        let over = usage.saturating_add(1).saturating_sub(self.capacity) as f64;
        1.0 + penalty * over
    }

    fn overflowed(&self) -> usize {
        self.h_use
            .iter()
            .chain(self.v_use.iter())
            .filter(|&&u| u > self.capacity)
            .count()
    }
}

/// One routed path: grid edges as `(node_a, node_b)` with `a < b`.
type Path = Vec<(u32, u32)>;

/// Route all nets of a placed design.
///
/// # Examples
///
/// ```
/// use atlas_designs::DesignConfig;
/// use atlas_layout::place::place;
/// use atlas_layout::route::{global_route, RouteConfig};
/// use atlas_liberty::Library;
///
/// let d = DesignConfig::tiny().generate();
/// let p = place(&d, &Library::synthetic_40nm(), 0.7);
/// let routed = global_route(&d, &p, &RouteConfig::default());
/// assert!(routed.total_length_um > 0.0);
/// assert_eq!(routed.net_length_um.len(), d.net_count());
/// ```
pub fn global_route(design: &Design, placement: &Placement, cfg: &RouteConfig) -> RouteResult {
    let (die_w, die_h) = placement.die();
    let w = ((die_w / cfg.bin_um).ceil() as usize).max(2);
    let h = ((die_h / cfg.bin_um).ceil() as usize).max(2);
    let mut grid = Grid::new(w, h, cfg.capacity);

    let bin_of = |pos: (f64, f64)| -> u32 {
        let x = ((pos.0 / cfg.bin_um) as usize).min(w - 1);
        let y = ((pos.1 / cfg.bin_um) as usize).min(h - 1);
        (y * w + x) as u32
    };

    // Terminal bins per net (deduped, driver first).
    let mut terminals: Vec<Vec<u32>> = Vec::with_capacity(design.net_count());
    for net in design.net_ids() {
        let n = design.net(net);
        let mut t = Vec::with_capacity(n.fanout() + 1);
        if let Some(d) = n.driver() {
            t.push(bin_of(placement.position(d)));
        }
        for s in n.sinks() {
            t.push(bin_of(placement.position(s.cell)));
        }
        t.sort_unstable();
        t.dedup();
        terminals.push(t);
    }

    let mut paths: Vec<Path> = vec![Vec::new(); design.net_count()];
    let order: Vec<usize> = (0..design.net_count()).collect();

    // Pass 1: route everything. Later passes: rip up and reroute only nets
    // crossing overflowed edges, with an increasing penalty.
    let mut passes = 0;
    for pass in 0..cfg.max_passes {
        passes = pass + 1;
        let penalty = cfg.overflow_penalty * (pass + 1) as f64;
        let reroute: Vec<usize> = if pass == 0 {
            order.clone()
        } else {
            let victims: Vec<usize> = order
                .iter()
                .copied()
                .filter(|&i| path_overflows(&grid, &paths[i]))
                .collect();
            if victims.is_empty() {
                break;
            }
            victims
        };
        for &i in &reroute {
            rip_up(&mut grid, &paths[i]);
            paths[i] = route_net(&grid, &terminals[i], penalty, w, h);
            commit(&mut grid, &paths[i]);
        }
    }

    let mut net_length_um = Vec::with_capacity(design.net_count());
    let mut total = 0.0;
    for (i, path) in paths.iter().enumerate() {
        // Each grid edge is one bin pitch; add a half-pitch pin stub per
        // terminal for the detail-routing share.
        let len = path.len() as f64 * cfg.bin_um
            + terminals[i].len().saturating_sub(1) as f64 * cfg.bin_um * 0.5;
        net_length_um.push(len);
        total += len;
    }

    RouteResult {
        net_length_um,
        total_length_um: total,
        overflowed_edges: grid.overflowed(),
        passes,
    }
}

fn edge_key(a: u32, b: u32) -> (u32, u32) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

fn edge_usage(grid: &mut Grid, a: u32, b: u32) -> &mut u32 {
    let (lo, hi) = edge_key(a, b);
    let (xl, yl) = ((lo as usize) % grid.w, (lo as usize) / grid.w);
    if hi == lo + 1 {
        &mut grid.h_use[yl * (grid.w - 1) + xl]
    } else {
        debug_assert_eq!(hi as usize, lo as usize + grid.w);
        &mut grid.v_use[yl * grid.w + xl]
    }
}

fn edge_usage_ro(grid: &Grid, a: u32, b: u32) -> u32 {
    let (lo, hi) = edge_key(a, b);
    let (xl, yl) = ((lo as usize) % grid.w, (lo as usize) / grid.w);
    if hi == lo + 1 {
        grid.h_use[yl * (grid.w - 1) + xl]
    } else {
        grid.v_use[yl * grid.w + xl]
    }
}

fn rip_up(grid: &mut Grid, path: &Path) {
    for &(a, b) in path {
        let u = edge_usage(grid, a, b);
        *u = u.saturating_sub(1);
    }
}

fn commit(grid: &mut Grid, path: &Path) {
    for &(a, b) in path {
        *edge_usage(grid, a, b) += 1;
    }
}

fn path_overflows(grid: &Grid, path: &Path) -> bool {
    path.iter()
        .any(|&(a, b)| edge_usage_ro(grid, a, b) > grid.capacity)
}

/// Route one net: connect each terminal to the growing tree with a
/// congestion-aware shortest path.
fn route_net(grid: &Grid, terminals: &[u32], penalty: f64, w: usize, h: usize) -> Path {
    if terminals.len() < 2 {
        return Vec::new();
    }
    let n_nodes = w * h;
    let mut in_tree = vec![false; n_nodes];
    in_tree[terminals[0] as usize] = true;
    let mut tree_edges: Path = Vec::new();

    // Scratch buffers reused across searches.
    let mut dist = vec![f64::INFINITY; n_nodes];
    let mut prev = vec![u32::MAX; n_nodes];

    for &target in &terminals[1..] {
        if in_tree[target as usize] {
            continue;
        }
        // Dijkstra from the target until any tree node is reached (the
        // tree is usually larger than the frontier, so searching from the
        // single target is cheaper).
        for d in dist.iter_mut() {
            *d = f64::INFINITY;
        }
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        dist[target as usize] = 0.0;
        heap.push(Reverse((0, target)));
        let mut reached = u32::MAX;
        while let Some(Reverse((dq, node))) = heap.pop() {
            let dq = dq as f64 / 1024.0;
            if dq > dist[node as usize] {
                continue;
            }
            if in_tree[node as usize] {
                reached = node;
                break;
            }
            let x = (node as usize) % w;
            let y = (node as usize) / w;
            let mut push = |nx: usize, ny: usize| {
                let next = (ny * w + nx) as u32;
                let usage = edge_usage_ro(grid, node, next);
                let cost = grid.edge_cost(usage, penalty);
                let nd = dq + cost;
                if nd < dist[next as usize] {
                    dist[next as usize] = nd;
                    prev[next as usize] = node;
                    heap.push(Reverse(((nd * 1024.0) as u64, next)));
                }
            };
            if x + 1 < w {
                push(x + 1, y);
            }
            if x > 0 {
                push(x - 1, y);
            }
            if y + 1 < h {
                push(x, y + 1);
            }
            if y > 0 {
                push(x, y - 1);
            }
        }
        if reached == u32::MAX {
            // Grid is connected, so this cannot happen; keep the net
            // partially routed rather than panicking in release runs.
            debug_assert!(false, "unreachable terminal");
            continue;
        }
        // Walk back from the tree hit to the target, adding nodes/edges.
        let mut cur = reached;
        while cur != target {
            let p = prev[cur as usize];
            tree_edges.push(edge_key(cur, p));
            in_tree[p as usize] = true;
            cur = p;
        }
        in_tree[reached as usize] = true;
    }
    tree_edges.sort_unstable();
    tree_edges.dedup();
    tree_edges
}

#[cfg(test)]
mod tests {
    use atlas_designs::DesignConfig;
    use atlas_liberty::Library;

    use super::*;
    use crate::place::place;

    fn routed() -> (Design, Placement, RouteResult) {
        let d = DesignConfig::tiny().generate();
        let p = place(&d, &Library::synthetic_40nm(), 0.7);
        let r = global_route(&d, &p, &RouteConfig::default());
        (d, p, r)
    }

    #[test]
    fn routed_length_bounds() {
        let (d, p, r) = routed();
        assert_eq!(r.net_length_um.len(), d.net_count());
        let total_hpwl = p.total_wirelength(&d);
        assert!(r.total_length_um >= total_hpwl * 0.9);
        // Routing detours are bounded in a sane design.
        assert!(r.total_length_um < total_hpwl * 5.0 + 1.0);
    }

    #[test]
    fn single_terminal_nets_have_zero_length() {
        let (d, p, r) = routed();
        for net in d.net_ids() {
            let n = d.net(net);
            if n.fanout() == 0 && n.driver().is_none() {
                assert_eq!(r.net_length_um[net.index()], 0.0);
            }
        }
        let _ = p;
    }

    #[test]
    fn congestion_penalty_reduces_overflow() {
        let d = DesignConfig::tiny().generate();
        let p = place(&d, &Library::synthetic_40nm(), 0.7);
        let tight = RouteConfig {
            capacity: 2,
            max_passes: 1,
            ..RouteConfig::default()
        };
        let one_pass = global_route(&d, &p, &tight);
        let multi = RouteConfig {
            capacity: 2,
            max_passes: 5,
            ..RouteConfig::default()
        };
        let rerouted = global_route(&d, &p, &multi);
        assert!(
            rerouted.overflowed_edges <= one_pass.overflowed_edges,
            "rip-up-and-reroute must not increase overflow ({} vs {})",
            rerouted.overflowed_edges,
            one_pass.overflowed_edges
        );
    }

    #[test]
    fn routing_is_deterministic() {
        let d = DesignConfig::tiny().generate();
        let lib = Library::synthetic_40nm();
        let p = place(&d, &lib, 0.7);
        let a = global_route(&d, &p, &RouteConfig::default());
        let b = global_route(&d, &p, &RouteConfig::default());
        assert_eq!(a, b);
    }
}
