//! Clock tree synthesis.
//!
//! Builds a buffered clock distribution network from the clock root to
//! every register/SRAM clock pin: per-sub-module *leaf* buffers (each
//! serving a bounded, placement-local group of clock pins) under a
//! balanced *trunk* of CK-class cells. All inserted cells have class
//! [`CellClass::Clk`] — the paper's `CK` node type — and form the
//! clock-tree power group that simply does not exist in the gate-level
//! netlist (hence Gate-Level PTPX's 100% MAPE on it, Table III).
//!
//! Leaf buffers are assigned to the sub-module whose registers they feed,
//! so per-sub-module clock-tree power labels are well-defined; trunk cells
//! live in a dedicated `cts.trunk` sub-module whose power the power engine
//! redistributes pro-rata by register count.

use std::collections::HashMap;

use atlas_liberty::{CellClass, Drive};
use atlas_netlist::{Design, NetId, Sink, SubmoduleId};

use crate::place::Placement;

/// Statistics from clock tree synthesis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CtsStats {
    /// Leaf CK buffers (drive register clock pins directly).
    pub leaf_cells: usize,
    /// Trunk CK cells (including the root buffer).
    pub trunk_cells: usize,
    /// Tree depth from root buffer to leaves.
    pub levels: usize,
}

/// The name of the sub-module holding trunk clock cells.
pub const TRUNK_SUBMODULE: &str = "cts.trunk";

/// The component name given to the trunk sub-module.
pub const TRUNK_COMPONENT: &str = "cts";

struct Cluster {
    children: Vec<Cluster>,
    sinks: Vec<Sink>,
    pos: (f64, f64),
    submodule: Option<SubmoduleId>,
}

/// Synthesize the clock tree. No-op (returns zeros) on designs without a
/// clock or without clocked cells.
///
/// # Examples
///
/// ```
/// use atlas_designs::DesignConfig;
/// use atlas_layout::cts::synthesize_clock_tree;
/// use atlas_layout::place::place;
/// use atlas_liberty::{CellClass, Library};
///
/// let mut d = DesignConfig::tiny().generate();
/// let lib = Library::synthetic_40nm();
/// let mut p = place(&d, &lib, 0.7);
/// let stats = synthesize_clock_tree(&mut d, &mut p, 12, 4);
/// assert!(stats.leaf_cells > 0);
/// assert!(d.cells().iter().any(|c| c.class() == CellClass::Clk));
/// ```
pub fn synthesize_clock_tree(
    design: &mut Design,
    placement: &mut Placement,
    leaf_fanout: usize,
    branch: usize,
) -> CtsStats {
    assert!(leaf_fanout >= 1 && branch >= 2, "bad CTS parameters");
    let Some(clock_root) = design.clock() else {
        return CtsStats::default();
    };
    let clock_sinks: Vec<Sink> = design.net(clock_root).sinks().to_vec();
    if clock_sinks.is_empty() {
        return CtsStats::default();
    }

    // Group clock pins by the sub-module of their cell.
    let mut by_sm: HashMap<usize, Vec<Sink>> = HashMap::new();
    for s in &clock_sinks {
        by_sm
            .entry(design.cell(s.cell).submodule().index())
            .or_default()
            .push(*s);
    }
    let mut sm_ids: Vec<usize> = by_sm.keys().copied().collect();
    sm_ids.sort_unstable();

    // Leaf clusters: placement-local chunks of each sub-module's pins.
    let mut leaves: Vec<Cluster> = Vec::new();
    for sm in sm_ids {
        let mut sinks = by_sm.remove(&sm).expect("key exists");
        sinks.sort_by(|a, b| {
            let pa = placement.position(a.cell);
            let pb = placement.position(b.cell);
            (pa.0 + pa.1)
                .partial_cmp(&(pb.0 + pb.1))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cell.cmp(&b.cell))
        });
        for group in sinks.chunks(leaf_fanout) {
            leaves.push(Cluster {
                children: Vec::new(),
                sinks: group.to_vec(),
                pos: centroid(placement, group),
                submodule: Some(SubmoduleId::from_index(sm)),
            });
        }
    }

    // Balanced trunk: repeatedly merge `branch` neighboring clusters.
    let mut level: Vec<Cluster> = leaves;
    let mut levels = 1usize;
    while level.len() > branch {
        level.sort_by(|a, b| {
            (a.pos.0 + a.pos.1)
                .partial_cmp(&(b.pos.0 + b.pos.1))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut next = Vec::with_capacity(level.len().div_ceil(branch));
        let mut iter = level.into_iter().peekable();
        while iter.peek().is_some() {
            let group: Vec<Cluster> = iter.by_ref().take(branch).collect();
            let pos = avg_pos(&group);
            next.push(Cluster {
                children: group,
                sinks: Vec::new(),
                pos,
                submodule: None,
            });
        }
        level = next;
        levels += 1;
    }
    let root = Cluster {
        pos: avg_pos(&level),
        children: level,
        sinks: Vec::new(),
        submodule: None,
    };

    let trunk_sm = design.add_submodule(TRUNK_SUBMODULE, TRUNK_COMPONENT);
    let mut stats = CtsStats {
        levels: levels + 1,
        ..CtsStats::default()
    };
    emit(
        design,
        placement,
        &root,
        clock_root,
        clock_root,
        trunk_sm,
        Drive::X8,
        &mut stats,
    );
    stats
}

/// Recursively instantiate the CK cell for `cluster`, driven by
/// `parent_net`, moving register clock pins off `clock_root` at leaves.
#[allow(clippy::too_many_arguments)]
fn emit(
    design: &mut Design,
    placement: &mut Placement,
    cluster: &Cluster,
    parent_net: NetId,
    clock_root: NetId,
    trunk_sm: SubmoduleId,
    drive: Drive,
    stats: &mut CtsStats,
) {
    let out = design.add_net();
    let sm = cluster.submodule.unwrap_or(trunk_sm);
    let cell = design.insert_cell(
        CellClass::Clk,
        drive,
        &[parent_net],
        out,
        None,
        None,
        sm,
        None,
    );
    placement.set_position(cell, cluster.pos);
    if cluster.children.is_empty() {
        design.move_sinks(clock_root, out, &cluster.sinks);
        stats.leaf_cells += 1;
    } else {
        stats.trunk_cells += 1;
        for child in &cluster.children {
            let child_drive = if child.children.is_empty() {
                Drive::X2
            } else {
                Drive::X4
            };
            emit(
                design,
                placement,
                child,
                out,
                clock_root,
                trunk_sm,
                child_drive,
                stats,
            );
        }
    }
}

fn centroid(placement: &Placement, sinks: &[Sink]) -> (f64, f64) {
    let mut x = 0.0;
    let mut y = 0.0;
    for s in sinks {
        let p = placement.position(s.cell);
        x += p.0;
        y += p.1;
    }
    let n = sinks.len().max(1) as f64;
    (x / n, y / n)
}

fn avg_pos(clusters: &[Cluster]) -> (f64, f64) {
    let mut x = 0.0;
    let mut y = 0.0;
    for c in clusters {
        x += c.pos.0;
        y += c.pos.1;
    }
    let n = clusters.len().max(1) as f64;
    (x / n, y / n)
}

#[cfg(test)]
mod tests {
    use atlas_designs::DesignConfig;
    use atlas_liberty::Library;
    use atlas_netlist::SinkPin;
    use atlas_sim::{PhasedWorkload, Simulator};

    use super::*;
    use crate::place::place;

    fn with_cts() -> (Design, CtsStats) {
        let mut d = DesignConfig::tiny().generate();
        let lib = Library::synthetic_40nm();
        let mut p = place(&d, &lib, 0.7);
        let stats = synthesize_clock_tree(&mut d, &mut p, 12, 4);
        (d, stats)
    }

    #[test]
    fn clock_root_drives_only_the_root_buffer() {
        let (d, _) = with_cts();
        let root = d.clock().expect("clocked design");
        let sinks = d.net(root).sinks();
        assert_eq!(
            sinks.len(),
            1,
            "root should feed exactly the root CK buffer"
        );
        assert_eq!(d.cell(sinks[0].cell).class(), CellClass::Clk);
    }

    #[test]
    fn every_register_reached_from_root() {
        let (d, _) = with_cts();
        // BFS through CK cells from the clock root; every sequential cell's
        // clock pin must be reachable.
        let root = d.clock().expect("clocked design");
        let mut frontier = vec![root];
        let mut clocked = std::collections::HashSet::new();
        while let Some(net) = frontier.pop() {
            for s in d.net(net).sinks() {
                let cell = d.cell(s.cell);
                match s.pin {
                    SinkPin::Clock => {
                        clocked.insert(s.cell);
                    }
                    _ if cell.class() == CellClass::Clk => frontier.push(cell.output()),
                    _ => {}
                }
            }
        }
        for id in d.cell_ids() {
            if d.cell(id).is_sequential() {
                assert!(clocked.contains(&id), "cell {id} lost its clock");
            }
        }
    }

    #[test]
    fn leaf_fanout_bounded() {
        let (d, stats) = with_cts();
        assert!(stats.leaf_cells > 0);
        for id in d.cell_ids() {
            let cell = d.cell(id);
            if cell.class() == CellClass::Clk {
                let fanout = d.net(cell.output()).fanout();
                assert!(fanout <= 12, "CK cell {id} drives {fanout} pins");
            }
        }
    }

    #[test]
    fn leaf_cells_belong_to_register_submodules() {
        let (d, _) = with_cts();
        let mut leaf_in_reg_sm = 0usize;
        let mut trunk = 0usize;
        for id in d.cell_ids() {
            let cell = d.cell(id);
            if cell.class() != CellClass::Clk {
                continue;
            }
            let sm = d.submodule(cell.submodule());
            if sm.name() == TRUNK_SUBMODULE {
                trunk += 1;
            } else {
                leaf_in_reg_sm += 1;
            }
        }
        assert!(
            leaf_in_reg_sm > trunk,
            "leaves should outnumber trunk cells"
        );
    }

    #[test]
    fn cts_preserves_function() {
        let gate = DesignConfig::tiny().generate();
        let (d, _) = with_cts();
        let mut sim_a = Simulator::new(&gate).expect("levelizes");
        let mut sim_b = Simulator::new(&d).expect("levelizes");
        let mut stim_a = PhasedWorkload::w2(3);
        let mut stim_b = PhasedWorkload::w2(3);
        for _ in 0..48 {
            sim_a.step(&mut stim_a);
            sim_b.step(&mut stim_b);
            for (&pa, &pb) in gate.primary_outputs().iter().zip(d.primary_outputs()) {
                assert_eq!(sim_a.net_value(pa), sim_b.net_value(pb));
            }
        }
    }

    #[test]
    fn validates_after_cts() {
        let (d, stats) = with_cts();
        assert!(d.validate().is_empty());
        assert!(stats.levels >= 2);
        let ck_count = d
            .cells()
            .iter()
            .filter(|c| c.class() == CellClass::Clk)
            .count();
        assert_eq!(ck_count, stats.leaf_cells + stats.trunk_cells);
    }
}
