//! Histogram-split regression trees.

use serde::{Deserialize, Serialize};

/// Per-feature quantile bin edges used during training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct Binning {
    /// Sorted cut values per feature.
    edges: Vec<Vec<f64>>,
}

impl Binning {
    /// Quantile-based edges from the training data.
    pub(crate) fn from_data(x: &[f64], n_features: usize, bins: usize) -> Binning {
        let n = x.len() / n_features.max(1);
        let mut edges = Vec::with_capacity(n_features);
        for f in 0..n_features {
            let mut vals: Vec<f64> = (0..n).map(|i| x[i * n_features + f]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let mut cuts = Vec::new();
            for b in 1..bins {
                let idx = (b * n) / bins;
                if idx == 0 || idx >= n {
                    continue;
                }
                let v = vals[idx];
                if cuts.last().map(|&last: &f64| v > last).unwrap_or(true) {
                    cuts.push(v);
                }
            }
            edges.push(cuts);
        }
        Binning { edges }
    }

    /// Bin index of a value: the number of edges `< v`.
    #[inline]
    pub(crate) fn bin(&self, feature: usize, value: f64) -> u8 {
        self.edges[feature].partition_point(|&e| e < value) as u8
    }

    /// Bin every value of a row-major matrix.
    pub(crate) fn bin_all(&self, x: &[f64], n_features: usize) -> Vec<u8> {
        x.chunks(n_features)
            .flat_map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(f, &v)| self.bin(f, v))
                    .collect::<Vec<u8>>()
            })
            .collect()
    }

    /// Real-valued threshold of a split "bin ≤ b": the next edge value.
    /// Returns `None` if `b` has no edge above it (can't split there).
    fn threshold(&self, feature: usize, b: usize) -> Option<f64> {
        self.edges[feature].get(b).copied()
    }

    fn bin_count(&self, feature: usize) -> usize {
        self.edges[feature].len() + 1
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Split {
        feature: u32,
        /// Raw-value threshold: go left when `value <= threshold`.
        threshold: f64,
        /// Equivalent binned threshold: go left when `bin < bin_cut`.
        bin_cut: u8,
        left: u32,
        right: u32,
    },
    Leaf(f64),
}

/// One regression tree of a boosted ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    /// Fit a tree to `targets` (residuals) by greedy histogram splitting.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn fit(
        binned: &[u8],
        binning: &Binning,
        n_features: usize,
        targets: &[f64],
        rows: &[u32],
        cols: &[u32],
        max_depth: usize,
        min_leaf: usize,
    ) -> Tree {
        let mut tree = Tree { nodes: Vec::new() };
        let mut indices: Vec<u32> = rows.to_vec();
        let len = indices.len();
        tree.build(
            binned,
            binning,
            n_features,
            targets,
            cols,
            max_depth,
            min_leaf,
            &mut indices,
            0,
            len,
            0,
        );
        tree
    }

    /// Build the subtree over `indices[start..end]`; returns the node id.
    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        binned: &[u8],
        binning: &Binning,
        n_features: usize,
        targets: &[f64],
        cols: &[u32],
        max_depth: usize,
        min_leaf: usize,
        indices: &mut Vec<u32>,
        start: usize,
        end: usize,
        depth: usize,
    ) -> u32 {
        let n = end - start;
        let sum: f64 = indices[start..end]
            .iter()
            .map(|&i| targets[i as usize])
            .sum();
        let mean = sum / n as f64;
        if depth >= max_depth || n < 2 * min_leaf {
            return self.push(Node::Leaf(mean));
        }

        // Best histogram split over the sampled columns.
        let mut best: Option<(u32, u8, f64)> = None; // (feature, bin_cut, gain)
        let parent_score = sum * sum / n as f64;
        for &f in cols {
            let f = f as usize;
            let nbins = binning.bin_count(f);
            if nbins < 2 {
                continue;
            }
            let mut count = vec![0usize; nbins];
            let mut tsum = vec![0.0f64; nbins];
            for &i in &indices[start..end] {
                let b = binned[i as usize * n_features + f] as usize;
                count[b] += 1;
                tsum[b] += targets[i as usize];
            }
            let mut nl = 0usize;
            let mut sl = 0.0;
            for cut in 0..nbins - 1 {
                nl += count[cut];
                sl += tsum[cut];
                let nr = n - nl;
                if nl < min_leaf || nr < min_leaf {
                    continue;
                }
                let sr = sum - sl;
                let gain = sl * sl / nl as f64 + sr * sr / nr as f64 - parent_score;
                if gain > 1e-12 && best.map(|(_, _, g)| gain > g).unwrap_or(true) {
                    best = Some((f as u32, (cut + 1) as u8, gain));
                }
            }
        }

        let Some((feature, bin_cut, _)) = best else {
            return self.push(Node::Leaf(mean));
        };
        let threshold = binning
            .threshold(feature as usize, bin_cut as usize - 1)
            .expect("a winning cut always has an edge");

        // Partition indices[start..end] in place: left = bin < bin_cut.
        let mut mid = start;
        for i in start..end {
            let b = binned[indices[i] as usize * n_features + feature as usize];
            if b < bin_cut {
                indices.swap(i, mid);
                mid += 1;
            }
        }
        debug_assert!(mid > start && mid < end);

        let id = self.push(Node::Leaf(0.0)); // placeholder, patched below
        let left = self.build(
            binned,
            binning,
            n_features,
            targets,
            cols,
            max_depth,
            min_leaf,
            indices,
            start,
            mid,
            depth + 1,
        );
        let right = self.build(
            binned,
            binning,
            n_features,
            targets,
            cols,
            max_depth,
            min_leaf,
            indices,
            mid,
            end,
            depth + 1,
        );
        self.nodes[id as usize] = Node::Split {
            feature,
            threshold,
            bin_cut,
            left,
            right,
        };
        id
    }

    fn push(&mut self, node: Node) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(node);
        id
    }

    /// Evaluate on raw feature values.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    cur = if row[*feature as usize] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Evaluate on a pre-binned row (training fast path).
    pub(crate) fn predict_binned(&self, row_bins: &[u8]) -> f64 {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    bin_cut,
                    left,
                    right,
                    ..
                } => {
                    cur = if row_bins[*feature as usize] < *bin_cut {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Accumulate per-feature split counts.
    pub fn count_splits(&self, counts: &mut [usize]) {
        for node in &self.nodes {
            if let Node::Split { feature, .. } = node {
                counts[*feature as usize] += 1;
            }
        }
    }

    /// Number of nodes (splits + leaves).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum depth of the tree.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], id: usize) -> usize {
            match &nodes[id] {
                Node::Leaf(_) => 0,
                Node::Split { left, right, .. } => {
                    1 + walk(nodes, *left as usize).max(walk(nodes, *right as usize))
                }
            }
        }
        walk(&self.nodes, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit_simple(max_depth: usize) -> (Tree, Binning, Vec<f64>) {
        // Step function: y = 1 when x >= 10.
        let x: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..40).map(|i| if i >= 10 { 1.0 } else { 0.0 }).collect();
        let binning = Binning::from_data(&x, 1, 16);
        let binned = binning.bin_all(&x, 1);
        let rows: Vec<u32> = (0..40).collect();
        let tree = Tree::fit(&binned, &binning, 1, &y, &rows, &[0], max_depth, 1);
        (tree, binning, x)
    }

    #[test]
    fn learns_step_function() {
        let (tree, _, _) = fit_simple(4);
        assert!(tree.predict(&[3.0]) < 0.2);
        assert!(tree.predict(&[30.0]) > 0.8);
    }

    #[test]
    fn respects_max_depth() {
        let (tree, _, _) = fit_simple(2);
        assert!(tree.depth() <= 2);
        let (deep, _, _) = fit_simple(6);
        assert!(deep.depth() <= 6);
    }

    #[test]
    fn binned_and_raw_prediction_agree() {
        let (tree, binning, x) = fit_simple(4);
        for &v in &x {
            let raw = tree.predict(&[v]);
            let binned = tree.predict_binned(&[binning.bin(0, v)]);
            assert_eq!(raw, binned, "disagree at {v}");
        }
    }

    #[test]
    fn binning_is_monotone() {
        let x: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let binning = Binning::from_data(&x, 1, 8);
        let mut sorted = x.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let mut prev = 0u8;
        for v in sorted {
            let b = binning.bin(0, v);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn constant_feature_yields_leaf() {
        let x = vec![5.0; 30];
        let y: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let binning = Binning::from_data(&x, 1, 8);
        let binned = binning.bin_all(&x, 1);
        let rows: Vec<u32> = (0..30).collect();
        let tree = Tree::fit(&binned, &binning, 1, &y, &rows, &[0], 4, 1);
        assert_eq!(tree.depth(), 0);
        assert!((tree.predict(&[5.0]) - 14.5).abs() < 1e-9);
    }
}
