//! Gradient-boosted regression trees — the XGBoost substitute.
//!
//! The paper fine-tunes three lightweight power heads (`F_CT`, `F_Comb`,
//! `F_Reg`) with XGBoost (500 estimators, depth 5, §VI-A). This crate
//! implements the same model family: squared-loss gradient boosting over
//! histogram-split regression trees, with row/column subsampling.
//!
//! # Examples
//!
//! ```
//! use atlas_gbdt::{Gbdt, GbdtConfig};
//!
//! // y = 2·x₀ + x₁
//! let x: Vec<f64> = (0..200).flat_map(|i| [i as f64 / 100.0, (i % 7) as f64]).collect();
//! let y: Vec<f64> = x.chunks(2).map(|r| 2.0 * r[0] + r[1]).collect();
//! let model = Gbdt::fit(&x, 2, &y, &GbdtConfig::default());
//! let pred = model.predict(&[0.5, 3.0]);
//! assert!((pred - 4.0).abs() < 0.5);
//! ```

mod tree;

use serde::{Deserialize, Serialize};
pub use tree::Tree;

use rand::RngCore;

/// Training hyperparameters (defaults match the paper's XGBoost setup
/// where given: depth 5; estimator count is lowered from 500 to 200 for
/// CPU-friendly training — configurable).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GbdtConfig {
    /// Boosting rounds.
    pub n_estimators: usize,
    /// Maximum tree depth (paper: 5).
    pub max_depth: usize,
    /// Shrinkage per round.
    pub learning_rate: f64,
    /// Minimum samples in a leaf.
    pub min_samples_leaf: usize,
    /// Fraction of rows sampled per tree.
    pub subsample: f64,
    /// Fraction of features considered per tree.
    pub colsample: f64,
    /// Histogram bins per feature.
    pub bins: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for GbdtConfig {
    fn default() -> GbdtConfig {
        GbdtConfig {
            n_estimators: 200,
            max_depth: 5,
            learning_rate: 0.1,
            min_samples_leaf: 4,
            subsample: 0.9,
            colsample: 0.9,
            bins: 32,
            seed: 1,
        }
    }
}

impl GbdtConfig {
    /// The paper's exact fine-tuning setup: 500 estimators, depth 5.
    pub fn paper() -> GbdtConfig {
        GbdtConfig {
            n_estimators: 500,
            ..GbdtConfig::default()
        }
    }
}

/// A trained boosted ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gbdt {
    base: f64,
    learning_rate: f64,
    n_features: usize,
    trees: Vec<Tree>,
}

impl Gbdt {
    /// Fit on row-major features `x` (`y.len()` rows × `n_features`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != y.len() * n_features`, if `y` is empty, or if
    /// the configuration is degenerate (zero estimators/depth/bins).
    pub fn fit(x: &[f64], n_features: usize, y: &[f64], cfg: &GbdtConfig) -> Gbdt {
        assert!(!y.is_empty(), "training set is empty");
        assert_eq!(
            x.len(),
            y.len() * n_features,
            "feature matrix shape mismatch"
        );
        assert!(
            cfg.n_estimators > 0 && cfg.max_depth > 0 && cfg.bins >= 2,
            "degenerate configuration"
        );
        let n = y.len();
        let base = y.iter().sum::<f64>() / n as f64;
        let mut pred = vec![base; n];
        let mut rng = atlas_rng(cfg.seed);
        let binning = tree::Binning::from_data(x, n_features, cfg.bins);
        let binned = binning.bin_all(x, n_features);

        let mut trees = Vec::with_capacity(cfg.n_estimators);
        let mut residual = vec![0.0; n];
        for round in 0..cfg.n_estimators {
            for i in 0..n {
                residual[i] = y[i] - pred[i];
            }
            // Row subsample.
            let rows: Vec<u32> = if cfg.subsample >= 1.0 {
                (0..n as u32).collect()
            } else {
                (0..n as u32)
                    .filter(|_| chance(&mut rng, cfg.subsample))
                    .collect()
            };
            let rows = if rows.is_empty() { vec![0] } else { rows };
            // Column subsample.
            let cols: Vec<u32> = if cfg.colsample >= 1.0 {
                (0..n_features as u32).collect()
            } else {
                let picked: Vec<u32> = (0..n_features as u32)
                    .filter(|_| chance(&mut rng, cfg.colsample))
                    .collect();
                if picked.is_empty() {
                    vec![(round % n_features) as u32]
                } else {
                    picked
                }
            };
            let tree = Tree::fit(
                &binned,
                &binning,
                n_features,
                &residual,
                &rows,
                &cols,
                cfg.max_depth,
                cfg.min_samples_leaf,
            );
            for i in 0..n {
                pred[i] += cfg.learning_rate
                    * tree.predict_binned(&binned[i * n_features..(i + 1) * n_features]);
            }
            trees.push(tree);
        }
        Gbdt {
            base,
            learning_rate: cfg.learning_rate,
            n_features,
            trees,
        }
    }

    /// Predict one row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != n_features`.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.n_features, "feature width mismatch");
        let mut acc = self.base;
        for t in &self.trees {
            acc += self.learning_rate * t.predict(row);
        }
        acc
    }

    /// Predict many rows at once.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` is not a multiple of the feature width.
    pub fn predict_batch(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len() % self.n_features, 0, "ragged batch");
        x.chunks(self.n_features)
            .map(|row| self.predict(row))
            .collect()
    }

    /// Number of boosted trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Feature width the model expects.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Split counts per feature — a crude importance measure.
    pub fn feature_importance(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_features];
        for t in &self.trees {
            t.count_splits(&mut counts);
        }
        counts
    }
}

/// Minimal xoshiro-based RNG (same family as the rest of the workspace).
fn atlas_rng(seed: u64) -> impl RngCore {
    struct R([u64; 4]);
    impl RngCore for R {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.0;
            let r = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            r
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
    let mut sm = seed;
    let mut next = || {
        sm = sm.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = sm;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    R([next(), next(), next(), next()])
}

fn chance(rng: &mut impl RngCore, p: f64) -> bool {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> (Vec<f64>, Vec<f64>) {
        // Two features on a grid.
        let mut x = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let a = (i % 20) as f64 / 20.0;
            let b = (i / 20) as f64 / (n as f64 / 20.0);
            x.push(a);
            x.push(b);
            y.push(3.0 * a - 2.0 * b + 0.5);
        }
        (x, y)
    }

    #[test]
    fn fits_linear_function() {
        let (x, y) = grid(400);
        let model = Gbdt::fit(&x, 2, &y, &GbdtConfig::default());
        let preds = model.predict_batch(&x);
        let mse: f64 = preds
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.len() as f64;
        assert!(mse < 0.01, "mse={mse}");
    }

    #[test]
    fn fits_interaction() {
        // y = x0 XOR-ish interaction: needs depth ≥ 2.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..300 {
            let a = (i % 2) as f64;
            let b = ((i / 2) % 2) as f64;
            x.push(a + 0.001 * (i as f64 % 7.0));
            x.push(b);
            y.push(if (a > 0.5) != (b > 0.5) { 1.0 } else { 0.0 });
        }
        let model = Gbdt::fit(&x, 2, &y, &GbdtConfig::default());
        for (row, t) in x.chunks(2).zip(&y).take(20) {
            assert!((model.predict(row) - t).abs() < 0.25);
        }
    }

    #[test]
    fn deterministic() {
        let (x, y) = grid(100);
        let a = Gbdt::fit(&x, 2, &y, &GbdtConfig::default());
        let b = Gbdt::fit(&x, 2, &y, &GbdtConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn constant_target_yields_base_prediction() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y = vec![7.5; 50];
        let model = Gbdt::fit(&x, 1, &y, &GbdtConfig::default());
        assert!((model.predict(&[25.0]) - 7.5).abs() < 1e-9);
    }

    #[test]
    fn batch_matches_single() {
        let (x, y) = grid(100);
        let model = Gbdt::fit(&x, 2, &y, &GbdtConfig::default());
        let batch = model.predict_batch(&x[..20]);
        for (i, row) in x[..20].chunks(2).enumerate() {
            assert_eq!(batch[i], model.predict(row));
        }
    }

    #[test]
    fn importance_identifies_informative_feature() {
        // Feature 0 carries all signal; feature 1 is noise.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..400 {
            let a = (i % 40) as f64;
            x.push(a);
            x.push(((i * 7919) % 13) as f64);
            y.push(a * a);
        }
        let model = Gbdt::fit(&x, 2, &y, &GbdtConfig::default());
        let imp = model.feature_importance();
        assert!(imp[0] > imp[1], "importance {imp:?}");
    }

    #[test]
    fn serde_roundtrip() {
        let (x, y) = grid(60);
        let model = Gbdt::fit(
            &x,
            2,
            &y,
            &GbdtConfig {
                n_estimators: 10,
                ..GbdtConfig::default()
            },
        );
        let json = serde_json::to_string(&model).expect("serializes");
        let back: Gbdt = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(model, back);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let _ = Gbdt::fit(&[1.0, 2.0, 3.0], 2, &[1.0], &GbdtConfig::default());
    }

    #[test]
    fn paper_config() {
        let cfg = GbdtConfig::paper();
        assert_eq!(cfg.n_estimators, 500);
        assert_eq!(cfg.max_depth, 5);
    }
}
