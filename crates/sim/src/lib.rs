//! Cycle-accurate gate-level logic simulation — the VCS substitute.
//!
//! The paper obtains per-cycle switching activity by simulating workloads
//! with Synopsys VCS and dumping `.fsdb`/`.vcd`. This crate provides the
//! equivalent code path: a deterministic, zero-delay, cycle-based two-value
//! simulator over the [`atlas_netlist::Design`] IR, phase-structured
//! workload generators ([`PhasedWorkload`] presets `W1`/`W2`), a per-cycle
//! per-net [`ToggleTrace`], and a VCD-lite dumper.
//!
//! Modeling notes:
//!
//! * **Zero-delay, cycle-based**: each cycle settles combinational logic in
//!   levelized order; a node "toggles" in a cycle when its settled output
//!   differs from the previous cycle. Glitch power is not modeled (the same
//!   simplification made by most activity-based power flows).
//! * **Clock network**: clock nets are not simulated as data. Clock-tree
//!   and register clock-pin activity is accounted analytically by
//!   `atlas-power` (the clock toggles every cycle by construction).
//! * **SRAM**: macros update a one-bit state digest on writes and expose a
//!   deterministic read digest, so downstream logic sees realistic toggles
//!   and the power engine sees exact per-cycle access counts.
//!
//! # Examples
//!
//! ```
//! use atlas_liberty::{CellClass, Drive};
//! use atlas_netlist::NetlistBuilder;
//! use atlas_sim::{simulate, PhasedWorkload};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // An inverter loop through a register toggles every cycle.
//! let mut b = NetlistBuilder::new("toggler");
//! let sm = b.add_submodule("top.t", "top");
//! let q = b.new_net();
//! let nq = b.add_cell(CellClass::Inv, Drive::X1, &[q], sm)?;
//! b.add_dff_onto(q, nq, sm)?;
//! b.mark_output(q);
//! let design = b.finish()?;
//!
//! let mut workload = PhasedWorkload::w1(1);
//! let trace = simulate(&design, &mut workload, 32)?;
//! assert_eq!(trace.cycles(), 32);
//! # Ok(())
//! # }
//! ```

mod bitgrid;
mod simulator;
mod stimulus;
mod trace;
mod vcd;

pub use bitgrid::BitGrid;
pub use simulator::{simulate, SimError, Simulator};
pub use stimulus::{
    schedule_fingerprint, ConstantWorkload, PhasedWorkload, Stimulus, VectorStimulus, WorkloadPhase,
};
pub use trace::ToggleTrace;
pub use vcd::write_vcd;
