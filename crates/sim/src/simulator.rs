//! The cycle-based simulation engine.

use std::fmt;

use atlas_liberty::CellClass;
use atlas_netlist::{logic, topo, CellId, Design, NetId};

use crate::bitgrid::BitGrid;
use crate::stimulus::Stimulus;
use crate::trace::ToggleTrace;

/// Error produced when a design cannot be simulated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The design contains a register-free combinational loop.
    CombinationalCycle(CellId),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CombinationalCycle(c) => {
                write!(f, "cannot levelize: combinational cycle through cell {c}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A reusable stepping simulator over one design.
///
/// Most callers want the one-shot [`simulate`]; `Simulator` exists for
/// incremental stepping (VCD dumping, interactive debugging).
///
/// # Examples
///
/// ```
/// use atlas_liberty::{CellClass, Drive};
/// use atlas_netlist::NetlistBuilder;
/// use atlas_sim::{Simulator, VectorStimulus, Stimulus};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("and");
/// let sm = b.add_submodule("t.u", "t");
/// let a = b.add_input();
/// let c = b.add_input();
/// let y = b.add_cell(CellClass::And2, Drive::X1, &[a, c], sm)?;
/// b.mark_output(y);
/// let d = b.finish()?;
///
/// let mut sim = Simulator::new(&d)?;
/// let mut stim = VectorStimulus::new(vec![vec![true, true]], 0);
/// sim.step(&mut stim);
/// assert!(sim.net_value(y));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator<'a> {
    design: &'a Design,
    order: Vec<CellId>,
    values: Vec<bool>,
    prev_values: Vec<bool>,
    /// Next-cycle output value for each sequential cell (by cell index).
    reg_next: Vec<bool>,
    /// One-bit state digest per SRAM cell (by cell index).
    sram_state: Vec<bool>,
    inputs_buf: Vec<bool>,
    cycle: usize,
    /// SRAM cells in trace index order, with their per-step access flags.
    sram_cells: Vec<CellId>,
    sram_access: Vec<(bool, bool)>,
}

impl<'a> Simulator<'a> {
    /// Prepare a simulator (levelizes the design once).
    ///
    /// # Errors
    ///
    /// [`SimError::CombinationalCycle`] if the design has a register-free
    /// loop.
    pub fn new(design: &'a Design) -> Result<Simulator<'a>, SimError> {
        let order = topo::levelize(design).map_err(SimError::CombinationalCycle)?;
        let sram_cells: Vec<CellId> = design
            .cell_ids()
            .filter(|&id| design.cell(id).class() == CellClass::Sram)
            .collect();
        Ok(Simulator {
            design,
            order,
            values: vec![false; design.net_count()],
            prev_values: vec![false; design.net_count()],
            reg_next: vec![false; design.cell_count()],
            sram_state: vec![false; design.cell_count()],
            inputs_buf: vec![false; design.primary_inputs().len()],
            cycle: 0,
            sram_access: vec![(false, false); sram_cells.len()],
            sram_cells,
        })
    }

    /// The design under simulation.
    pub fn design(&self) -> &Design {
        self.design
    }

    /// Current cycle count (number of completed steps).
    pub fn cycle(&self) -> usize {
        self.cycle
    }

    /// Settled value of a net after the last step.
    pub fn net_value(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// SRAM cells in access-tracking order.
    pub fn sram_cells(&self) -> &[CellId] {
        &self.sram_cells
    }

    /// (read, write) flags of SRAM `idx` during the last step.
    pub fn sram_access(&self, idx: usize) -> (bool, bool) {
        self.sram_access[idx]
    }

    /// Advance one clock cycle: latch register outputs, apply stimulus,
    /// settle combinational logic, and compute next state.
    pub fn step(&mut self, stimulus: &mut dyn Stimulus) {
        let design = self.design;

        // 1. Clock edge: sequential outputs take their latched next values.
        for id in design.cell_ids() {
            let cell = design.cell(id);
            if cell.class().is_sequential() {
                self.values[cell.output().index()] = self.reg_next[id.index()];
            }
        }

        // 2. Primary inputs for this cycle.
        stimulus.apply(self.cycle, &mut self.inputs_buf);
        for (&net, &v) in design.primary_inputs().iter().zip(&self.inputs_buf) {
            self.values[net.index()] = v;
        }
        if let Some(rst) = design.reset() {
            self.values[rst.index()] = stimulus.reset_active(self.cycle);
        }

        // 3. Settle combinational logic in levelized order.
        let mut in_vals: Vec<bool> = Vec::with_capacity(4);
        for &id in &self.order {
            let cell = design.cell(id);
            in_vals.clear();
            in_vals.extend(cell.inputs().iter().map(|&n| self.values[n.index()]));
            let out = logic::eval(cell.class(), &in_vals)
                .expect("levelized order contains only combinational cells");
            self.values[cell.output().index()] = out;
        }

        // 4. Latch next state for sequential cells.
        for (sidx, &id) in self.sram_cells.iter().enumerate() {
            let cell = design.cell(id);
            let ren = self.values[cell.inputs()[0].index()];
            let wen = self.values[cell.inputs()[1].index()];
            let addr = self.values[cell.inputs()[2].index()];
            let data = self.values[cell.inputs()[3].index()];
            if wen {
                self.sram_state[id.index()] = data;
            }
            self.reg_next[id.index()] = if ren {
                addr ^ self.sram_state[id.index()]
            } else {
                self.values[cell.output().index()]
            };
            self.sram_access[sidx] = (ren, wen);
        }
        for id in design.cell_ids() {
            let cell = design.cell(id);
            match cell.class() {
                CellClass::Dff => {
                    self.reg_next[id.index()] = self.values[cell.inputs()[0].index()];
                }
                CellClass::Dffr => {
                    let rst = cell
                        .reset()
                        .map(|r| self.values[r.index()])
                        .unwrap_or(false);
                    self.reg_next[id.index()] = !rst && self.values[cell.inputs()[0].index()];
                }
                _ => {}
            }
        }

        self.cycle += 1;
    }

    /// Record this step's toggles against the previous settled state, then
    /// roll the state forward. Returns the number of toggled nets.
    fn record_toggles(&mut self, grid: &mut BitGrid, row: usize) -> usize {
        let mut count = 0;
        for (i, (&cur, prev)) in self
            .values
            .iter()
            .zip(self.prev_values.iter_mut())
            .enumerate()
        {
            if cur != *prev {
                grid.set(row, i, true);
                count += 1;
            }
            *prev = cur;
        }
        count
    }
}

/// Simulate `cycles` cycles of `stimulus` on `design` and collect the
/// per-cycle [`ToggleTrace`].
///
/// # Errors
///
/// [`SimError::CombinationalCycle`] if the design cannot be levelized.
pub fn simulate(
    design: &Design,
    stimulus: &mut dyn Stimulus,
    cycles: usize,
) -> Result<ToggleTrace, SimError> {
    let mut sim = Simulator::new(design)?;
    let mut net_toggles = BitGrid::new(cycles, design.net_count());
    let n_sram = sim.sram_cells.len();
    let mut sram_reads = BitGrid::new(cycles, n_sram);
    let mut sram_writes = BitGrid::new(cycles, n_sram);

    for t in 0..cycles {
        sim.step(stimulus);
        sim.record_toggles(&mut net_toggles, t);
        for idx in 0..n_sram {
            let (r, w) = sim.sram_access[idx];
            if r {
                sram_reads.set(t, idx, true);
            }
            if w {
                sram_writes.set(t, idx, true);
            }
        }
    }

    Ok(ToggleTrace::new(
        stimulus.name().to_owned(),
        cycles,
        net_toggles,
        sim.sram_cells.clone(),
        sram_reads,
        sram_writes,
    ))
}

#[cfg(test)]
mod tests {
    use atlas_liberty::Drive;
    use atlas_netlist::NetlistBuilder;

    use super::*;
    use crate::stimulus::{ConstantWorkload, PhasedWorkload, VectorStimulus};

    /// Inverter feeding a DFF: output toggles every cycle after start-up.
    fn toggler() -> Design {
        let mut b = NetlistBuilder::new("toggler");
        let sm = b.add_submodule("top.t", "top");
        let q = b.new_net();
        let nq = b.add_cell(CellClass::Inv, Drive::X1, &[q], sm).expect("ok");
        b.add_dff_onto(q, nq, sm).expect("ok");
        b.mark_output(q);
        b.finish().expect("valid")
    }

    #[test]
    fn toggler_toggles_every_cycle() {
        let d = toggler();
        let mut stim = VectorStimulus::new(vec![vec![]], 0);
        let trace = simulate(&d, &mut stim, 16).expect("simulates");
        let q = d.cells()[1].output(); // the dff output net
                                       // After the first cycle the register output flips every cycle.
        for t in 1..16 {
            assert!(trace.net_toggled(t, q), "q must toggle at cycle {t}");
        }
    }

    #[test]
    fn and_gate_truth() {
        let mut b = NetlistBuilder::new("and");
        let sm = b.add_submodule("t.u", "t");
        let a = b.add_input();
        let c = b.add_input();
        let y = b
            .add_cell(CellClass::And2, Drive::X1, &[a, c], sm)
            .expect("ok");
        b.mark_output(y);
        let d = b.finish().expect("valid");
        let mut sim = Simulator::new(&d).expect("levelizes");
        let mut stim = VectorStimulus::new(
            vec![vec![false, false], vec![true, false], vec![true, true]],
            0,
        );
        sim.step(&mut stim);
        assert!(!sim.net_value(y));
        sim.step(&mut stim);
        assert!(!sim.net_value(y));
        sim.step(&mut stim);
        assert!(sim.net_value(y));
    }

    #[test]
    fn dffr_resets() {
        let mut b = NetlistBuilder::new("r");
        let sm = b.add_submodule("t.u", "t");
        let din = b.add_input();
        let q = b.add_dffr(din, sm).expect("ok");
        b.mark_output(q);
        let d = b.finish().expect("valid");
        let mut sim = Simulator::new(&d).expect("levelizes");
        // Hold D high; reset for 2 cycles.
        let mut stim = VectorStimulus::new(vec![vec![true]], 2);
        sim.step(&mut stim); // cycle 0: reset, q stays 0, next=0
        sim.step(&mut stim); // cycle 1: reset, q=0
        assert!(!sim.net_value(q));
        sim.step(&mut stim); // cycle 2: reset released, next latched 1
        sim.step(&mut stim); // cycle 3: q=1
        assert!(sim.net_value(q));
    }

    #[test]
    fn sram_read_write_behavior() {
        let mut b = NetlistBuilder::new("mem");
        let sm = b.add_submodule("t.m", "t");
        let ren = b.add_input();
        let wen = b.add_input();
        let addr = b.add_input();
        let data = b.add_input();
        let q = b.add_sram(64, 8, ren, wen, addr, data, sm).expect("ok");
        b.mark_output(q);
        let d = b.finish().expect("valid");
        let mut sim = Simulator::new(&d).expect("levelizes");
        // cycle 0: write data=1.
        let mut stim = VectorStimulus::new(
            vec![
                vec![false, true, false, true],   // write 1
                vec![true, false, false, false],  // read addr 0
                vec![false, false, false, false], // idle
            ],
            0,
        );
        sim.step(&mut stim);
        assert_eq!(sim.sram_access(0), (false, true));
        sim.step(&mut stim);
        assert_eq!(sim.sram_access(0), (true, false));
        sim.step(&mut stim); // q now shows the read digest: addr(0) ^ state(1) = 1
        assert!(sim.net_value(q));
    }

    #[test]
    fn trace_counts_match_grid() {
        let d = toggler();
        let mut stim = VectorStimulus::new(vec![vec![]], 0);
        let trace = simulate(&d, &mut stim, 8).expect("simulates");
        let per_cycle = trace.per_cycle_counts();
        assert_eq!(per_cycle.len(), 8);
        let total: usize = per_cycle.iter().sum();
        let by_net: usize = d.net_ids().map(|n| trace.toggle_count(n)).sum();
        assert_eq!(total, by_net);
    }

    #[test]
    fn simulation_is_deterministic() {
        let d = toggler();
        let t1 = simulate(&d, &mut PhasedWorkload::w1(3), 64).expect("simulates");
        let t2 = simulate(&d, &mut PhasedWorkload::w1(3), 64).expect("simulates");
        assert_eq!(t1, t2);
    }

    #[test]
    fn activity_scales_with_workload() {
        // A chain of XORs fed by inputs: hotter stimulus → more toggles.
        let mut b = NetlistBuilder::new("xors");
        let sm = b.add_submodule("t.u", "t");
        let inputs = b.add_inputs(8);
        let mut nets = inputs.clone();
        for i in 0..16 {
            let a = nets[i % nets.len()];
            let c = nets[(i * 3 + 1) % nets.len()];
            let y = b
                .add_cell(CellClass::Xor2, Drive::X1, &[a, c], sm)
                .expect("ok");
            nets.push(y);
        }
        b.mark_output(*nets.last().expect("nonempty"));
        let d = b.finish().expect("valid");
        let hot = simulate(&d, &mut ConstantWorkload::new(0.4, 9), 256).expect("simulates");
        let cold = simulate(&d, &mut ConstantWorkload::new(0.02, 9), 256).expect("simulates");
        let hot_total: usize = hot.per_cycle_counts().iter().sum();
        let cold_total: usize = cold.per_cycle_counts().iter().sum();
        assert!(
            hot_total > cold_total * 3,
            "hot={hot_total} cold={cold_total}"
        );
    }

    #[test]
    fn workload_name_recorded() {
        let d = toggler();
        let trace = simulate(&d, &mut PhasedWorkload::w2(1), 4).expect("simulates");
        assert_eq!(trace.workload(), "W2");
    }
}
