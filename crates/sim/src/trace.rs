//! Per-cycle switching-activity traces.

use atlas_netlist::{CellId, Design, NetId};
use serde::{Deserialize, Serialize};

use crate::bitgrid::BitGrid;

/// The result of simulating a workload: one toggle bit per (cycle, net),
/// plus exact per-cycle SRAM port activity.
///
/// This is the `.vcd`-equivalent artifact the rest of the flow consumes:
/// the golden power engine turns it into per-cycle power, and ATLAS turns
/// it into per-node toggle features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ToggleTrace {
    workload: String,
    cycles: usize,
    net_toggles: BitGrid,
    sram_cells: Vec<CellId>,
    sram_reads: BitGrid,
    sram_writes: BitGrid,
}

impl ToggleTrace {
    pub(crate) fn new(
        workload: String,
        cycles: usize,
        net_toggles: BitGrid,
        sram_cells: Vec<CellId>,
        sram_reads: BitGrid,
        sram_writes: BitGrid,
    ) -> ToggleTrace {
        ToggleTrace {
            workload,
            cycles,
            net_toggles,
            sram_cells,
            sram_reads,
            sram_writes,
        }
    }

    /// Name of the workload that produced this trace.
    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// Number of simulated cycles.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Whether `net` changed value during `cycle`.
    pub fn net_toggled(&self, cycle: usize, net: NetId) -> bool {
        self.net_toggles.get(cycle, net.index())
    }

    /// Whether `cell`'s output changed value during `cycle`.
    pub fn cell_toggled(&self, design: &Design, cycle: usize, cell: CellId) -> bool {
        self.net_toggled(cycle, design.cell(cell).output())
    }

    /// Total number of cycles in which `net` toggled.
    pub fn toggle_count(&self, net: NetId) -> usize {
        self.net_toggles.count_col(net.index())
    }

    /// Fraction of cycles in which `net` toggled.
    pub fn toggle_rate(&self, net: NetId) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.toggle_count(net) as f64 / self.cycles as f64
        }
    }

    /// Number of nets that toggled in each cycle.
    pub fn per_cycle_counts(&self) -> Vec<usize> {
        (0..self.cycles)
            .map(|t| self.net_toggles.count_row(t))
            .collect()
    }

    /// Iterate the nets that toggled in `cycle`.
    pub fn toggled_nets(&self, cycle: usize) -> impl Iterator<Item = NetId> + '_ {
        self.net_toggles.row_ones(cycle).map(NetId::from_index)
    }

    /// The SRAM cells tracked by this trace, in port-activity index order.
    pub fn sram_cells(&self) -> &[CellId] {
        &self.sram_cells
    }

    /// Whether SRAM `idx` (position in [`sram_cells`](Self::sram_cells))
    /// performed a read during `cycle`.
    pub fn sram_read(&self, cycle: usize, idx: usize) -> bool {
        self.sram_reads.get(cycle, idx)
    }

    /// Whether SRAM `idx` performed a write during `cycle`.
    pub fn sram_write(&self, cycle: usize, idx: usize) -> bool {
        self.sram_writes.get(cycle, idx)
    }

    /// Per-cycle (reads, writes) totals across all SRAMs.
    pub fn sram_access_counts(&self) -> Vec<(usize, usize)> {
        (0..self.cycles)
            .map(|t| (self.sram_reads.count_row(t), self.sram_writes.count_row(t)))
            .collect()
    }
}
