//! Workload stimulus generation (the paper's W1/W2 substitutes).

use atlas_netlist::detrng::DetRng;
use serde::{Deserialize, Serialize};

/// A source of primary-input vectors, one per cycle.
///
/// Implementations must be deterministic for reproducible traces.
pub trait Stimulus {
    /// Fill `inputs` (one `bool` per primary input, in design port order)
    /// with the values for `cycle`. Values persist between calls, so an
    /// implementation may flip only a subset each cycle.
    fn apply(&mut self, cycle: usize, inputs: &mut [bool]);

    /// Whether reset is asserted during `cycle`. Defaults to the first
    /// four cycles.
    fn reset_active(&self, cycle: usize) -> bool {
        cycle < 4
    }

    /// A short name for reports (e.g. `W1`).
    fn name(&self) -> &str {
        "stimulus"
    }
}

/// One phase of a [`PhasedWorkload`]: a per-cycle input flip probability
/// held for a random duration within `[min_len, max_len]` cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadPhase {
    /// Probability each primary input flips in a cycle of this phase.
    pub activity: f64,
    /// Minimum phase duration in cycles.
    pub min_len: usize,
    /// Maximum phase duration in cycles.
    pub max_len: usize,
}

/// FNV-1a fingerprint of a phase schedule, used as a cache-key component
/// wherever schedules are looked up (the serve layer's embedding cache,
/// its server-side workload library). Two schedules share a fingerprint
/// exactly when their phase parameters are bit-identical.
///
/// Never returns 0, so callers can reserve 0 to mean "preset workload,
/// no explicit schedule".
pub fn schedule_fingerprint(phases: &[WorkloadPhase]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for p in phases {
        mix(p.activity.to_bits());
        mix(p.min_len as u64);
        mix(p.max_len as u64);
    }
    h.max(1)
}

/// Phase-structured random stimulus: activity moves through bursts,
/// steady compute, and near-idle stretches, producing realistic per-cycle
/// power fluctuation (the reason time-based power analysis matters —
/// peak power and `L·di/dt`, paper §I).
///
/// The presets [`PhasedWorkload::w1`] and [`PhasedWorkload::w2`] play the
/// role of the paper's workloads W1 and W2.
#[derive(Debug, Clone)]
pub struct PhasedWorkload {
    name: String,
    phases: Vec<WorkloadPhase>,
    rng: DetRng,
    phase_idx: usize,
    cycles_left: usize,
}

impl PhasedWorkload {
    /// Build a workload from an explicit phase schedule (cycled in order,
    /// with per-phase random durations).
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase has `min_len == 0`,
    /// `min_len > max_len`, or an activity outside `[0, 1]`.
    pub fn new(name: impl Into<String>, phases: Vec<WorkloadPhase>, seed: u64) -> PhasedWorkload {
        PhasedWorkload::try_new(name, phases, seed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PhasedWorkload::new`], for schedules arriving from an
    /// untrusted source (e.g. inline in a serve request): a bad schedule
    /// is a descriptive `Err`, not a panic.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first invalid phase.
    pub fn try_new(
        name: impl Into<String>,
        phases: Vec<WorkloadPhase>,
        seed: u64,
    ) -> Result<PhasedWorkload, String> {
        if phases.is_empty() {
            return Err("workload needs at least one phase".to_owned());
        }
        for (i, p) in phases.iter().enumerate() {
            if p.min_len == 0 || p.min_len > p.max_len {
                return Err(format!(
                    "bad phase length bounds (phase {i}: min_len {} max_len {})",
                    p.min_len, p.max_len
                ));
            }
            if !p.activity.is_finite() || !(0.0..=1.0).contains(&p.activity) {
                return Err(format!(
                    "bad phase activity (phase {i}: {} is not in [0, 1])",
                    p.activity
                ));
            }
        }
        Ok(PhasedWorkload {
            name: name.into(),
            phases,
            rng: DetRng::new(seed),
            phase_idx: 0,
            cycles_left: 0,
        })
    }

    /// The paper's W1: a compute-heavy workload — bursts of high activity
    /// with medium plateaus and short idles.
    pub fn w1(seed: u64) -> PhasedWorkload {
        PhasedWorkload::new(
            "W1",
            vec![
                WorkloadPhase {
                    activity: 0.35,
                    min_len: 15,
                    max_len: 40,
                },
                WorkloadPhase {
                    activity: 0.15,
                    min_len: 25,
                    max_len: 60,
                },
                WorkloadPhase {
                    activity: 0.50,
                    min_len: 5,
                    max_len: 15,
                },
                WorkloadPhase {
                    activity: 0.05,
                    min_len: 10,
                    max_len: 30,
                },
            ],
            seed.wrapping_mul(2).wrapping_add(0x57A7E1),
        )
    }

    /// The paper's W2: a memory-ish workload — lower sustained activity
    /// with longer idle stretches and occasional bursts.
    pub fn w2(seed: u64) -> PhasedWorkload {
        PhasedWorkload::new(
            "W2",
            vec![
                WorkloadPhase {
                    activity: 0.20,
                    min_len: 20,
                    max_len: 50,
                },
                WorkloadPhase {
                    activity: 0.02,
                    min_len: 30,
                    max_len: 80,
                },
                WorkloadPhase {
                    activity: 0.40,
                    min_len: 4,
                    max_len: 12,
                },
                WorkloadPhase {
                    activity: 0.10,
                    min_len: 20,
                    max_len: 40,
                },
            ],
            seed.wrapping_mul(3).wrapping_add(0x57A7E2),
        )
    }

    /// Look up a preset by name (`"W1"` / `"W2"`).
    pub fn preset(name: &str, seed: u64) -> Option<PhasedWorkload> {
        match name {
            "W1" => Some(PhasedWorkload::w1(seed)),
            "W2" => Some(PhasedWorkload::w2(seed)),
            _ => None,
        }
    }

    /// Names accepted by [`PhasedWorkload::preset`], in a stable order.
    pub fn preset_names() -> &'static [&'static str] {
        &["W1", "W2"]
    }

    /// The phase schedule this workload cycles through.
    pub fn phases(&self) -> &[WorkloadPhase] {
        &self.phases
    }
}

impl Stimulus for PhasedWorkload {
    fn apply(&mut self, _cycle: usize, inputs: &mut [bool]) {
        if self.cycles_left == 0 {
            self.phase_idx = (self.phase_idx + 1) % self.phases.len();
            let p = self.phases[self.phase_idx];
            self.cycles_left = if p.min_len == p.max_len {
                p.min_len
            } else {
                p.min_len + (self.rng.next_u64() as usize) % (p.max_len - p.min_len + 1)
            };
        }
        self.cycles_left -= 1;
        let activity = self.phases[self.phase_idx].activity;
        for v in inputs.iter_mut() {
            if self.rng.chance(activity) {
                *v = !*v;
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

use rand::RngCore as _;

/// Uniform random stimulus with a fixed per-cycle flip probability.
#[derive(Debug, Clone)]
pub struct ConstantWorkload {
    activity: f64,
    rng: DetRng,
}

impl ConstantWorkload {
    /// Flip each input with probability `activity` every cycle.
    pub fn new(activity: f64, seed: u64) -> ConstantWorkload {
        ConstantWorkload {
            activity,
            rng: DetRng::new(seed),
        }
    }
}

impl Stimulus for ConstantWorkload {
    fn apply(&mut self, _cycle: usize, inputs: &mut [bool]) {
        for v in inputs.iter_mut() {
            if self.rng.chance(self.activity) {
                *v = !*v;
            }
        }
    }

    fn name(&self) -> &str {
        "constant"
    }
}

/// Replay an explicit vector sequence (for directed tests). Cycles beyond
/// the sequence hold the last vector.
#[derive(Debug, Clone)]
pub struct VectorStimulus {
    vectors: Vec<Vec<bool>>,
    reset_cycles: usize,
}

impl VectorStimulus {
    /// Replay `vectors[cycle]` each cycle, with reset asserted for
    /// `reset_cycles` cycles.
    pub fn new(vectors: Vec<Vec<bool>>, reset_cycles: usize) -> VectorStimulus {
        VectorStimulus {
            vectors,
            reset_cycles,
        }
    }
}

impl Stimulus for VectorStimulus {
    fn apply(&mut self, cycle: usize, inputs: &mut [bool]) {
        if let Some(v) = self
            .vectors
            .get(cycle.min(self.vectors.len().saturating_sub(1)))
        {
            for (dst, src) in inputs.iter_mut().zip(v) {
                *dst = *src;
            }
        }
    }

    fn reset_active(&self, cycle: usize) -> bool {
        cycle < self.reset_cycles
    }

    fn name(&self) -> &str {
        "vectors"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phased_workload_is_deterministic() {
        let mut a = PhasedWorkload::w1(5);
        let mut b = PhasedWorkload::w1(5);
        let mut ia = vec![false; 16];
        let mut ib = vec![false; 16];
        for t in 0..200 {
            a.apply(t, &mut ia);
            b.apply(t, &mut ib);
            assert_eq!(ia, ib, "diverged at cycle {t}");
        }
    }

    #[test]
    fn w1_and_w2_differ() {
        let mut a = PhasedWorkload::w1(5);
        let mut b = PhasedWorkload::w2(5);
        let mut ia = vec![false; 16];
        let mut ib = vec![false; 16];
        let mut same = true;
        for t in 0..100 {
            a.apply(t, &mut ia);
            b.apply(t, &mut ib);
            if ia != ib {
                same = false;
            }
        }
        assert!(!same);
    }

    #[test]
    fn activity_levels_modulate_flip_rate() {
        let mut hot = ConstantWorkload::new(0.5, 1);
        let mut cold = ConstantWorkload::new(0.02, 1);
        let mut vh = vec![false; 64];
        let mut vc = vec![false; 64];
        let mut flips_hot = 0usize;
        let mut flips_cold = 0usize;
        let mut prev_h = vh.clone();
        let mut prev_c = vc.clone();
        for t in 0..200 {
            hot.apply(t, &mut vh);
            cold.apply(t, &mut vc);
            flips_hot += vh.iter().zip(&prev_h).filter(|(a, b)| a != b).count();
            flips_cold += vc.iter().zip(&prev_c).filter(|(a, b)| a != b).count();
            prev_h.copy_from_slice(&vh);
            prev_c.copy_from_slice(&vc);
        }
        assert!(
            flips_hot > flips_cold * 5,
            "hot={flips_hot} cold={flips_cold}"
        );
    }

    #[test]
    fn vector_stimulus_replays_and_holds() {
        let mut s = VectorStimulus::new(vec![vec![true, false], vec![false, true]], 1);
        let mut v = vec![false; 2];
        s.apply(0, &mut v);
        assert_eq!(v, vec![true, false]);
        s.apply(1, &mut v);
        assert_eq!(v, vec![false, true]);
        s.apply(5, &mut v);
        assert_eq!(v, vec![false, true]);
        assert!(s.reset_active(0));
        assert!(!s.reset_active(1));
    }

    #[test]
    fn preset_lookup() {
        assert!(PhasedWorkload::preset("W1", 0).is_some());
        assert!(PhasedWorkload::preset("W2", 0).is_some());
        assert!(PhasedWorkload::preset("W9", 0).is_none());
        assert_eq!(PhasedWorkload::w1(0).name(), "W1");
        for name in PhasedWorkload::preset_names() {
            assert!(PhasedWorkload::preset(name, 0).is_some());
        }
    }

    #[test]
    fn schedule_fingerprints_distinguish_schedules() {
        let a = vec![WorkloadPhase {
            activity: 0.4,
            min_len: 2,
            max_len: 6,
        }];
        let mut b = a.clone();
        b[0].activity = 0.5;
        assert_eq!(schedule_fingerprint(&a), schedule_fingerprint(&a));
        assert_ne!(schedule_fingerprint(&a), schedule_fingerprint(&b));
        // 0 is reserved for "preset": even the empty schedule avoids it.
        assert_ne!(schedule_fingerprint(&[]), 0);
        assert_ne!(schedule_fingerprint(&a), 0);
        // The schedule is observable back through the workload.
        let w = PhasedWorkload::new("x", a.clone(), 7);
        assert_eq!(w.phases(), a.as_slice());
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_panics() {
        let _ = PhasedWorkload::new("bad", vec![], 0);
    }

    #[test]
    fn try_new_rejects_bad_schedules() {
        assert!(PhasedWorkload::try_new("x", vec![], 0).is_err());
        let bad_len = WorkloadPhase {
            activity: 0.2,
            min_len: 5,
            max_len: 3,
        };
        assert!(PhasedWorkload::try_new("x", vec![bad_len], 0)
            .unwrap_err()
            .contains("length bounds"));
        let bad_act = WorkloadPhase {
            activity: 1.5,
            min_len: 1,
            max_len: 2,
        };
        assert!(PhasedWorkload::try_new("x", vec![bad_act], 0)
            .unwrap_err()
            .contains("activity"));
        let nan_act = WorkloadPhase {
            activity: f64::NAN,
            min_len: 1,
            max_len: 2,
        };
        assert!(PhasedWorkload::try_new("x", vec![nan_act], 0).is_err());
        let ok = WorkloadPhase {
            activity: 0.3,
            min_len: 2,
            max_len: 8,
        };
        assert!(PhasedWorkload::try_new("x", vec![ok], 0).is_ok());
    }
}
