//! Minimal VCD (value change dump) writer.
//!
//! Emits a standards-shaped `.vcd` so traces can be eyeballed in waveform
//! viewers — the interchange role `.fsdb`/`.vcd` plays in the paper's flow.

use std::io::{self, Write};

use atlas_netlist::{Design, NetId};

use crate::simulator::{SimError, Simulator};
use crate::stimulus::Stimulus;

/// Simulate `cycles` cycles and stream a VCD of the selected nets (all
/// nets if `nets` is `None`) to `w`. A `&mut` writer can be passed
/// (`Write` is implemented for `&mut W`).
///
/// # Errors
///
/// Returns [`SimError::CombinationalCycle`] as an `io::Error` of kind
/// `InvalidInput` if the design cannot be levelized, or any I/O error from
/// the writer.
///
/// # Examples
///
/// ```
/// use atlas_liberty::{CellClass, Drive};
/// use atlas_netlist::NetlistBuilder;
/// use atlas_sim::{write_vcd, PhasedWorkload};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("t");
/// let sm = b.add_submodule("t.u", "t");
/// let a = b.add_input();
/// let y = b.add_cell(CellClass::Inv, Drive::X1, &[a], sm)?;
/// b.mark_output(y);
/// let d = b.finish()?;
/// let mut out = Vec::new();
/// write_vcd(&d, &mut PhasedWorkload::w1(1), 8, None, &mut out)?;
/// let text = String::from_utf8(out)?;
/// assert!(text.contains("$enddefinitions"));
/// # Ok(())
/// # }
/// ```
pub fn write_vcd<W: Write>(
    design: &Design,
    stimulus: &mut dyn Stimulus,
    cycles: usize,
    nets: Option<&[NetId]>,
    mut w: W,
) -> io::Result<()> {
    let mut sim = Simulator::new(design)
        .map_err(|e: SimError| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;

    let all: Vec<NetId>;
    let selected: &[NetId] = match nets {
        Some(n) => n,
        None => {
            all = design.net_ids().collect();
            &all
        }
    };

    writeln!(w, "$date atlas-sim $end")?;
    writeln!(w, "$version atlas-sim vcd-lite $end")?;
    writeln!(w, "$timescale 1ns $end")?;
    writeln!(w, "$scope module {} $end", design.name())?;
    for &net in selected {
        writeln!(
            w,
            "$var wire 1 {} n{} $end",
            ident(net.index()),
            net.index()
        )?;
    }
    writeln!(w, "$upscope $end")?;
    writeln!(w, "$enddefinitions $end")?;

    let mut last: Vec<Option<bool>> = vec![None; selected.len()];
    for t in 0..cycles {
        sim.step(stimulus);
        writeln!(w, "#{t}")?;
        for (i, &net) in selected.iter().enumerate() {
            let v = sim.net_value(net);
            if last[i] != Some(v) {
                writeln!(w, "{}{}", if v { '1' } else { '0' }, ident(net.index()))?;
                last[i] = Some(v);
            }
        }
    }
    Ok(())
}

/// VCD short identifier for a net index (printable ASCII 33..=126).
fn ident(mut idx: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (idx % 94)) as u8 as char);
        idx /= 94;
        if idx == 0 {
            break;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use atlas_liberty::{CellClass, Drive};
    use atlas_netlist::NetlistBuilder;

    use super::*;
    use crate::stimulus::VectorStimulus;

    #[test]
    fn idents_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            let id = ident(i);
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn vcd_structure() {
        let mut b = NetlistBuilder::new("v");
        let sm = b.add_submodule("t.u", "t");
        let a = b.add_input();
        let y = b.add_cell(CellClass::Inv, Drive::X1, &[a], sm).expect("ok");
        b.mark_output(y);
        let d = b.finish().expect("valid");

        let mut out = Vec::new();
        let mut stim = VectorStimulus::new(vec![vec![false], vec![true], vec![true]], 0);
        write_vcd(&d, &mut stim, 3, Some(&[y]), &mut out).expect("writes");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("$var wire 1"));
        assert!(text.contains("#0"));
        assert!(text.contains("#2"));
        // y = !a: starts 1, drops to 0 at cycle 1, no change at cycle 2.
        let changes = text
            .lines()
            .filter(|l| l.starts_with('0') || l.starts_with('1'))
            .count();
        assert_eq!(changes, 2);
    }
}
