//! A dense 2-D bit matrix used for per-cycle toggle storage.

use serde::{Deserialize, Serialize};

/// A `rows × cols` bit matrix backed by packed `u64` words.
///
/// Used to store one bit per (cycle, net): for a paper-scale design
/// (600K nets × 300 cycles) this is ~22 MB, versus ~180 MB for `Vec<bool>`.
///
/// # Examples
///
/// ```
/// use atlas_sim::BitGrid;
///
/// let mut g = BitGrid::new(3, 100);
/// g.set(1, 42, true);
/// assert!(g.get(1, 42));
/// assert!(!g.get(0, 42));
/// assert_eq!(g.count_row(1), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitGrid {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitGrid {
    /// Allocate an all-zero grid.
    pub fn new(rows: usize, cols: usize) -> BitGrid {
        let words_per_row = cols.div_ceil(64);
        BitGrid {
            rows,
            cols,
            words_per_row,
            words: vec![0; rows * words_per_row],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Read one bit.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()` or `col >= cols()`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(
            row < self.rows && col < self.cols,
            "bit ({row},{col}) out of range"
        );
        let w = self.words[row * self.words_per_row + col / 64];
        (w >> (col % 64)) & 1 == 1
    }

    /// Write one bit.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()` or `col >= cols()`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        assert!(
            row < self.rows && col < self.cols,
            "bit ({row},{col}) out of range"
        );
        let w = &mut self.words[row * self.words_per_row + col / 64];
        if value {
            *w |= 1 << (col % 64);
        } else {
            *w &= !(1 << (col % 64));
        }
    }

    /// Number of set bits in a row.
    pub fn count_row(&self, row: usize) -> usize {
        let start = row * self.words_per_row;
        self.words[start..start + self.words_per_row]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Number of set bits in a column (over all rows).
    pub fn count_col(&self, col: usize) -> usize {
        (0..self.rows).filter(|&r| self.get(r, col)).count()
    }

    /// Total set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate the set columns of one row.
    pub fn row_ones(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        let start = row * self.words_per_row;
        let words = &self.words[start..start + self.words_per_row];
        words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get_roundtrip() {
        let mut g = BitGrid::new(2, 130);
        g.set(0, 0, true);
        g.set(0, 63, true);
        g.set(0, 64, true);
        g.set(1, 129, true);
        assert!(g.get(0, 0) && g.get(0, 63) && g.get(0, 64) && g.get(1, 129));
        assert!(!g.get(1, 0));
        g.set(0, 63, false);
        assert!(!g.get(0, 63));
        assert_eq!(g.count(), 3);
    }

    #[test]
    fn row_and_col_counts() {
        let mut g = BitGrid::new(4, 10);
        for r in 0..4 {
            g.set(r, 3, true);
        }
        g.set(2, 7, true);
        assert_eq!(g.count_col(3), 4);
        assert_eq!(g.count_row(2), 2);
    }

    #[test]
    fn row_ones_iterates_in_order() {
        let mut g = BitGrid::new(1, 200);
        for c in [5usize, 64, 65, 190] {
            g.set(0, c, true);
        }
        let ones: Vec<usize> = g.row_ones(0).collect();
        assert_eq!(ones, vec![5, 64, 65, 190]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let g = BitGrid::new(1, 8);
        let _ = g.get(0, 8);
    }

    proptest! {
        #[test]
        fn count_matches_naive(bits in proptest::collection::vec((0usize..5, 0usize..100), 0..50)) {
            let mut g = BitGrid::new(5, 100);
            let mut naive = std::collections::HashSet::new();
            for (r, c) in bits {
                g.set(r, c, true);
                naive.insert((r, c));
            }
            prop_assert_eq!(g.count(), naive.len());
            for r in 0..5 {
                let row: Vec<usize> = g.row_ones(r).collect();
                let mut expect: Vec<usize> =
                    naive.iter().filter(|&&(rr, _)| rr == r).map(|&(_, c)| c).collect();
                expect.sort_unstable();
                prop_assert_eq!(row, expect);
            }
        }
    }
}
