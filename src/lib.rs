//! Workspace umbrella crate for the ATLAS reproduction.
//!
//! This crate exists to host the runnable [examples](../examples) and the
//! cross-crate integration tests in `tests/`. The actual functionality lives
//! in the `atlas-*` crates under `crates/`:
//!
//! - [`atlas_liberty`] — synthetic 40nm-class technology library.
//! - [`atlas_netlist`] — gate-level netlist IR and sub-module graphs.
//! - [`atlas_designs`] — the C1..C6 CPU-like design generators.
//! - [`atlas_sim`] — cycle-accurate logic simulation and workloads.
//! - [`atlas_layout`] — placement, buffering, clock-tree synthesis, RC.
//! - [`atlas_power`] — golden per-cycle grouped power engine.
//! - [`atlas_nn`] — tensor/autograd and the SGFormer-style graph encoder.
//! - [`atlas_gbdt`] — gradient-boosted regression trees.
//! - [`atlas_core`] — the ATLAS pre-training / fine-tuning / inference flow.

pub use atlas_core as core;
pub use atlas_designs as designs;
pub use atlas_gbdt as gbdt;
pub use atlas_layout as layout;
pub use atlas_liberty as liberty;
pub use atlas_netlist as netlist;
pub use atlas_nn as nn;
pub use atlas_power as power;
pub use atlas_sim as sim;
