//! Offline stand-in for `criterion`.
//!
//! Implements the configuration/builder surface the workspace's benches
//! use — `Criterion::default()`, `measurement_time`, `warm_up_time`,
//! `sample_size`, `bench_function`, `benchmark_group`, the
//! `criterion_group!` / `criterion_main!` macros and [`black_box`] — with
//! a simple median-of-samples wall-clock measurement instead of the real
//! crate's statistical machinery. Results print to stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Set the measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    /// Set the warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up = d;
        self
    }

    /// Set how many timed samples are collected.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            name,
            self.warm_up,
            self.measurement,
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_owned(),
            sample_size: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        run_bench(
            &full,
            self.parent.warm_up,
            self.parent.measurement,
            samples,
            &mut f,
        );
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`iter`](Bencher::iter) with the
/// code under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    f: &mut F,
) {
    // Warm-up and iteration-count calibration: grow until one batch takes
    // a measurable slice of the warm-up budget.
    let mut iters: u64 = 1;
    let warm_deadline = Instant::now() + warm_up;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if Instant::now() >= warm_deadline || b.elapsed >= warm_up / 10 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    let deadline = Instant::now() + measurement;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters.max(1) as f64);
        if Instant::now() >= deadline {
            break;
        }
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    println!(
        "{name:<50} {:>12}  ({} samples × {iters} iters)",
        fmt_time(median),
        samples.len()
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declare a group of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                {
                    let mut criterion: $crate::Criterion = $config;
                    $target(&mut criterion);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (e.g.
            // `--bench`, `--test`) which this minimal harness ignores.
            $($group();)+
        }
    };
}
