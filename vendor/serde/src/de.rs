//! Deserialization error type and helpers used by generated code.

use std::fmt;

use crate::{Deserialize, Value};

/// Why a [`Value`] could not be turned into the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with a preformatted message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }

    /// "expected X while deserializing Y, found Z".
    pub fn expected(what: &str, target: &str, found: &Value) -> Error {
        Error {
            msg: format!("expected {what} for `{target}`, found {}", found.kind()),
        }
    }

    /// A required map field was absent.
    pub fn missing_field(field: &str, target: &str) -> Error {
        Error {
            msg: format!("missing field `{field}` for `{target}`"),
        }
    }

    /// An enum tag did not match any variant.
    pub fn unknown_variant(tag: &str, target: &str) -> Error {
        Error {
            msg: format!("unknown variant `{tag}` for `{target}`"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Look up `name` in a struct map and deserialize it — the workhorse of
/// derived `Deserialize` impls for named-field structs.
///
/// A missing field is retried against `Value::Null` before erroring, so
/// `Option<T>` fields deserialize to `None` when absent — the real
/// serde_derive's behavior.
///
/// # Errors
///
/// Fails when a non-nullable field is absent or its value does not
/// deserialize.
pub fn field<T: Deserialize>(
    map: &[(String, Value)],
    name: &str,
    target: &str,
) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => T::from_value(&Value::Null).map_err(|_| Error::missing_field(name, target)),
    }
}

/// Deserialize element `idx` of a sequence — used by derived impls for
/// tuple structs and tuple enum variants.
///
/// # Errors
///
/// Fails when the sequence is too short or the element does not
/// deserialize.
pub fn element<T: Deserialize>(seq: &[Value], idx: usize, target: &str) -> Result<T, Error> {
    match seq.get(idx) {
        Some(v) => T::from_value(v),
        None => Err(Error::custom(format!(
            "sequence for `{target}` too short: no element {idx}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_option_field_is_none() {
        let map: Vec<(String, Value)> = vec![("x".to_owned(), Value::UInt(3))];
        let opt: Option<u64> = field(&map, "absent", "T").expect("Option defaults to None");
        assert_eq!(opt, None);
        let present: Option<u64> = field(&map, "x", "T").expect("present Option");
        assert_eq!(present, Some(3));
        let required: Result<u64, Error> = field(&map, "absent", "T");
        assert_eq!(required, Err(Error::missing_field("absent", "T")));
    }
}
