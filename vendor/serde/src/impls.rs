//! `Serialize` / `Deserialize` implementations for std types.

use crate::de::Error;
use crate::{Deserialize, Serialize, Value};

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Value, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<bool, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", "bool", other)),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, Error> {
                let n = match value {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => return Err(Error::expected("unsigned integer", stringify!($t), other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 {
                    Value::Int(n)
                } else {
                    Value::UInt(n as u64)
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, Error> {
                let n: i64 = match value {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n).map_err(|_| {
                        Error::custom(format!("{n} out of range for {}", stringify!($t)))
                    })?,
                    other => return Err(Error::expected("integer", stringify!($t), other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, Error> {
                match value {
                    Value::Float(x) => Ok(*x as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    other => Err(Error::expected("number", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<String, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", "String", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<char, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(Error::expected("single-char string", "char", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Option<T>, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Vec<T>, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("sequence", "Vec", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<[T; N], Error> {
        let seq = value
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", "array", value))?;
        if seq.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, found {}",
                seq.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, v) in out.iter_mut().zip(seq) {
            *slot = T::from_value(v)?;
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<($($name,)+), Error> {
                let seq = value
                    .as_seq()
                    .ok_or_else(|| Error::expected("sequence", "tuple", value))?;
                Ok(($(crate::de::element::<$name>(seq, $idx, "tuple")?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-42i64).to_value()), Ok(-42));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_owned()));
        // `Value` is its own identity: pass-through in both directions,
        // which lets proxies reshape documents they do not fully type.
        let v = Value::Map(vec![("id".to_owned(), Value::UInt(7))]);
        assert_eq!(v.to_value(), v);
        assert_eq!(Value::from_value(&v), Ok(v));
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()), Ok(v));
        let o: Option<f64> = Some(2.5);
        assert_eq!(Option::<f64>::from_value(&o.to_value()), Ok(o));
        let none: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&none.to_value()), Ok(none));
        let t = (3u32, -1i64);
        assert_eq!(<(u32, i64)>::from_value(&t.to_value()), Ok(t));
        let pair = (1.25f64, 8.5f64);
        assert_eq!(<(f64, f64)>::from_value(&pair.to_value()), Ok(pair));
    }

    #[test]
    fn range_errors_are_reported() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert!(bool::from_value(&Value::UInt(1)).is_err());
    }
}
