//! The concrete data model of the serde shim.

/// A self-describing value tree: the intermediate form between Rust types
/// and any wire format (JSON in this workspace).
///
/// Integers keep their sign class so `u64` values above `i64::MAX` and
/// negative numbers both round-trip exactly; floats are kept separate so
/// `1.0_f64` does not silently become an integer type on the Rust side.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A negative integer (always `< 0`; non-negatives use [`Value::UInt`]).
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}
