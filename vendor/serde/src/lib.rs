//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! supplies the serialization surface the workspace uses: the
//! [`Serialize`] / [`Deserialize`] traits, `#[derive(Serialize,
//! Deserialize)]` (from the companion `serde_derive` shim), and the
//! `#[serde(skip)]` field attribute.
//!
//! Instead of the real serde's zero-copy visitor architecture, this shim
//! uses a concrete [`Value`] tree as its data model: serializing builds a
//! `Value`, deserializing reads one. `serde_json` (also vendored) renders
//! and parses that tree. The API is intentionally a strict subset — code
//! written against this shim compiles unchanged against real serde plus
//! its derive.

pub use serde_derive::{Deserialize, Serialize};

pub mod de;
mod impls;
mod value;

pub use value::Value;

/// A type that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Build the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns a [`de::Error`] describing the first structural mismatch.
    fn from_value(value: &Value) -> Result<Self, de::Error>;
}
