//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`thread::scope`] is provided — the one API the workspace uses —
//! implemented directly on top of `std::thread::scope` (stable since Rust
//! 1.63, which post-dates crossbeam's scoped threads). The signatures
//! mirror crossbeam's so the real crate can be swapped back in without
//! source changes.

pub mod thread {
    //! Scoped threads with the `crossbeam::thread` calling convention.

    use std::any::Any;

    /// Handle to a scope, passed to the closure and to every spawned
    /// thread's closure (crossbeam's convention; `std` instead returns the
    /// scope from `std::thread::scope`).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    // Manual impls: the wrapper is just a shared reference.
    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// itself so it can spawn further threads (crossbeam convention).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be
    /// spawned; all spawned threads are joined before this returns.
    ///
    /// # Errors
    ///
    /// The real crossbeam returns `Err` when an unjoined child panicked.
    /// `std::thread::scope` propagates such panics instead, so this
    /// always returns `Ok` — callers' `.expect(..)` remains correct.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_share_borrows() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum()
        })
        .expect("scope completes");
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let n: usize = crate::thread::scope(|scope| {
            let h = scope.spawn(|inner| inner.spawn(|_| 21usize).join().expect("inner") * 2);
            h.join().expect("outer")
        })
        .expect("scope completes");
        assert_eq!(n, 42);
    }
}
