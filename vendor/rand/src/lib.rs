//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the trait surface the workspace uses: the
//! [`RngCore`] / [`SeedableRng`] core traits and the [`Rng`] extension
//! trait with `gen` / `gen_range`. The workspace's own generators (e.g.
//! `atlas_netlist::detrng::DetRng`) implement [`RngCore`], so swapping the
//! real `rand` back in requires no source changes.

use std::fmt;
use std::ops::Range;

/// Error type produced by fallible RNG operations.
///
/// The deterministic generators in this workspace never fail, so this is
/// effectively uninhabited in practice, but the type exists to keep
/// signatures identical to the real crate.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Construct an error with a static message.
    pub fn new(msg: &'static str) -> Error {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`fill_bytes`](Self::fill_bytes).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Create from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Create from a `u64`, spread across the seed bytes.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 expansion, as in the real crate.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be produced uniformly from raw RNG output via
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a half-open `Range` via
/// [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end - range.start) as u64;
                // Modulo bias is irrelevant at the spans this workspace uses.
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draw uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Commonly imported items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
            let n: u32 = rng.gen_range(0..10);
            assert!(n < 10);
            let u: usize = rng.gen_range(3..9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn gen_produces_varied_values() {
        let mut rng = Counter(1);
        let a: u64 = rng.gen();
        let b: u64 = rng.gen();
        assert_ne!(a, b);
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
