//! Offline stand-in for `serde_json`: JSON text ⇄ the vendored `serde`
//! shim's `Value` data model.
//!
//! Provides the call surface the workspace uses — [`to_string`],
//! [`to_string_pretty`], [`to_vec`], [`from_str`], and [`Error`] — with
//! the same semantics as the real crate for the types this workspace
//! serializes: numbers round-trip exactly (floats are printed with Rust's
//! shortest round-trippable representation), strings are escaped per RFC
//! 8259, and non-finite floats serialize as `null`.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

mod parse;
mod write;

/// A serialization or parse error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Error {
        Error::new(e.to_string())
    }
}

/// Serialize to compact JSON text.
///
/// # Errors
///
/// Infallible for the value model this shim supports; the `Result` keeps
/// the real crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write::compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize to human-readable JSON text (two-space indent).
///
/// # Errors
///
/// Infallible for the value model this shim supports.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write::pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Serialize to compact JSON bytes.
///
/// # Errors
///
/// Infallible for the value model this shim supports.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parse JSON text into any deserializable type.
///
/// # Errors
///
/// Fails on malformed JSON, trailing content, or a structural mismatch
/// with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse JSON text into the generic [`Value`] tree.
///
/// # Errors
///
/// Fails on malformed JSON or trailing content.
pub fn from_str_value(s: &str) -> Result<Value, Error> {
    parse::parse(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(from_str::<f64>("1.0").unwrap(), 1.0);
        assert_eq!(to_string(&u64::MAX).unwrap(), u64::MAX.to_string());
        assert_eq!(from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }

    #[test]
    fn float_precision_survives() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.7976931348623157e308,
            -2.2250738585072014e-308,
            123_456_789.123_456_78,
        ] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x, "{x} mangled through {s}");
        }
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\te\u{1}f";
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        let unicode = "héllo wörld ✓";
        assert_eq!(
            from_str::<String>(&to_string(&unicode).unwrap()).unwrap(),
            unicode
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.5f64, -2.0, 3.25];
        assert_eq!(from_str::<Vec<f64>>(&to_string(&v).unwrap()).unwrap(), v);
        let nested: Vec<Vec<u32>> = vec![vec![1], vec![], vec![2, 3]];
        assert_eq!(
            from_str::<Vec<Vec<u32>>>(&to_string(&nested).unwrap()).unwrap(),
            nested
        );
    }

    #[test]
    fn pretty_parses_back() {
        let v = vec![(1u32, 2u32), (3, 4)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<(u32, u32)>>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<f64>("1.5 trailing").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<f64>("nul").is_err());
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f64>("null").is_err());
    }
}
