//! JSON text emission from the `Value` tree.

use serde::Value;

/// Write `value` as compact JSON.
pub(crate) fn compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                compact(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                compact(v, out);
            }
            out.push('}');
        }
    }
}

/// Write `value` as two-space-indented JSON.
pub(crate) fn pretty(value: &Value, indent: usize, out: &mut String) {
    match value {
        Value::Seq(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                push_indent(indent + 1, out);
                pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                push_indent(indent + 1, out);
                write_string(k, out);
                out.push_str(": ");
                pretty(v, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => compact(other, out),
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// Floats print with Rust's shortest round-trippable representation; a
/// `.0` is appended to integral values so they re-parse as floats, and
/// non-finite values become `null` (the real serde_json's behavior).
fn write_float(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let s = x.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
