//! Recursive-descent JSON parser producing the `Value` tree.

use serde::Value;

use crate::Error;

/// Parse a complete JSON document (surrounding whitespace allowed,
/// trailing content rejected).
pub(crate) fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair support for completeness.
                            if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid \\u escape"))?,
                                );
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid UTF-8");
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if rest.parse::<u64>().is_ok() {
                    if let Ok(n) = text.parse::<i64>() {
                        return Ok(Value::Int(n));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("malformed number"))
    }
}
