//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: range
//! strategies over integers and floats, tuple strategies, `prop_map`,
//! `proptest::collection::vec`, the `proptest!` macro (with an optional
//! `#![proptest_config(..)]` header), and `prop_assert!` /
//! `prop_assert_eq!`.
//!
//! Differences from the real crate, chosen for an offline, reproducible
//! test suite: sampling is **deterministic** (a fixed-seed SplitMix64
//! stream, so failures reproduce exactly) and failing cases are **not
//! shrunk** — the assertion message reports the failing case number
//! instead.

use std::ops::Range;

pub mod collection;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// The deterministic sampling stream handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create the stream for one property (seeded per property name hash
    /// by the `proptest!` macro so properties draw independent values).
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 raw bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draw one value from the stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// A strategy producing always the same value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Stable 64-bit FNV-1a hash, used to give each property an independent
/// deterministic stream.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Commonly imported items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

/// Assert inside a property; reports the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Define property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs `cases` times over deterministic samples.
#[macro_export]
macro_rules! proptest {
    // With a config header.
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    // Internal: expand each property against the chosen config.
    (@expand ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
                for __case in 0..__config.cases {
                    let ($($arg,)+) = (
                        $($crate::Strategy::generate(&($strategy), &mut __rng),)+
                    );
                    let __run = || -> () { $body };
                    if ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)).is_err() {
                        panic!(
                            "property `{}` failed on case {} of {} (deterministic seed; \
                             shrinking not supported by the offline proptest shim)",
                            stringify!($name), __case + 1, __config.cases,
                        );
                    }
                }
            }
        )*
    };
    // Without a config header.
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let f = (-1.0f64..2.0).generate(&mut rng);
            assert!((-1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let strat = (0u64..10, 1usize..4).prop_map(|(a, b)| a as usize + b);
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..13).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_with_config(x in 0u32..100, y in 0u32..100) {
            prop_assert!(x < 100 && y < 100);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(v in collection::vec(0.0f64..1.0, 0..8)) {
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }
}
