//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::{Strategy, TestRng};

/// Strategy for `Vec`s with element strategy `S` and length drawn from a
/// half-open range.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// `vec(strategy, 0..50)`: vectors of 0 to 49 elements.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + (rng.next_u64() % span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
