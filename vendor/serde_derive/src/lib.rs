//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` working
//! against the vendored `serde` shim's `Value` data model. Because the
//! real `syn`/`quote` crates are unavailable offline, the item is parsed
//! directly from the raw `proc_macro::TokenStream` and the impl is
//! emitted as source text.
//!
//! Supported shapes — exactly what this workspace derives on:
//!
//! * structs with named fields (including `#[serde(skip)]` fields, which
//!   are omitted on serialize and `Default`-filled on deserialize);
//! * tuple structs (a 1-field newtype serializes transparently as its
//!   inner value; wider tuples as a sequence);
//! * enums with unit, tuple, and struct variants (externally tagged, as
//!   in real serde: unit variants as a string, data variants as a
//!   one-entry map).
//!
//! Generic types and non-`serde(skip)` attributes are intentionally
//! rejected with a compile error rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a struct or struct variant.
struct Field {
    name: String,
    skip: bool,
}

/// The field layout of a struct or enum variant.
enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    fields: Fields,
}

/// A parsed derive target.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    src.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    src.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

/// Advance past attributes (`#[...]`), returning whether any of them was
/// `#[serde(skip)]`.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while let Some(TokenTree::Punct(p)) = toks.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1;
        match toks.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                skip |= attr_is_serde_skip(&g.stream());
                *i += 1;
            }
            other => panic!("expected attribute body after `#`, found {other:?}"),
        }
    }
    skip
}

/// Does this attribute body read `serde(skip)` (possibly among others)?
fn attr_is_serde_skip(stream: &TokenStream) -> bool {
    let toks: Vec<TokenTree> = stream.clone().into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            let inner: Vec<String> = args.stream().into_iter().map(|t| t.to_string()).collect();
            if inner.iter().any(|t| t == "skip") {
                return true;
            }
            panic!(
                "this offline serde_derive shim only supports #[serde(skip)], found #[serde({})]",
                inner.join("")
            );
        }
        _ => false, // doc comments and other inert attributes
    }
}

/// Advance past a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);

    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("the offline serde_derive shim does not support generic type `{name}`");
        }
    }

    match kind.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(&g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(&g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unsupported struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for `{name}`, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(&body),
            }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Parse `name: Type, ...` named fields, keeping names and skip flags.
fn parse_named_fields(stream: &TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let skip = skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected field name, found {other:?}"),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        consume_type(&toks, &mut i);
        fields.push(Field { name, skip });
    }
    fields
}

/// Advance past a type, stopping at a top-level `,` (angle-bracket aware:
/// commas inside `<...>` do not terminate the field).
fn consume_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = toks.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    *i += 1; // consume the separator
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Count the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: &TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        if i >= toks.len() {
            break; // trailing comma
        }
        consume_type(&toks, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: &TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected variant name, found {other:?}"),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(&g.stream()))
            }
            _ => Fields::Unit,
        };
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            } else if p.as_char() == '=' {
                panic!("explicit discriminants are not supported by the shim");
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn serialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".to_owned(),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::std::default::Default::default()", f.name)
                    } else {
                        format!(
                            "{0}: ::serde::de::field(__map, \"{0}\", \"{name}\")?",
                            f.name
                        )
                    }
                })
                .collect();
            format!(
                "let __map = __value.as_map().ok_or_else(|| \
                 ::serde::de::Error::expected(\"map\", \"{name}\", __value))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Fields::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::de::element(__seq, {i}, \"{name}\")?"))
                .collect();
            format!(
                "let __seq = __value.as_seq().ok_or_else(|| \
                 ::serde::de::Error::expected(\"sequence\", \"{name}\", __value))?;\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::Value) -> \
         ::std::result::Result<{name}, ::serde::de::Error> {{\n{body}\n}}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.fields {
                Fields::Unit => format!(
                    "{name}::{vname} => \
                     ::serde::Value::Str(::std::string::String::from(\"{vname}\"))"
                ),
                Fields::Tuple(1) => format!(
                    "{name}::{vname}(__f0) => ::serde::Value::Map(::std::vec![(\
                     ::std::string::String::from(\"{vname}\"), \
                     ::serde::Serialize::to_value(__f0))])"
                ),
                Fields::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                        .collect();
                    format!(
                        "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![(\
                         ::std::string::String::from(\"{vname}\"), \
                         ::serde::Value::Seq(::std::vec![{}]))])",
                        binds.join(", "),
                        items.join(", ")
                    )
                }
                Fields::Named(fields) => {
                    let binds: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{0}: __{0}", f.name))
                        .collect();
                    let entries: Vec<String> = fields
                        .iter()
                        .filter(|f| !f.skip)
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{0}\"), \
                                 ::serde::Serialize::to_value(__{0}))",
                                f.name
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![(\
                         ::std::string::String::from(\"{vname}\"), \
                         ::serde::Value::Map(::std::vec![{}]))])",
                        binds.join(", "),
                        entries.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         match self {{ {} }}\n\
         }}\n\
         }}",
        arms.join(",\n")
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0})", v.name))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.fields {
                Fields::Unit => None,
                Fields::Tuple(1) => Some(format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::from_value(__payload)?))"
                )),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::de::element(__seq, {i}, \"{name}\")?"))
                        .collect();
                    Some(format!(
                        "\"{vname}\" => {{ let __seq = __payload.as_seq().ok_or_else(|| \
                         ::serde::de::Error::expected(\"sequence\", \"{name}\", __payload))?; \
                         ::std::result::Result::Ok({name}::{vname}({})) }}",
                        elems.join(", ")
                    ))
                }
                Fields::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            if f.skip {
                                format!("{}: ::std::default::Default::default()", f.name)
                            } else {
                                format!(
                                    "{0}: ::serde::de::field(__vmap, \"{0}\", \"{name}\")?",
                                    f.name
                                )
                            }
                        })
                        .collect();
                    Some(format!(
                        "\"{vname}\" => {{ let __vmap = __payload.as_map().ok_or_else(|| \
                         ::serde::de::Error::expected(\"map\", \"{name}\", __payload))?; \
                         ::std::result::Result::Ok({name}::{vname} {{ {} }}) }}",
                        inits.join(", ")
                    ))
                }
            }
        })
        .collect();

    let str_arm = format!(
        "::serde::Value::Str(__s) => match __s.as_str() {{\n{}\n\
         __other => ::std::result::Result::Err(\
         ::serde::de::Error::unknown_variant(__other, \"{name}\")),\n}}",
        if unit_arms.is_empty() {
            String::new()
        } else {
            format!("{},", unit_arms.join(",\n"))
        }
    );
    let map_arm = format!(
        "::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
         let (__tag, __payload) = &__m[0];\n\
         match __tag.as_str() {{\n{}\n\
         __other => ::std::result::Result::Err(\
         ::serde::de::Error::unknown_variant(__other, \"{name}\")),\n}}\n}}",
        if tagged_arms.is_empty() {
            String::new()
        } else {
            format!("{},", tagged_arms.join(",\n"))
        }
    );
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::Value) -> \
         ::std::result::Result<{name}, ::serde::de::Error> {{\n\
         match __value {{\n{str_arm},\n{map_arm},\n\
         __other => ::std::result::Result::Err(\
         ::serde::de::Error::expected(\"enum\", \"{name}\", __other)),\n\
         }}\n}}\n}}"
    )
}
