//! Adversarial ingestion tests: the committed hostile-input corpus plus
//! deterministic byte-mutation fuzzing for both text parsers.
//!
//! Both parsers are promised **total over arbitrary input** — any byte
//! sequence either parses or returns a typed error, without panicking,
//! hanging, or allocating beyond the caps in `atlas_liberty::limits` and
//! `atlas_netlist::verilog_limits`. This file is that promise's proof:
//!
//! * every file under `tests/corpus/liblite/` must make
//!   `Library::from_liblite` return `Err`, and every file under
//!   `tests/corpus/verilog/` must make `Design::from_verilog` return
//!   `Err` — each case runs under a watchdog so a hang or a panic fails
//!   the suite loudly instead of wedging it;
//! * ≥ 1024 mutation cases per parser: valid serialized output with a
//!   handful of deterministic byte flips and truncations applied must
//!   never panic, and on the off chance a mutant still parses, its
//!   re-serialization must round-trip;
//! * round-trip properties: `from_liblite(to_liblite(lib)) == lib` for
//!   randomized libraries and `from_verilog(to_verilog(d)) == d` for
//!   randomized generated designs, plus rejection of non-finite numbers.
//!
//! The corpus is the regression memory: any input that ever panicked,
//! hung, or mis-parsed gets minimized and committed here (see the
//! "untrusted ingestion" section of `docs/ARCHITECTURE.md`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::time::Duration;

use atlas_designs::DesignConfig;
use atlas_liberty::{LibCell, Library, ParseLibErrorKind, SramMacro};
use atlas_netlist::Design;
use proptest::prelude::*;

/// Per-case wall-clock bound. A single parse of a corpus-sized input
/// takes microseconds; ten seconds of headroom keeps slow CI runners
/// from flaking while still catching any real hang.
const CASE_BUDGET: Duration = Duration::from_secs(10);

/// Every corpus file across both formats, at minimum (the ISSUE floor).
const MIN_CORPUS_FILES: usize = 40;

fn corpus_dir(format: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(format)
}

/// Run `f` on a watchdog thread: a panic or an overrun of [`CASE_BUDGET`]
/// fails the test with `label` instead of aborting or wedging the suite.
fn bounded<T: Send + 'static>(label: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::Builder::new()
        .name(format!("hostile-{label}"))
        .spawn(move || {
            let _ = tx.send(catch_unwind(AssertUnwindSafe(f)));
        })
        .expect("spawn watchdog thread");
    match rx.recv_timeout(CASE_BUDGET) {
        Ok(Ok(value)) => {
            let _ = handle.join();
            value
        }
        Ok(Err(payload)) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            panic!("case `{label}` panicked: {msg}");
        }
        // The worker thread is leaked (it is stuck), but the test fails
        // loudly with the offending case's name.
        Err(_) => panic!("case `{label}` exceeded the {CASE_BUDGET:?} budget (hang?)"),
    }
}

/// Load a corpus directory: `(file name, contents as lossy UTF-8)`,
/// sorted by name so failures reproduce in a stable order.
fn corpus_files(format: &str, extension: &str) -> Vec<(String, String)> {
    let dir = corpus_dir(format);
    let mut files: Vec<(String, String)> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read corpus dir {}: {e}", dir.display()))
        .map(|entry| entry.expect("corpus dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == extension))
        .map(|p| {
            let name = p
                .file_name()
                .expect("file name")
                .to_string_lossy()
                .into_owned();
            // Lossy: some corpus files are deliberately not valid UTF-8
            // (NUL bytes, truncated multi-byte sequences).
            let text =
                String::from_utf8_lossy(&std::fs::read(&p).expect("read corpus file")).into_owned();
            (name, text)
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "corpus dir {} is empty", dir.display());
    files
}

#[test]
fn liblite_corpus_is_rejected_with_typed_errors() {
    for (name, text) in corpus_files("liblite", "lib") {
        let label = name.clone();
        let result = bounded(&name, move || Library::from_liblite(&text));
        let err = result.err().unwrap_or_else(|| {
            panic!("corpus file `{label}` parsed as a valid library; hostile inputs must Err")
        });
        // The error is typed and positioned, not a bare string.
        assert!(err.line() >= 1, "`{label}`: error line must be 1-based");
        assert!(err.column() >= 1, "`{label}`: error column must be 1-based");
        assert!(!err.kind().label().is_empty());
    }
}

#[test]
fn verilog_corpus_is_rejected_with_typed_errors() {
    for (name, text) in corpus_files("verilog", "v") {
        let label = name.clone();
        let result = bounded(&name, move || Design::from_verilog(&text));
        let err = result.err().unwrap_or_else(|| {
            panic!("corpus file `{label}` parsed as a valid design; hostile inputs must Err")
        });
        assert!(err.line() >= 1, "`{label}`: error line must be 1-based");
        assert!(
            !err.message().is_empty(),
            "`{label}`: error must carry a message"
        );
    }
}

#[test]
fn corpus_meets_the_size_floor() {
    let total = corpus_files("liblite", "lib").len() + corpus_files("verilog", "v").len();
    assert!(
        total >= MIN_CORPUS_FILES,
        "hostile corpus shrank to {total} files (floor: {MIN_CORPUS_FILES}); \
         corpus files are regression memory — add, never remove"
    );
}

/// Apply deterministic mutations to a valid serialized seed: a handful
/// of byte overwrites, then an optional truncation. `truncate_at` past
/// the end means "keep the whole input".
fn mutate(seed: &str, flips: &[(usize, u8)], truncate_at: usize) -> String {
    let mut bytes = seed.as_bytes().to_vec();
    for &(pos, value) in flips {
        let i = pos % bytes.len();
        bytes[i] = value;
    }
    if truncate_at < bytes.len() {
        bytes.truncate(truncate_at);
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// A small random library: a prefix of the synthetic cells and SRAMs
/// with every characterized number rescaled, so round-trips exercise
/// arbitrary (finite, positive) floating-point formatting.
fn arb_library() -> impl Strategy<Value = Library> {
    (1u64..1_000_000, 1usize..12, 0usize..3, 0.03f64..30.0).prop_map(
        |(seed, keep, srams, scale)| {
            let base = Library::synthetic_40nm();
            let cells: Vec<LibCell> = base
                .cells()
                .iter()
                .take(keep)
                .map(|c| {
                    LibCell::new(
                        c.name(),
                        c.class(),
                        c.drive(),
                        c.area() * scale,
                        c.input_cap() * scale,
                        c.clock_cap() * scale,
                        c.leakage() * scale,
                        c.drive_res() * scale,
                        c.max_load() * scale,
                        c.switch_energy().scaled(scale),
                        c.clock_energy() * scale,
                    )
                })
                .collect();
            let srams: Vec<SramMacro> = base
                .srams()
                .iter()
                .take(srams)
                .map(|s| {
                    SramMacro::new(
                        s.name(),
                        s.words(),
                        s.bits(),
                        s.read_energy() * scale,
                        s.write_energy() * scale,
                        s.leakage() * scale,
                        s.pin_cap() * scale,
                        s.area() * scale,
                    )
                })
                .collect();
            Library::new(
                format!("fuzz{seed}"),
                0.6 + (seed % 100) as f64 / 125.0,
                0.5 + (seed % 7) as f64 * 0.25,
                cells,
                srams,
            )
        },
    )
}

/// A small random design configuration (same family as
/// `tests/properties.rs`, kept small: each case serializes and reparses
/// the whole netlist).
fn arb_design_cfg() -> impl Strategy<Value = DesignConfig> {
    (0u64..1000, 6usize..10, 1usize..3).prop_map(|(seed, width, fe)| DesignConfig {
        name: format!("F{seed}"),
        seed,
        scale: 1.0,
        width,
        pi_count: 16,
        frontend_units: fe,
        core_units: 1,
        lsu_units: 1,
        dcache_units: 1,
        ptw_units: 1,
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        // The fuzz floor from the CI contract: at least 1024 mutation
        // cases per parser per run (see the `fuzz-smoke` job).
        cases: 1024,
        .. ProptestConfig::default()
    })]

    /// Byte-flipped/truncated liblite text never panics or hangs; if a
    /// mutant happens to still parse, its re-serialization round-trips.
    #[test]
    fn mutated_liblite_never_panics(
        flips in collection::vec((0usize..1 << 20, 0u32..256), 1..9),
        truncate_at in 0usize..1 << 20,
    ) {
        let seed = Library::synthetic_40nm().to_liblite();
        let flips: Vec<(usize, u8)> = flips.into_iter().map(|(p, b)| (p, b as u8)).collect();
        let mutant = mutate(&seed, &flips, truncate_at % (seed.len() + 1));
        let label = format!("liblite-mutant-{flips:?}");
        let parsed = bounded(&label, move || Library::from_liblite(&mutant));
        if let Ok(lib) = parsed {
            let again = Library::from_liblite(&lib.to_liblite());
            prop_assert_eq!(again.as_ref(), Ok(&lib));
        }
    }

    /// Byte-flipped/truncated Verilog text never panics or hangs; any
    /// mutant that still parses re-serializes to the same design.
    #[test]
    fn mutated_verilog_never_panics(
        flips in collection::vec((0usize..1 << 20, 0u32..256), 1..9),
        truncate_at in 0usize..1 << 20,
    ) {
        let seed = DesignConfig::tiny().generate().to_verilog();
        let flips: Vec<(usize, u8)> = flips.into_iter().map(|(p, b)| (p, b as u8)).collect();
        let mutant = mutate(&seed, &flips, truncate_at % (seed.len() + 1));
        let label = format!("verilog-mutant-{flips:?}");
        let parsed = bounded(&label, move || Design::from_verilog(&mutant));
        if let Ok(d) = parsed {
            let again = Design::from_verilog(&d.to_verilog());
            prop_assert_eq!(again.as_ref(), Ok(&d));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64, // each case writes and reparses a full library
        .. ProptestConfig::default()
    })]

    /// The liblite writer/parser pair is the identity on libraries.
    #[test]
    fn liblite_round_trips_exactly(lib in arb_library()) {
        let text = lib.to_liblite();
        let back = Library::from_liblite(&text);
        prop_assert_eq!(back.as_ref(), Ok(&lib));
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case generates + serializes + reparses a netlist
        .. ProptestConfig::default()
    })]

    /// The Verilog writer/reader pair is the identity on any design the
    /// generator can produce.
    #[test]
    fn verilog_round_trips_exactly(cfg in arb_design_cfg()) {
        let d = cfg.generate();
        let text = d.to_verilog();
        let back = Design::from_verilog(&text);
        prop_assert_eq!(back.as_ref(), Ok(&d));
    }
}

/// Non-finite numbers must not survive a write/parse cycle: the writer
/// emits `NaN`/`inf` tokens and the parser rejects them as typed errors
/// instead of resurrecting them as numbers.
#[test]
fn non_finite_numbers_are_rejected_on_reparse() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let base = Library::synthetic_40nm();
        let lib = Library::new(
            base.name(),
            bad,
            base.clock_period_ns(),
            base.cells().to_vec(),
            base.srams().to_vec(),
        );
        let err = Library::from_liblite(&lib.to_liblite())
            .expect_err("a non-finite voltage must not round-trip");
        assert!(
            matches!(
                err.kind(),
                ParseLibErrorKind::BadNumber | ParseLibErrorKind::UnexpectedToken
            ),
            "non-finite voltage {bad}: unexpected error kind {:?}",
            err.kind()
        );
    }
}
