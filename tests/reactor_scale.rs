//! Reactor scale acceptance test, in its own integration-test binary so
//! the OS-thread-count assertion is not perturbed by unrelated tests
//! running in the same process.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use atlas_core::pipeline::{train_atlas, ExperimentConfig};
use atlas_serve::reactor::{Reactor, ReactorConfig};
use atlas_serve::{AtlasService, PredictResponse, ServiceConfig, StatsResponse};

/// A configuration small enough to train inside the test suite.
fn micro_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick();
    cfg.cycles = 16;
    cfg.scale = 0.12;
    cfg.pretrain.steps = 14;
    cfg.pretrain.hidden_dim = 12;
    cfg.finetune.cycles_per_design = 6;
    cfg.finetune.gbdt.n_estimators = 16;
    cfg
}

/// Current thread count of this process, from /proc (Linux).
fn os_threads() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .expect("Linux /proc")
        .lines()
        .find(|l| l.starts_with("Threads:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|n| n.parse().ok())
        .expect("Threads: line")
}

fn ask(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    let framed = format!("{line}\n");
    stream.write_all(framed.as_bytes()).expect("writes");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("reads");
    reply
}

/// The reactor acceptance test: ≥ 512 concurrent idle TCP connections on
/// one event-loop thread — zero thread growth — while requests on active
/// connections (including an inline-schedule one and the `stats` verb)
/// keep being answered.
#[test]
fn reactor_holds_512_idle_connections_without_threads() {
    let cfg = micro_config();
    let trained = train_atlas(&cfg);
    let workers = 2;
    let service = Arc::new(AtlasService::start_with(
        trained.model,
        cfg,
        ServiceConfig {
            workers,
            ..ServiceConfig::default()
        },
    ));
    let handle = Reactor::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        ReactorConfig::default(),
    )
    .expect("binds")
    .spawn()
    .expect("spawns");

    // Service workers + reactor thread are already up; from here on the
    // thread count must not move.
    let before = os_threads();
    let idle: Vec<TcpStream> = (0..512)
        .map(|_| TcpStream::connect(handle.addr()).expect("connects"))
        .collect();
    for _ in 0..2000 {
        if handle.stats().active >= 512 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert!(
        handle.stats().active >= 512,
        "reactor admitted only {} connections",
        handle.stats().active
    );
    assert_eq!(
        os_threads(),
        before,
        "512 idle connections must not change the OS thread count"
    );

    // Requests still flow: a preset prediction, an inline schedule, and
    // the stats verb, all on a fresh 513th connection.
    let mut active = TcpStream::connect(handle.addr()).expect("connects");
    active.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(active.try_clone().expect("clones"));
    let resp: PredictResponse = serde_json::from_str(&ask(
        &mut active,
        &mut reader,
        r#"{"id":1,"design":"C2","workload":"W1","cycles":8}"#,
    ))
    .expect("prediction parses");
    assert_eq!(resp.id, Some(1));
    assert!(resp.mean_total_w > 0.0);

    // One request per line: the inline schedule must stay on one line.
    let inline: PredictResponse = serde_json::from_str(&ask(
        &mut active,
        &mut reader,
        r#"{"id":2,"design":"C2","workload":"burst","cycles":8,"phases":[{"activity":0.5,"min_len":2,"max_len":4},{"activity":0.02,"min_len":4,"max_len":8}]}"#,
    ))
    .expect("inline prediction parses");
    assert_eq!(inline.workload, "burst");
    assert_ne!(inline.per_cycle_total_w, resp.per_cycle_total_w);

    let stats: StatsResponse =
        serde_json::from_str(&ask(&mut active, &mut reader, r#"{"id":3,"verb":"stats"}"#))
            .expect("stats parses");
    assert_eq!(stats.requests, 2);
    assert!(stats.embedding_cache.weight > 0);
    assert!(stats.embedding_cache.weight <= stats.embedding_cache.budget);

    drop(idle);
    handle.shutdown().expect("clean shutdown");
}
