//! Reactor scale acceptance test, in its own integration-test binary so
//! the OS-thread-count assertion is not perturbed by unrelated tests
//! running in the same process.

use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use atlas_core::pipeline::{train_atlas, ExperimentConfig};
use atlas_serve::reactor::{Reactor, ReactorConfig, ReactorPool};
use atlas_serve::{AtlasService, PredictResponse, ServiceConfig, StatsResponse};

/// Every test in this binary reasons about the process-global OS thread
/// count, so they must not overlap; the harness may still run them on
/// concurrent threads, hence an explicit lock rather than relying on
/// `--test-threads=1`.
static SERIAL: Mutex<()> = Mutex::new(());

/// A configuration small enough to train inside the test suite.
fn micro_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick();
    cfg.cycles = 16;
    cfg.scale = 0.12;
    cfg.pretrain.steps = 14;
    cfg.pretrain.hidden_dim = 12;
    cfg.finetune.cycles_per_design = 6;
    cfg.finetune.gbdt.n_estimators = 16;
    cfg
}

/// Current thread count of this process, from /proc (Linux).
fn os_threads() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .expect("Linux /proc")
        .lines()
        .find(|l| l.starts_with("Threads:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|n| n.parse().ok())
        .expect("Threads: line")
}

/// Thread count once it has stopped moving: the test-boundary window
/// (the previous test's thread exiting, a queued test's thread being
/// spawned into its blocked state) settles out before the baseline is
/// taken.
fn settled_threads() -> u64 {
    let mut last = os_threads();
    let mut stable_since = Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(10));
        let now = os_threads();
        if now != last {
            last = now;
            stable_since = Instant::now();
        } else if stable_since.elapsed() >= Duration::from_millis(50) {
            return now;
        }
    }
}

fn ask(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    let framed = format!("{line}\n");
    stream.write_all(framed.as_bytes()).expect("writes");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("reads");
    reply
}

/// The reactor acceptance test: ≥ 512 concurrent idle TCP connections on
/// one event-loop thread — zero thread growth — while requests on active
/// connections (including an inline-schedule one and the `stats` verb)
/// keep being answered.
#[test]
fn reactor_holds_512_idle_connections_without_threads() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = micro_config();
    let trained = train_atlas(&cfg);
    let workers = 2;
    let service = Arc::new(AtlasService::start_with(
        trained.model,
        cfg,
        ServiceConfig {
            workers,
            ..ServiceConfig::default()
        },
    ));
    let frontend: Arc<AtlasService> = Arc::clone(&service);
    let handle = Reactor::bind(frontend, "127.0.0.1:0", ReactorConfig::default())
        .expect("binds")
        .spawn()
        .expect("spawns");

    // Service workers + reactor thread are already up; from here on the
    // thread count must not move.
    let before = os_threads();
    let idle: Vec<TcpStream> = (0..512)
        .map(|_| TcpStream::connect(handle.addr()).expect("connects"))
        .collect();
    for _ in 0..2000 {
        if handle.stats().active >= 512 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert!(
        handle.stats().active >= 512,
        "reactor admitted only {} connections",
        handle.stats().active
    );
    assert_eq!(
        os_threads(),
        before,
        "512 idle connections must not change the OS thread count"
    );

    // Requests still flow: a preset prediction, an inline schedule, and
    // the stats verb, all on a fresh 513th connection.
    let mut active = TcpStream::connect(handle.addr()).expect("connects");
    active.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(active.try_clone().expect("clones"));
    let resp: PredictResponse = serde_json::from_str(&ask(
        &mut active,
        &mut reader,
        r#"{"id":1,"design":"C2","workload":"W1","cycles":8}"#,
    ))
    .expect("prediction parses");
    assert_eq!(resp.id, Some(1));
    assert!(resp.mean_total_w > 0.0);

    // One request per line: the inline schedule must stay on one line.
    let inline: PredictResponse = serde_json::from_str(&ask(
        &mut active,
        &mut reader,
        r#"{"id":2,"design":"C2","workload":"burst","cycles":8,"phases":[{"activity":0.5,"min_len":2,"max_len":4},{"activity":0.02,"min_len":4,"max_len":8}]}"#,
    ))
    .expect("inline prediction parses");
    assert_eq!(inline.workload, "burst");
    assert_ne!(inline.per_cycle_total_w, resp.per_cycle_total_w);

    let stats: StatsResponse =
        serde_json::from_str(&ask(&mut active, &mut reader, r#"{"id":3,"verb":"stats"}"#))
            .expect("stats parses");
    assert_eq!(stats.requests, 2);
    assert!(stats.embedding_cache.weight > 0);
    assert!(stats.embedding_cache.weight <= stats.embedding_cache.budget);

    drop(idle);
    handle.shutdown().expect("clean shutdown");
}

/// The multi-reactor acceptance test: an N-thread [`ReactorPool`] holds
/// 512 idle connections spread across its reactors under an *exact*
/// serving-fleet thread bound — `workers` pool threads plus N reactor
/// threads, and zero growth from the connections themselves — while the
/// `stats` verb reports the pool shape (`reactor_threads`, per-reactor
/// counters) over the wire.
#[test]
fn reactor_pool_spreads_512_idle_connections_with_exact_thread_bound() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = micro_config();
    let trained = train_atlas(&cfg);
    let workers = 2usize;
    let reactors = 2usize;

    let base = settled_threads();
    let service = Arc::new(AtlasService::start_with(
        trained.model,
        cfg,
        ServiceConfig {
            workers,
            ..ServiceConfig::default()
        },
    ));
    let frontend: Arc<AtlasService> = Arc::clone(&service);
    let pool = ReactorPool::bind(frontend, "127.0.0.1:0", ReactorConfig::default(), reactors)
        .expect("binds");
    let reuseport = pool.reuseport();
    let handle = pool.spawn().expect("spawns");
    let fleet = base + (workers + reactors) as u64;
    assert_eq!(
        os_threads(),
        fleet,
        "the serving fleet is exactly {workers} workers + {reactors} reactors"
    );

    let idle: Vec<TcpStream> = (0..512)
        .map(|_| TcpStream::connect(handle.addr()).expect("connects"))
        .collect();
    for _ in 0..2000 {
        if handle.stats().active >= 512 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(
        handle.stats().active >= 512,
        "pool admitted only {} connections",
        handle.stats().active
    );
    assert_eq!(
        os_threads(),
        fleet,
        "512 idle connections must not change the OS thread count"
    );

    // With SO_REUSEPORT the kernel hashes the 4-tuple, so 512 distinct
    // source ports land on every listener; under the shared-accept-queue
    // fallback the spread is whichever loop wins the race, so only the
    // per-reactor accounting (not the spread) is asserted there.
    let per = handle.reactor_stats();
    assert_eq!(per.len(), reactors);
    let accepted: u64 = per.iter().map(|r| r.accepted).sum();
    assert!(accepted >= 512, "accepted {accepted} < 512");
    if reuseport {
        for (i, r) in per.iter().enumerate() {
            assert!(
                r.accepted > 0,
                "reactor {i} accepted nothing — SO_REUSEPORT did not spread 512 connections"
            );
        }
    }

    // The pool shape is visible over the wire: requests flow, and the
    // stats verb reports the thread count and per-reactor counters.
    let mut active = TcpStream::connect(handle.addr()).expect("connects");
    active.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(active.try_clone().expect("clones"));
    let resp: PredictResponse = serde_json::from_str(&ask(
        &mut active,
        &mut reader,
        r#"{"id":1,"design":"C2","workload":"W1","cycles":8}"#,
    ))
    .expect("prediction parses");
    assert!(resp.mean_total_w > 0.0);
    let stats: StatsResponse =
        serde_json::from_str(&ask(&mut active, &mut reader, r#"{"id":2,"verb":"stats"}"#))
            .expect("stats parses");
    assert_eq!(stats.reactor_threads, reactors);
    assert_eq!(stats.reactors.len(), reactors);
    let wire_active: u64 = stats.reactors.iter().map(|r| r.active).sum();
    assert!(
        wire_active >= 513,
        "stats verb reports {wire_active} active connections, expected the 512 idle + this one"
    );

    drop(idle);
    handle.shutdown().expect("clean shutdown");
}

/// Back-pressure isolation across a pool: a client that pipelines
/// requests without ever reading replies trips the inflight cap and has
/// its read side paused — on its own reactor only — while a
/// well-behaved client on the same pool keeps getting timely answers.
/// Once the flooder finally reads, every one of its replies arrives.
#[test]
fn backpressured_connection_does_not_stall_the_pool() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = micro_config();
    let trained = train_atlas(&cfg);
    let service = Arc::new(AtlasService::start_with(
        trained.model,
        cfg,
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    ));
    let frontend: Arc<AtlasService> = Arc::clone(&service);
    let pool = ReactorPool::bind(
        frontend,
        "127.0.0.1:0",
        ReactorConfig {
            // Low enough that a pipelining client trips it, high enough
            // that a request-at-a-time client (inflight 1) never does.
            max_inflight: 2,
            ..ReactorConfig::default()
        },
        2,
    )
    .expect("binds");
    let handle = pool.spawn().expect("spawns");

    // Warm the one key every client uses, so the flood drains through
    // the workers as cache hits rather than serial recomputes.
    let line = r#"{"design":"C2","workload":"W1","cycles":8}"#;
    let mut warm = TcpStream::connect(handle.addr()).expect("connects");
    warm.set_nodelay(true).expect("nodelay");
    let mut warm_reader = BufReader::new(warm.try_clone().expect("clones"));
    let _: PredictResponse =
        serde_json::from_str(&ask(&mut warm, &mut warm_reader, line)).expect("warmup parses");

    // The abuser pipelines 64 requests and reads nothing.
    const FLOOD: u64 = 64;
    let mut abuser = TcpStream::connect(handle.addr()).expect("connects");
    abuser.set_nodelay(true).expect("nodelay");
    let mut burst = String::new();
    for i in 0..FLOOD {
        burst.push_str(&format!(
            r#"{{"id":{i},"design":"C2","workload":"W1","cycles":8}}"#
        ));
        burst.push('\n');
    }
    abuser.write_all(burst.as_bytes()).expect("flood writes");

    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.stats().pauses == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(
        handle.stats().pauses > 0,
        "the flooding connection was never paused"
    );

    // While the flooder sits paused with its replies unread, a
    // well-behaved client on the same pool is answered promptly.
    let mut victim = TcpStream::connect(handle.addr()).expect("connects");
    victim.set_nodelay(true).expect("nodelay");
    victim
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut victim_reader = BufReader::new(victim.try_clone().expect("clones"));
    for i in 0..8u64 {
        let resp: PredictResponse = serde_json::from_str(&ask(
            &mut victim,
            &mut victim_reader,
            &format!(
                r#"{{"id":{},"design":"C2","workload":"W1","cycles":8}}"#,
                1000 + i
            ),
        ))
        .expect("victim prediction parses while the flooder is paused");
        assert_eq!(resp.id, Some(1000 + i));
    }

    // Isolation is per-reactor: the request-at-a-time clients never
    // exceed inflight 1, so only the flooder's own reactor records
    // back-pressure pauses.
    let paused_reactors = handle
        .reactor_stats()
        .iter()
        .filter(|r| r.pauses > 0)
        .count();
    assert_eq!(
        paused_reactors, 1,
        "back-pressure must be confined to the flooder's own reactor"
    );

    // The flooder drains: every pipelined reply arrives (order may
    // interleave across the two workers).
    abuser
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut abuser_reader = BufReader::new(abuser.try_clone().expect("clones"));
    let mut ids = HashSet::new();
    for _ in 0..FLOOD {
        let mut reply = String::new();
        abuser_reader.read_line(&mut reply).expect("flood reply");
        let resp: PredictResponse = serde_json::from_str(&reply).expect("flood reply parses");
        ids.insert(resp.id.expect("flood replies carry ids"));
    }
    assert_eq!(
        ids.len(),
        FLOOD as usize,
        "every flooded request answered exactly once"
    );

    drop(warm);
    drop(victim);
    handle.shutdown().expect("clean shutdown");
}
