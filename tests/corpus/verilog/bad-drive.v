module u (n0, n1);
  input n0;
  output n1;
  // submodule sm0 t.u t
  INV_X9 u0 (.A(n0), .Y(n1)); // sm0 t.u
endmodule
