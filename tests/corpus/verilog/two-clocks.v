module clk2 (n0, n1, n2, n3, n4, n5);
  input n0;
  input n1;
  input n2;
  input n3;
  output n4;
  output n5;
  // submodule sm0 t.u t
  DFF_X1 u0 (.A(n2), .CK(n0), .Y(n4)); // sm0 t.u
  DFF_X1 u1 (.A(n3), .CK(n1), .Y(n5)); // sm0 t.u
endmodule
