module gap (n0, n9);
  input n0;
  input n9;
  // submodule sm0 t.u t
  INV_X1 u0 (.A(n0), .Y(n9)); // sm0 t.u
endmodule
