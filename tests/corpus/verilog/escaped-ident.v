module \esc (n0);
  input \esc ;
endmodule
