module s (n0, n1, n2, n3, n4, n5);
  input n0;
  input n1;
  input n2;
  input n3;
  input n4;
  output n5;
  // submodule sm0 t.u t
  SRAM_12 u0 (.REN(n1), .WEN(n2), .ADDR(n3), .DATA(n4), .CK(n0), .Y(n5)); // sm0 t.u
endmodule
