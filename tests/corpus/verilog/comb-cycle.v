module loopy (n0, n3);
  input n0;
  output n3;
  wire n1;
  wire n2;
  // submodule sm0 t.u t
  AND2_X1 u0 (.A(n0), .B(n2), .Y(n1)); // sm0 t.u
  INV_X1 u1 (.A(n1), .Y(n2)); // sm0 t.u
  BUF_X1 u2 (.A(n1), .Y(n3)); // sm0 t.u
endmodule
