module w (n0, n2);
  input n0;
  output n2;
  wire n1;
  // submodule sm0 t.u t
  INV_X1 u0 (.A(n0), .Y(n2)); // sm0 t.u
endmodule
