module o (n0, n1);
  input n0;
  output n1;
  // submodule sm1 t.u t
  INV_X1 u0 (.A(n0), .Y(n1)); // sm1 t.u
endmodule
