module bomb (n4000000000);
  input n4000000000;
endmodule
