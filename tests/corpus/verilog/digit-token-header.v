module m9 9name (n0);
endmodule
