module u (n0, n1, n2);
  input n0;
  input n1;
  output n2;
  // submodule sm0 t.u t
  DFF_X2 u0 (.A(n1), .CK(n0), .Y(n2)); // sm0 t.u
endmodule
