module q (n0, n1, n2);
  input n0;
  input n1;
  output n2;
  // submodule sm0 t.u t
  DFF_X1 u0 (.A(n1), .Y(n2)); // sm0 t.u
endmodule
