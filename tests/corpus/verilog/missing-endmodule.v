module trunc (n0, n1);
  input n0;
  output n1;
