not verilog at all
