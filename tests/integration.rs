//! Cross-crate integration tests: the full substrate stack and the ATLAS
//! pipeline wired together end to end.

use atlas_designs::DesignConfig;
use atlas_layout::{read_spef, run_layout, write_spef, LayoutConfig};
use atlas_liberty::{Library, PowerGroup};
use atlas_power::{compute_power, metrics};
use atlas_sim::{simulate, PhasedWorkload, Simulator};

fn lib() -> Library {
    Library::synthetic_40nm()
}

/// Design generation → layout → simulation → golden power, with every
/// cross-stage invariant checked in one pass.
#[test]
fn substrate_stack_end_to_end() {
    let lib = lib();
    let gate = DesignConfig::c1().scaled(0.2).generate();
    assert!(gate.validate().is_empty());

    let layout = run_layout(&gate, &lib, &LayoutConfig::default());
    let post = &layout.design;
    assert!(post.validate().is_empty());
    assert!(post.cell_count() > gate.cell_count());
    assert!(layout.report.routed_um > 0.0);

    let cycles = 48;
    let gate_trace = simulate(&gate, &mut PhasedWorkload::w1(3), cycles).expect("gate sims");
    let post_trace = simulate(post, &mut PhasedWorkload::w1(3), cycles).expect("post sims");

    let gate_power = compute_power(&gate, &lib, &gate_trace);
    let post_power = compute_power(post, &lib, &post_trace);

    // The paper's Table III error structure, from first principles:
    for t in 0..cycles {
        assert_eq!(gate_power.group_total(t, PowerGroup::ClockTree), 0.0);
        assert!(post_power.group_total(t, PowerGroup::ClockTree) > 0.0);
        assert!(post_power.total(t) > gate_power.total(t));
    }
    let reg_err = metrics::mape(
        &post_power.group_series(PowerGroup::Register),
        &gate_power.group_series(PowerGroup::Register),
    );
    let comb_err = metrics::mape(
        &post_power.group_series(PowerGroup::Combinational),
        &gate_power.group_series(PowerGroup::Combinational),
    );
    assert!(
        reg_err < 20.0,
        "register group should be stage-stable, got {reg_err:.1}%"
    );
    assert!(
        comb_err > 40.0,
        "combinational gap should be large, got {comb_err:.1}%"
    );
}

/// The three netlist stages (`Ng`, `N+g`, `Np`) are cycle-for-cycle
/// functionally identical at the primary outputs.
#[test]
fn three_stages_are_functionally_equivalent() {
    let lib = lib();
    let gate = DesignConfig::tiny().generate();
    let plus = atlas_layout::restructure::restructure(&gate, 99, 0.5);
    let post = run_layout(&gate, &lib, &LayoutConfig::default()).design;

    let mut sims = [
        Simulator::new(&gate).expect("levelizes"),
        Simulator::new(&plus).expect("levelizes"),
        Simulator::new(&post).expect("levelizes"),
    ];
    let mut stims = [
        PhasedWorkload::w2(5),
        PhasedWorkload::w2(5),
        PhasedWorkload::w2(5),
    ];
    for t in 0..64 {
        for (sim, stim) in sims.iter_mut().zip(stims.iter_mut()) {
            sim.step(stim);
        }
        for k in 1..3 {
            let designs = [&gate, &plus, &post];
            for (po_a, po_b) in designs[0]
                .primary_outputs()
                .iter()
                .zip(designs[k].primary_outputs())
            {
                assert_eq!(
                    sims[0].net_value(*po_a),
                    sims[k].net_value(*po_b),
                    "stage {k} diverged at cycle {t}"
                );
            }
        }
    }
}

/// SPEF written by the layout flow round-trips into the power engine:
/// re-applying the parasitics reproduces the golden power exactly.
#[test]
fn spef_roundtrip_reproduces_power() {
    let lib = lib();
    let gate = DesignConfig::tiny().generate();
    let layout = run_layout(&gate, &lib, &LayoutConfig::default());
    let spef = write_spef(&layout.design);

    // Strip parasitics, then restore them from the SPEF text.
    let mut stripped = layout.design.clone();
    for net in stripped.net_ids().collect::<Vec<_>>() {
        stripped.set_wire_cap(net, 0.0);
    }
    let entries = read_spef(&spef).expect("parses");
    atlas_layout::parasitics::apply_spef(&mut stripped, &entries);

    let trace = simulate(&layout.design, &mut PhasedWorkload::w1(2), 16).expect("sims");
    let a = compute_power(&layout.design, &lib, &trace);
    let b = compute_power(&stripped, &lib, &trace);
    for t in 0..16 {
        assert!((a.total(t) - b.total(t)).abs() < 1e-12);
    }
}

/// Liberty and netlist artifacts survive their text formats.
#[test]
fn artifacts_roundtrip() {
    let lib = lib();
    let text = lib.to_liblite();
    let back = Library::from_liblite(&text).expect("liblite parses");
    assert_eq!(lib, back);

    let design = DesignConfig::tiny().generate();
    let verilog = design.to_verilog();
    assert!(verilog.contains("module TINY"));
    assert!(verilog.matches("SRAM_").count() >= 1);
}

/// The trained model serializes, reloads, and reproduces its predictions
/// bit-for-bit — the deployment path.
#[test]
fn model_persistence_reproduces_predictions() {
    use atlas_core::pipeline::{train_atlas, ExperimentConfig};

    let mut cfg = ExperimentConfig::quick();
    cfg.cycles = 16;
    cfg.scale = 0.12;
    cfg.pretrain.steps = 10;
    cfg.pretrain.hidden_dim = 16;
    cfg.finetune.cycles_per_design = 6;
    cfg.finetune.gbdt.n_estimators = 20;
    let trained = train_atlas(&cfg);

    let lib = cfg.library();
    let gate = cfg.design("C2").generate();
    let trace = simulate(&gate, &mut PhasedWorkload::w1(1), 16).expect("sims");
    let before = trained.model.predict(&gate, &lib, &trace);

    let json = trained.model.to_json().expect("serializes");
    let reloaded = atlas_core::AtlasModel::from_json(&json).expect("parses");
    let after = reloaded.predict(&gate, &lib, &trace);
    assert_eq!(before, after);
}

/// Sub-module decomposition invariants across the whole flow: exact
/// partition at every stage and id-stable alignment.
#[test]
fn submodule_partition_is_exact_and_aligned() {
    let lib = lib();
    let gate = DesignConfig::tiny().generate();
    let plus = atlas_layout::restructure::restructure(&gate, 7, 0.4);
    let post = run_layout(&gate, &lib, &LayoutConfig::default()).design;

    for d in [&gate, &plus, &post] {
        let total: usize = d.submodule_graphs().iter().map(|g| g.node_count()).sum();
        assert_eq!(total, d.cell_count(), "partition must be exact");
    }
    for (i, sm) in gate.submodules().iter().enumerate() {
        assert_eq!(sm.name(), plus.submodules()[i].name());
        assert_eq!(sm.name(), post.submodules()[i].name());
    }
}

/// Workload choice changes power; determinism holds per workload.
#[test]
fn workload_sensitivity_and_determinism() {
    let lib = lib();
    let design = DesignConfig::tiny().generate();
    let t1 = simulate(&design, &mut PhasedWorkload::w1(4), 64).expect("sims");
    let t1_again = simulate(&design, &mut PhasedWorkload::w1(4), 64).expect("sims");
    let t2 = simulate(&design, &mut PhasedWorkload::w2(4), 64).expect("sims");
    assert_eq!(t1, t1_again);

    let p1 = compute_power(&design, &lib, &t1);
    let p1_again = compute_power(&design, &lib, &t1_again);
    let p2 = compute_power(&design, &lib, &t2);
    assert_eq!(p1, p1_again);
    assert_ne!(p1.total_series(), p2.total_series());
}
