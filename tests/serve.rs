//! End-to-end serving tests: train → persist → reload through the
//! registry → serve concurrent requests → verify parity with direct
//! model predictions.

use std::sync::Arc;

use atlas_core::features::build_submodule_data;
use atlas_core::pipeline::{train_atlas, ExperimentConfig};
use atlas_power::PowerTrace;
use atlas_serve::{
    AtlasService, ModelCatalog, ModelRegistry, PredictRequest, RegistryError, ServiceConfig,
    FORMAT_VERSION,
};
use atlas_sim::simulate;
use atlas_sim::WorkloadPhase;

/// A configuration small enough to train inside the test suite.
fn micro_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick();
    cfg.cycles = 16;
    cfg.scale = 0.12;
    cfg.pretrain.steps = 14;
    cfg.pretrain.hidden_dim = 12;
    cfg.finetune.cycles_per_design = 6;
    cfg.finetune.gbdt.n_estimators = 16;
    cfg
}

/// A scratch registry directory unique to this test process.
fn scratch_registry(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("atlas-serve-test-{tag}-{}", std::process::id()))
}

/// Direct (no service) prediction for one request, the reference result.
fn direct_prediction(
    cfg: &ExperimentConfig,
    model: &atlas_core::AtlasModel,
    design: &str,
    workload: &str,
    cycles: usize,
) -> PowerTrace {
    let lib = cfg.library();
    let dcfg = cfg.try_design(design).expect("known design");
    let gate = dcfg.generate();
    let mut w = cfg
        .try_workload(workload, dcfg.seed)
        .expect("known workload");
    let trace = simulate(&gate, &mut w, cycles).expect("simulates");
    let data = build_submodule_data(&gate, &lib);
    model.predict_prepared(&gate, &lib, &data, &trace)
}

/// The PR's acceptance test: a quick model is trained, saved, loaded
/// through the registry, and serves ≥ 8 concurrent requests across ≥ 2
/// designs with results matching direct `AtlasModel` predictions.
#[test]
fn registry_roundtrip_and_concurrent_serving() {
    let cfg = micro_config();
    let trained = train_atlas(&cfg);

    // Persist and reload through the registry.
    let dir = scratch_registry("concurrent");
    let registry = ModelRegistry::open(&dir).expect("registry opens");
    registry
        .save("itest", &trained.model, &cfg)
        .expect("model saves");
    assert_eq!(registry.list().expect("list"), vec!["itest".to_owned()]);
    let saved = registry.load("itest").expect("model loads");
    assert_eq!(saved.header.format_version, FORMAT_VERSION);
    assert_eq!(
        saved.model, trained.model,
        "registry round-trip must preserve the model exactly"
    );

    // Serve 8 concurrent requests across 2 designs × 2 workloads.
    let service = Arc::new(AtlasService::start(
        saved,
        ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        },
    ));
    let cases: Vec<(String, String, usize)> = ["C2", "C4"]
        .iter()
        .flat_map(|d| {
            ["W1", "W2"]
                .iter()
                .map(|w| (d.to_string(), w.to_string(), 10usize))
                .collect::<Vec<_>>()
        })
        .collect();
    // 8 clients: every (design, workload) pair requested twice.
    let responses: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let service = Arc::clone(&service);
                let (design, workload, cycles) = cases[i % cases.len()].clone();
                scope.spawn(move || {
                    let mut req = PredictRequest::new(design, workload, cycles);
                    req.id = Some(i as u64);
                    (req.clone(), service.call(req).expect("request succeeds"))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    assert_eq!(responses.len(), 8);

    // Every response matches the direct model path bit-for-bit.
    for (req, resp) in &responses {
        assert_eq!(resp.id, req.id);
        assert_eq!(resp.cycles, 10);
        let workload = req.workload.as_deref().expect("preset requests have one");
        let direct = direct_prediction(&cfg, &trained.model, &req.design, workload, 10);
        assert_eq!(
            resp.per_cycle_total_w,
            direct.total_series(),
            "served prediction diverged from direct prediction for {}/{workload}",
            req.design,
        );
        assert!(resp.mean_total_w > 0.0);
    }

    let stats = service.stats();
    assert_eq!(stats.requests, 8);
    assert_eq!(stats.errors, 0);

    // A sequential repeat of an already-served key must be a cache hit.
    let warm = service
        .call(PredictRequest::new("C2", "W1", 10))
        .expect("warm request");
    assert!(warm.cache_hit, "sequential repeat must hit the cache");
    assert!(warm.design_cache_hit);

    // Single-flight accounting: 8 concurrent requests over 4 distinct
    // keys computed exactly 4 embeddings — each concurrent duplicate
    // either coalesced onto the in-flight computation or hit the cache.
    let stats = service.stats();
    assert_eq!(stats.embeddings_computed, 4);
    assert_eq!(
        stats.coalesced_requests + stats.embedding_cache.hits,
        5, // 4 concurrent duplicates + the sequential warm repeat
    );

    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Registry rejection paths: wrong format version, tampered config,
/// missing model.
#[test]
fn registry_rejects_incompatible_files() {
    let cfg = micro_config();
    let trained = train_atlas(&cfg);
    let dir = scratch_registry("reject");
    let registry = ModelRegistry::open(&dir).expect("registry opens");
    let path = registry.save("m", &trained.model, &cfg).expect("saves");

    // Wrong version: bump the header's format_version in place.
    let json = std::fs::read_to_string(&path).expect("readable");
    let future_version = format!("\"format_version\":{}", FORMAT_VERSION + 1);
    let tampered = json.replace(
        &format!("\"format_version\":{FORMAT_VERSION}"),
        &future_version,
    );
    assert_ne!(json, tampered, "version marker must exist in the file");
    std::fs::write(&path, &tampered).expect("writable");
    match registry.load("m") {
        Err(RegistryError::WrongVersion { found, expected }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(expected, FORMAT_VERSION);
        }
        Err(other) => panic!("expected WrongVersion, got {other:?}"),
        Ok(_) => panic!("a future-version file must not load"),
    }

    // Tampered config: restore the version but change the config's
    // cycle count without updating the fingerprint.
    let tampered = json.replace(
        &format!("\"cycles\":{}", cfg.cycles),
        &format!("\"cycles\":{}", cfg.cycles + 1),
    );
    assert_ne!(json, tampered);
    std::fs::write(&path, &tampered).expect("writable");
    assert!(matches!(
        registry.load("m"),
        Err(RegistryError::FingerprintMismatch { .. })
    ));

    // Unknown name.
    assert_eq!(
        registry.load("nope").err(),
        Some(RegistryError::NotFound("nope".to_owned()))
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The multi-model acceptance test: one `serve` process hosts two named
/// models loaded through the registry, routes `model`-addressed requests
/// with bit-identical parity to default addressing, shares a registered
/// workload across models by name with cache hits, and reports per-model
/// cache occupancy in `stats`.
#[test]
fn catalog_hosts_multiple_models_with_routing_parity() {
    let cfg = micro_config();
    let trained = train_atlas(&cfg);
    let dir = scratch_registry("catalog");
    let registry = ModelRegistry::open(&dir).expect("registry opens");
    registry.save("v1", &trained.model, &cfg).expect("v1 saves");
    let v2_path = registry.save("v2", &trained.model, &cfg).expect("v2 saves");

    // Build the catalog the way the serve binary does: one spec per
    // --model flag, mixing registry names and explicit file paths.
    let mut catalog = ModelCatalog::new();
    assert_eq!(
        catalog.load_spec(&registry, "stable=v1").expect("spec 1"),
        "stable"
    );
    let spec = format!("canary={}", v2_path.display());
    assert_eq!(
        catalog.load_spec(&registry, &spec).expect("spec 2"),
        "canary"
    );
    assert_eq!(catalog.names(), vec!["stable", "canary"]);
    assert_eq!(catalog.default_model(), Some("stable"));

    let service = AtlasService::start_catalog(
        catalog,
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    )
    .expect("catalog serves");

    // Parity: default-addressed, name-addressed, and direct predictions
    // are bit-identical.
    let implicit = service
        .call(PredictRequest::new("C2", "W1", 10))
        .expect("default-addressed");
    assert_eq!(implicit.model, "stable");
    let explicit = service
        .call(PredictRequest::new("C2", "W1", 10).on_model("stable"))
        .expect("name-addressed");
    assert_eq!(explicit.model, "stable");
    assert_eq!(explicit.per_cycle_total_w, implicit.per_cycle_total_w);
    let canary = service
        .call(PredictRequest::new("C2", "W1", 10).on_model("canary"))
        .expect("canary-addressed");
    assert_eq!(canary.per_cycle_total_w, implicit.per_cycle_total_w);
    let direct = direct_prediction(&cfg, &trained.model, "C2", "W1", 10);
    assert_eq!(implicit.per_cycle_total_w, direct.total_series());

    // One registration serves both models by name (each fills its own
    // cache: cold once per model, warm after).
    let (info, replaced) = service
        .register_workload(
            "shared-wl",
            vec![
                WorkloadPhase {
                    activity: 0.5,
                    min_len: 2,
                    max_len: 5,
                },
                WorkloadPhase {
                    activity: 0.05,
                    min_len: 4,
                    max_len: 9,
                },
            ],
        )
        .expect("registers");
    assert!(!replaced);
    assert_eq!(service.workloads(), vec![info]);
    for model in ["stable", "canary"] {
        let req = PredictRequest::with_workload_name("C2", "shared-wl", 10).on_model(model);
        let cold = service.call(req.clone()).expect("registered cold");
        assert!(!cold.cache_hit, "first use on `{model}` is cold");
        assert_eq!(cold.workload, "shared-wl");
        let warm = service.call(req).expect("registered warm");
        assert!(warm.cache_hit, "second use on `{model}` must hit");
        assert_eq!(warm.per_cycle_total_w, cold.per_cycle_total_w);
    }

    // Per-model cache occupancy is reported and disjoint.
    let stats = service.stats();
    assert_eq!(stats.models.len(), 2);
    let canary_stats = &stats.models[0];
    let stable_stats = &stats.models[1];
    assert_eq!(canary_stats.model, "canary");
    assert_eq!(stable_stats.model, "stable");
    // stable: W1 + shared-wl entries; canary: W1 + shared-wl entries.
    assert_eq!(stable_stats.embedding_cache.len, 2);
    assert_eq!(canary_stats.embedding_cache.len, 2);
    // stable answered: implicit W1, explicit W1, cold+warm shared-wl.
    assert_eq!(stable_stats.requests, 4);
    // canary answered: W1, cold+warm shared-wl.
    assert_eq!(canary_stats.requests, 3);
    assert_eq!(
        stats.embedding_cache.len,
        stable_stats.embedding_cache.len + canary_stats.embedding_cache.len
    );
    assert!(stable_stats.embedding_cache.weight > 0);
    assert!(canary_stats.embedding_cache.weight > 0);

    // The models verb data reflects the catalog.
    let models = service.models();
    assert_eq!(models.len(), 2);
    assert_eq!(models[0].name, "canary");
    assert_eq!(models[1].name, "stable");
    assert_eq!(models[0].format_version, FORMAT_VERSION);
    assert_eq!(service.default_model(), "stable");

    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Registry validation flows through the catalog path: a wrong-version
/// file and a duplicate serving name are both rejected at catalog build
/// time, before any service starts.
#[test]
fn catalog_rejects_wrong_version_and_duplicates() {
    let cfg = micro_config();
    let trained = train_atlas(&cfg);
    let dir = scratch_registry("catalog-reject");
    let registry = ModelRegistry::open(&dir).expect("registry opens");
    let path = registry.save("m", &trained.model, &cfg).expect("saves");

    // Tamper the format version in place (same technique as the direct
    // registry rejection test).
    let json = std::fs::read_to_string(&path).expect("readable");
    let tampered = json.replace(
        &format!("\"format_version\":{FORMAT_VERSION}"),
        &format!("\"format_version\":{}", FORMAT_VERSION + 1),
    );
    assert_ne!(json, tampered, "version marker must exist in the file");
    std::fs::write(&path, &tampered).expect("writable");

    let mut catalog = ModelCatalog::new();
    match catalog.load_spec(&registry, "m") {
        Err(RegistryError::WrongVersion { found, expected }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(expected, FORMAT_VERSION);
        }
        other => panic!("expected WrongVersion through the catalog, got {other:?}"),
    }
    // The path-addressed form rejects identically.
    assert!(matches!(
        catalog.load_spec(&registry, &format!("alias={}", path.display())),
        Err(RegistryError::WrongVersion { .. })
    ));
    assert!(catalog.is_empty(), "rejected models must not be cataloged");

    // Restore the file; duplicates are then caught by name.
    std::fs::write(&path, &json).expect("writable");
    catalog.load_spec(&registry, "m").expect("loads clean file");
    assert_eq!(
        catalog.load_spec(&registry, "m").err(),
        Some(RegistryError::Duplicate("m".to_owned()))
    );
    // An empty catalog cannot start a service.
    assert!(AtlasService::start_catalog(ModelCatalog::new(), ServiceConfig::default()).is_err());

    let _ = std::fs::remove_dir_all(&dir);
}

/// A saved-then-loaded model predicts identically to the in-memory one.
#[test]
fn persisted_model_prediction_parity() {
    let cfg = micro_config();
    let trained = train_atlas(&cfg);
    let dir = scratch_registry("parity");
    let registry = ModelRegistry::open(&dir).expect("registry opens");
    registry.save("p", &trained.model, &cfg).expect("saves");
    let loaded = registry.load("p").expect("loads");

    let in_memory = direct_prediction(&cfg, &trained.model, "C2", "W1", 12);
    let from_disk = direct_prediction(&cfg, &loaded.model, "C2", "W1", 12);
    assert_eq!(
        in_memory, from_disk,
        "persistence must not change predictions"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
