//! End-to-end serving tests: train → persist → reload through the
//! registry → serve concurrent requests → verify parity with direct
//! model predictions.

use std::sync::Arc;

use atlas_core::features::build_submodule_data;
use atlas_core::pipeline::{train_atlas, ExperimentConfig};
use atlas_power::PowerTrace;
use atlas_serve::{
    AtlasService, ModelRegistry, PredictRequest, RegistryError, ServiceConfig, FORMAT_VERSION,
};
use atlas_sim::simulate;

/// A configuration small enough to train inside the test suite.
fn micro_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick();
    cfg.cycles = 16;
    cfg.scale = 0.12;
    cfg.pretrain.steps = 14;
    cfg.pretrain.hidden_dim = 12;
    cfg.finetune.cycles_per_design = 6;
    cfg.finetune.gbdt.n_estimators = 16;
    cfg
}

/// A scratch registry directory unique to this test process.
fn scratch_registry(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("atlas-serve-test-{tag}-{}", std::process::id()))
}

/// Direct (no service) prediction for one request, the reference result.
fn direct_prediction(
    cfg: &ExperimentConfig,
    model: &atlas_core::AtlasModel,
    design: &str,
    workload: &str,
    cycles: usize,
) -> PowerTrace {
    let lib = cfg.library();
    let dcfg = cfg.try_design(design).expect("known design");
    let gate = dcfg.generate();
    let mut w = cfg
        .try_workload(workload, dcfg.seed)
        .expect("known workload");
    let trace = simulate(&gate, &mut w, cycles).expect("simulates");
    let data = build_submodule_data(&gate, &lib);
    model.predict_prepared(&gate, &lib, &data, &trace)
}

/// The PR's acceptance test: a quick model is trained, saved, loaded
/// through the registry, and serves ≥ 8 concurrent requests across ≥ 2
/// designs with results matching direct `AtlasModel` predictions.
#[test]
fn registry_roundtrip_and_concurrent_serving() {
    let cfg = micro_config();
    let trained = train_atlas(&cfg);

    // Persist and reload through the registry.
    let dir = scratch_registry("concurrent");
    let registry = ModelRegistry::open(&dir).expect("registry opens");
    registry
        .save("itest", &trained.model, &cfg)
        .expect("model saves");
    assert_eq!(registry.list().expect("list"), vec!["itest".to_owned()]);
    let saved = registry.load("itest").expect("model loads");
    assert_eq!(saved.header.format_version, FORMAT_VERSION);
    assert_eq!(
        saved.model, trained.model,
        "registry round-trip must preserve the model exactly"
    );

    // Serve 8 concurrent requests across 2 designs × 2 workloads.
    let service = Arc::new(AtlasService::start(
        saved,
        ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        },
    ));
    let cases: Vec<(String, String, usize)> = ["C2", "C4"]
        .iter()
        .flat_map(|d| {
            ["W1", "W2"]
                .iter()
                .map(|w| (d.to_string(), w.to_string(), 10usize))
                .collect::<Vec<_>>()
        })
        .collect();
    // 8 clients: every (design, workload) pair requested twice.
    let responses: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let service = Arc::clone(&service);
                let (design, workload, cycles) = cases[i % cases.len()].clone();
                scope.spawn(move || {
                    let req = PredictRequest {
                        id: Some(i as u64),
                        design,
                        workload,
                        cycles,
                        phases: None,
                    };
                    (req.clone(), service.call(req).expect("request succeeds"))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    assert_eq!(responses.len(), 8);

    // Every response matches the direct model path bit-for-bit.
    for (req, resp) in &responses {
        assert_eq!(resp.id, req.id);
        assert_eq!(resp.cycles, 10);
        let direct = direct_prediction(&cfg, &trained.model, &req.design, &req.workload, 10);
        assert_eq!(
            resp.per_cycle_total_w,
            direct.total_series(),
            "served prediction diverged from direct prediction for {}/{}",
            req.design,
            req.workload
        );
        assert!(resp.mean_total_w > 0.0);
    }

    let stats = service.stats();
    assert_eq!(stats.requests, 8);
    assert_eq!(stats.errors, 0);

    // A sequential repeat of an already-served key must be a cache hit.
    let warm = service
        .call(PredictRequest::new("C2", "W1", 10))
        .expect("warm request");
    assert!(warm.cache_hit, "sequential repeat must hit the cache");
    assert!(warm.design_cache_hit);

    // Single-flight accounting: 8 concurrent requests over 4 distinct
    // keys computed exactly 4 embeddings — each concurrent duplicate
    // either coalesced onto the in-flight computation or hit the cache.
    let stats = service.stats();
    assert_eq!(stats.embeddings_computed, 4);
    assert_eq!(
        stats.coalesced_requests + stats.embedding_cache.hits,
        5, // 4 concurrent duplicates + the sequential warm repeat
    );

    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Registry rejection paths: wrong format version, tampered config,
/// missing model.
#[test]
fn registry_rejects_incompatible_files() {
    let cfg = micro_config();
    let trained = train_atlas(&cfg);
    let dir = scratch_registry("reject");
    let registry = ModelRegistry::open(&dir).expect("registry opens");
    let path = registry.save("m", &trained.model, &cfg).expect("saves");

    // Wrong version: bump the header's format_version in place.
    let json = std::fs::read_to_string(&path).expect("readable");
    let future_version = format!("\"format_version\":{}", FORMAT_VERSION + 1);
    let tampered = json.replace(
        &format!("\"format_version\":{FORMAT_VERSION}"),
        &future_version,
    );
    assert_ne!(json, tampered, "version marker must exist in the file");
    std::fs::write(&path, &tampered).expect("writable");
    match registry.load("m") {
        Err(RegistryError::WrongVersion { found, expected }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(expected, FORMAT_VERSION);
        }
        Err(other) => panic!("expected WrongVersion, got {other:?}"),
        Ok(_) => panic!("a future-version file must not load"),
    }

    // Tampered config: restore the version but change the config's
    // cycle count without updating the fingerprint.
    let tampered = json.replace(
        &format!("\"cycles\":{}", cfg.cycles),
        &format!("\"cycles\":{}", cfg.cycles + 1),
    );
    assert_ne!(json, tampered);
    std::fs::write(&path, &tampered).expect("writable");
    assert!(matches!(
        registry.load("m"),
        Err(RegistryError::FingerprintMismatch { .. })
    ));

    // Unknown name.
    assert_eq!(
        registry.load("nope").err(),
        Some(RegistryError::NotFound("nope".to_owned()))
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// A saved-then-loaded model predicts identically to the in-memory one.
#[test]
fn persisted_model_prediction_parity() {
    let cfg = micro_config();
    let trained = train_atlas(&cfg);
    let dir = scratch_registry("parity");
    let registry = ModelRegistry::open(&dir).expect("registry opens");
    registry.save("p", &trained.model, &cfg).expect("saves");
    let loaded = registry.load("p").expect("loads");

    let in_memory = direct_prediction(&cfg, &trained.model, "C2", "W1", 12);
    let from_disk = direct_prediction(&cfg, &loaded.model, "C2", "W1", 12);
    assert_eq!(
        in_memory, from_disk,
        "persistence must not change predictions"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
