//! Control-plane integration suite: hot model reload under concurrent
//! traffic, per-model quota protection against cold storms, and
//! workload-library persistence across service restarts.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use atlas_core::pipeline::{train_atlas, ExperimentConfig};
use atlas_serve::{
    AtlasService, ModelCatalog, ModelRegistry, PredictRequest, ServeError, ServiceConfig,
};
use atlas_sim::WorkloadPhase;

/// A configuration small enough to train inside the test suite.
fn micro_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick();
    cfg.cycles = 16;
    cfg.scale = 0.12;
    cfg.pretrain.steps = 14;
    cfg.pretrain.hidden_dim = 12;
    cfg.finetune.cycles_per_design = 6;
    cfg.finetune.gbdt.n_estimators = 16;
    cfg
}

/// A scratch directory unique to this test process.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("atlas-ctl-test-{tag}-{}", std::process::id()))
}

/// Client-observed p50 of `n` sequential calls, milliseconds.
fn client_p50_ms(service: &AtlasService, request: &PredictRequest, n: usize) -> f64 {
    let mut lat: Vec<f64> = (0..n)
        .map(|_| {
            let t = Instant::now();
            service
                .call(request.clone())
                .expect("measured request succeeds");
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    lat.sort_by(|a, b| a.total_cmp(b));
    lat[lat.len() / 2]
}

/// Predictions racing a load/unload churn loop must each end in exactly
/// one of two outcomes — a completed response from the model or a
/// structured `unknown_model` error — and traffic on the default model
/// must never be disturbed. A hang or panic fails the suite.
#[test]
fn predict_during_reload_churn_completes_or_errors_cleanly() {
    let cfg = micro_config();
    let trained = train_atlas(&cfg);
    let dir = scratch_dir("churn");
    let registry = ModelRegistry::open(&dir).expect("registry opens");
    let path = registry.save("hot", &trained.model, &cfg).expect("saves");
    let service = Arc::new(AtlasService::start_with(
        trained.model,
        cfg,
        ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        },
    ));
    // Pre-warm the default model so the stable-traffic thread measures
    // routing, not repeated cold computes.
    service
        .call(PredictRequest::new("C2", "W1", 6))
        .expect("pre-warm");

    let stop = AtomicBool::new(false);
    let (churn_rounds, hits, misses) = std::thread::scope(|scope| {
        // Churn: load and unload the `hot` model as fast as possible.
        let churner = {
            let service = Arc::clone(&service);
            let path = path.clone();
            let stop = &stop;
            scope.spawn(move || {
                let mut rounds = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    service
                        .load_model_file("hot", &path)
                        .expect("strictly alternating load cannot collide");
                    service
                        .unload_model("hot")
                        .expect("strictly alternating unload cannot miss");
                    rounds += 1;
                }
                rounds
            })
        };
        // Clients racing the churn on the churned model.
        let racers: Vec<_> = (0..3u64)
            .map(|client| {
                let service = Arc::clone(&service);
                scope.spawn(move || {
                    let (mut hits, mut misses) = (0u64, 0u64);
                    for i in 0..40u64 {
                        let req = PredictRequest::new("C2", "W1", 5 + ((client + i) % 3) as usize)
                            .on_model("hot");
                        match service.call(req) {
                            Ok(resp) => {
                                assert_eq!(resp.model, "hot");
                                assert!(resp.mean_total_w > 0.0);
                                hits += 1;
                            }
                            Err(ServeError::UnknownModel(name)) => {
                                assert_eq!(name, "hot");
                                misses += 1;
                            }
                            Err(other) => {
                                panic!("reload churn produced an unexpected error: {other}")
                            }
                        }
                    }
                    (hits, misses)
                })
            })
            .collect();
        // Stable traffic on the default model must be untouched by churn.
        let stable = {
            let service = Arc::clone(&service);
            scope.spawn(move || {
                for _ in 0..60 {
                    let resp = service
                        .call(PredictRequest::new("C2", "W1", 6))
                        .expect("default-model traffic never fails during reload churn");
                    assert!(resp.cache_hit);
                }
            })
        };
        let totals = racers
            .into_iter()
            .map(|h| h.join().expect("racer"))
            .fold((0, 0), |(h, m), (hh, mm)| (h + hh, m + mm));
        stable.join().expect("stable traffic");
        stop.store(true, Ordering::Relaxed);
        (churner.join().expect("churner"), totals.0, totals.1)
    });
    assert!(churn_rounds > 0, "the churn loop must actually cycle");
    assert_eq!(hits + misses, 120, "every racing request was answered");

    // After the churn settles the catalog is consistent: `hot` is gone
    // (the churner always unloads last) and a fresh load works.
    assert!(service.models().iter().all(|m| m.name != "hot"));
    service
        .load_model_file("hot", &path)
        .expect("post-churn load");
    assert!(service
        .call(PredictRequest::new("C2", "W1", 6).on_model("hot"))
        .is_ok());

    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A cold storm on one model must not starve another model's warm
/// traffic: with a quota of 1 on the storm model and 2 workers, the
/// victim's p50 stays near its idle warm latency — far below the cold
/// pipeline latency it would pay if the storm owned the whole pool.
#[test]
fn quota_keeps_victim_latency_bounded_under_cold_storm() {
    let cfg = micro_config();
    let trained = train_atlas(&cfg);
    let mut catalog = ModelCatalog::new();
    catalog
        .insert_model("victim", trained.model.clone(), cfg.clone())
        .expect("victim");
    catalog
        .insert_model("storm", trained.model.clone(), cfg.clone())
        .expect("storm");
    let service = Arc::new(
        AtlasService::start_catalog(
            catalog,
            ServiceConfig {
                workers: 2,
                model_quotas: [("storm".to_owned(), 1)].into_iter().collect(),
                ..ServiceConfig::default()
            },
        )
        .expect("catalog serves"),
    );

    // Warm the victim's key; its cold latency is the starvation yardstick
    // (what each victim request would wait behind if the storm owned
    // every worker).
    let victim_req = PredictRequest::new("C2", "W1", 8).on_model("victim");
    let t = Instant::now();
    let cold = service.call(victim_req.clone()).expect("victim cold");
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(!cold.cache_hit);
    let idle_p50 = client_p50_ms(&service, &victim_req, 30);

    let stop = AtomicBool::new(false);
    let storm_p50 = std::thread::scope(|scope| {
        // Four storm clients hammer distinct cold keys — every request a
        // full simulate + encode pipeline on the storm model.
        for client in 0..4u64 {
            let service = Arc::clone(&service);
            let stop = &stop;
            scope.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Distinct cycles per (thread, iteration): distinct
                    // cache keys, so nothing coalesces or hits.
                    let cycles = 16 + (client + 4 * i) as usize % 512;
                    let reply =
                        service.call(PredictRequest::new("C4", "W2", cycles).on_model("storm"));
                    assert!(
                        matches!(reply, Ok(_) | Err(ServeError::QuotaExceeded(_))),
                        "storm replies are completions or quota rejections: {reply:?}"
                    );
                    i += 1;
                }
            });
        }
        // Let the storm saturate its quota, then measure the victim. A
        // deadline keeps a broken (or panicked) storm from hanging the
        // suite: on expiry we stop the storm and fail loudly instead.
        let deadline = Instant::now() + std::time::Duration::from_secs(30);
        while service.stats().models[0].queued == 0 {
            if Instant::now() > deadline {
                stop.store(true, Ordering::Relaxed);
                panic!("the storm never saturated its quota within 30s");
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let p50 = client_p50_ms(&service, &victim_req, 100);
        stop.store(true, Ordering::Relaxed);
        p50
    });

    let stats = service.stats();
    let storm_stats = stats
        .models
        .iter()
        .find(|m| m.model == "storm")
        .expect("storm stats");
    assert_eq!(storm_stats.quota, 1);
    assert!(
        storm_stats.queued > 0,
        "the storm must actually have saturated its quota"
    );
    assert!(storm_stats.embeddings_computed > 0);
    // The ISSUE's acceptance bound is p50 ≤ 3x idle p50; sub-millisecond
    // idle latencies make that ratio noisy on shared CI hardware, so the
    // test asserts the meaningful starvation bound — the victim must stay
    // far below the cold-pipeline latency it would queue behind without
    // quotas — and leaves the 3x ratio to the quota-storm bench gate.
    assert!(
        storm_p50 < cold_ms / 2.0,
        "victim p50 under storm ({storm_p50:.2} ms) must stay well below \
         the cold pipeline ({cold_ms:.2} ms); idle p50 was {idle_p50:.3} ms"
    );
}

/// The workload library survives a restart byte-for-byte: a journaled
/// service reproduces names, fingerprints, and prediction results after
/// being dropped and restarted over the same `--workload-file`.
#[test]
fn restart_replays_the_workload_library() {
    let cfg = micro_config();
    let trained = train_atlas(&cfg);
    let dir = scratch_dir("journal");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let journal = dir.join("workloads.jsonl");
    let service_cfg = || ServiceConfig {
        workers: 2,
        workload_file: Some(journal.clone()),
        ..ServiceConfig::default()
    };
    let bursty = vec![
        WorkloadPhase {
            activity: 0.55,
            min_len: 2,
            max_len: 6,
        },
        WorkloadPhase {
            activity: 0.04,
            min_len: 5,
            max_len: 12,
        },
    ];
    let steady = vec![WorkloadPhase {
        activity: 0.25,
        min_len: 3,
        max_len: 7,
    }];

    // First life: register two schedules, replace one, and take a
    // reference prediction through the library.
    let (workloads_before, reference) = {
        let service = AtlasService::start_with(trained.model.clone(), cfg.clone(), service_cfg());
        service
            .register_workload("bursty", steady.clone())
            .expect("registers");
        service
            .register_workload("steady", steady.clone())
            .expect("registers");
        let (_, replaced) = service
            .register_workload("bursty", bursty.clone())
            .expect("replaces");
        assert!(replaced, "the second bursty registration replaces");
        let resp = service
            .call(PredictRequest::with_workload_name("C2", "bursty", 10))
            .expect("journaled workload serves");
        (service.workloads(), resp)
    };
    assert_eq!(workloads_before.len(), 2);

    // Second life: the same journal reproduces the library exactly, and
    // the replayed schedule predicts bit-identically.
    let service = AtlasService::start_with(trained.model.clone(), cfg.clone(), service_cfg());
    assert_eq!(
        service.workloads(),
        workloads_before,
        "restart must reproduce names and fingerprints exactly"
    );
    let replayed = service
        .call(PredictRequest::with_workload_name("C2", "bursty", 10))
        .expect("replayed workload serves");
    assert!(!replayed.cache_hit, "caches are per-process, not journaled");
    assert_eq!(
        replayed.per_cycle_total_w, reference.per_cycle_total_w,
        "a replayed schedule must predict bit-identically"
    );
    // Registrations keep appending after a replay.
    service
        .register_workload("late", steady)
        .expect("post-replay registration");
    drop(service);

    let service = AtlasService::start_with(trained.model, cfg, service_cfg());
    assert_eq!(service.workloads().len(), 3);
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}
