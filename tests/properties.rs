//! Cross-crate property-based tests: invariants that must hold for *any*
//! design the generator can produce, any workload, and any flow
//! configuration in a sane range.

use atlas_designs::DesignConfig;
use atlas_layout::{run_layout, LayoutConfig};
use atlas_liberty::{Library, PowerGroup};
use atlas_power::compute_power;
use atlas_sim::{simulate, ConstantWorkload, PhasedWorkload};
use proptest::prelude::*;

/// A small random design configuration.
fn arb_design() -> impl Strategy<Value = DesignConfig> {
    (0u64..1000, 6usize..10, 1usize..3, 1usize..4).prop_map(|(seed, width, fe, core)| {
        DesignConfig {
            name: format!("P{seed}"),
            seed,
            scale: 1.0,
            width,
            pi_count: 16,
            frontend_units: fe,
            core_units: core,
            lsu_units: 1,
            dcache_units: 1,
            ptw_units: 1,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case runs a full mini-flow; keep the count low
        .. ProptestConfig::default()
    })]

    /// Any generated design is structurally valid, levelizable, and its
    /// sub-module graphs partition the cells exactly.
    #[test]
    fn generated_designs_are_well_formed(cfg in arb_design()) {
        let d = cfg.generate();
        prop_assert!(d.validate().is_empty());
        prop_assert!(atlas_netlist::topo::levelize(&d).is_ok());
        let total: usize = d.submodule_graphs().iter().map(|g| g.node_count()).sum();
        prop_assert_eq!(total, d.cell_count());
    }

    /// The layout flow preserves primary-output behaviour and only adds
    /// cells, for any generated design.
    #[test]
    fn layout_preserves_function_and_grows(cfg in arb_design()) {
        let lib = Library::synthetic_40nm();
        let gate = cfg.generate();
        let result = run_layout(&gate, &lib, &LayoutConfig::default());
        prop_assert!(result.design.validate().is_empty());
        prop_assert!(result.design.cell_count() > gate.cell_count());

        let mut sim_a = atlas_sim::Simulator::new(&gate).expect("levelizes");
        let mut sim_b = atlas_sim::Simulator::new(&result.design).expect("levelizes");
        let mut stim_a = PhasedWorkload::w1(cfg.seed);
        let mut stim_b = PhasedWorkload::w1(cfg.seed);
        for _ in 0..24 {
            sim_a.step(&mut stim_a);
            sim_b.step(&mut stim_b);
            for (&pa, &pb) in gate.primary_outputs().iter().zip(result.design.primary_outputs()) {
                prop_assert_eq!(sim_a.net_value(pa), sim_b.net_value(pb));
            }
        }
    }

    /// Power is non-negative, finite, and additive over sub-modules for
    /// any design and activity level.
    #[test]
    fn power_is_sane(cfg in arb_design(), activity in 0.0f64..0.5) {
        let lib = Library::synthetic_40nm();
        let d = cfg.generate();
        let trace = simulate(&d, &mut ConstantWorkload::new(activity, cfg.seed), 16)
            .expect("simulates");
        let p = compute_power(&d, &lib, &trace);
        for t in 0..16 {
            let total = p.total(t);
            prop_assert!(total.is_finite() && total > 0.0);
            let by_sm: f64 = d
                .submodule_ids()
                .map(|sm| p.submodule_total(t, sm))
                .sum();
            prop_assert!((by_sm - total).abs() <= total * 1e-9);
            // Gate level has no clock tree.
            prop_assert_eq!(p.group_total(t, PowerGroup::ClockTree), 0.0);
        }
    }

    /// More input activity never decreases mean combinational power.
    #[test]
    fn power_is_monotone_in_activity(cfg in arb_design()) {
        let lib = Library::synthetic_40nm();
        let d = cfg.generate();
        let cold = simulate(&d, &mut ConstantWorkload::new(0.01, 1), 48).expect("simulates");
        let hot = simulate(&d, &mut ConstantWorkload::new(0.45, 1), 48).expect("simulates");
        let pc = compute_power(&d, &lib, &cold);
        let ph = compute_power(&d, &lib, &hot);
        prop_assert!(
            ph.mean_group(PowerGroup::Combinational)
                >= pc.mean_group(PowerGroup::Combinational)
        );
    }

    /// Restructuring at any intensity keeps the design valid and the
    /// sequential-cell population identical.
    #[test]
    fn restructure_invariants(cfg in arb_design(), intensity in 0.0f64..1.0, seed in 0u64..100) {
        let gate = cfg.generate();
        let plus = atlas_layout::restructure::restructure(&gate, seed, intensity);
        prop_assert!(plus.validate().is_empty());
        prop_assert!(plus.cell_count() >= gate.cell_count());
        let gs = gate.stats();
        let ps = plus.stats();
        prop_assert_eq!(gs.group_count(PowerGroup::Register), ps.group_count(PowerGroup::Register));
        prop_assert_eq!(gs.group_count(PowerGroup::Memory), ps.group_count(PowerGroup::Memory));
    }
}

// ---- byte-budget LRU cache invariants (atlas-serve) --------------------

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 128, // pure in-memory ops; cheap enough for a wide sweep
        .. ProptestConfig::default()
    })]

    /// For any interleaving of weighted inserts and recency-refreshing
    /// gets: occupancy never exceeds the budget, an admitted entry is
    /// immediately resident (its own insert never evicts it), and a
    /// single oversized entry is rejected outright, leaving the cache
    /// untouched rather than looping eviction.
    #[test]
    fn byte_budget_cache_invariants(
        budget in 1usize..64,
        ops in proptest::collection::vec((0u8..12, 0usize..96, 0u8..2), 1..80),
    ) {
        use std::sync::Arc;
        let cache: atlas_serve::LruCache<u8, usize> = atlas_serve::LruCache::with_budget(budget);
        for &(key, weight, probe) in &ops {
            if probe == 1 {
                // Recency refreshes must never break the accounting.
                let _ = cache.get(&key);
            }
            let before = cache.stats();
            let admitted = cache.insert_weighted(key, Arc::new(weight), weight);
            let after = cache.stats();

            prop_assert!(after.weight <= budget, "occupancy {} > budget {budget}", after.weight);
            prop_assert_eq!(after.budget, budget);
            prop_assert_eq!(admitted, weight <= budget, "admission must be weight <= budget");
            if admitted {
                let got = cache.get(&key);
                prop_assert!(got.is_some(), "an admitted entry must be resident");
                prop_assert_eq!(*got.expect("checked"), weight, "value reflects last insert");
            } else {
                // A rejected oversized insert changes nothing.
                prop_assert_eq!(after.len, before.len);
                prop_assert_eq!(after.weight, before.weight);
            }
        }
    }

    /// Unit-weight inserts recover the classic count-bounded LRU: len and
    /// weight track together and never exceed the capacity.
    #[test]
    fn unit_weight_cache_is_count_bounded(
        capacity in 1usize..8,
        keys in proptest::collection::vec(0u8..16, 1..60),
    ) {
        use std::sync::Arc;
        let cache: atlas_serve::LruCache<u8, u8> = atlas_serve::LruCache::new(capacity);
        for &k in &keys {
            cache.insert(k, Arc::new(k));
            let stats = cache.stats();
            prop_assert!(stats.len <= capacity);
            prop_assert_eq!(stats.weight, stats.len);
            prop_assert!(cache.get(&k).is_some());
        }
    }
}

// ---- per-model quota-gate invariants (atlas-serve) ---------------------

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 192, // pure in-memory ops; cheap enough for a wide sweep
        .. ProptestConfig::default()
    })]

    /// For any interleaving of admissions and completions: granted slots
    /// never exceed the quota, the parking queue never exceeds its bound,
    /// the `queued`/`rejected` counters are monotone and exact, and every
    /// submitted item is eventually either granted (and completed) or
    /// rejected — no item is ever lost in the gate.
    #[test]
    fn quota_gate_accounting_invariants(
        quota in 1usize..4,
        max_parked in 0usize..6,
        items in 1usize..32,
        interleave in proptest::collection::vec(0u8..2, 0..96),
    ) {
        use atlas_serve::{Admission, QuotaGate};

        let gate: QuotaGate<usize> = QuotaGate::new(max_parked);
        // The reference scheduler the service implements: fresh and
        // re-dispatched items go through `admit`; a completion calls
        // `release` and re-dispatches whatever it pops.
        let mut to_submit: Vec<usize> = (0..items).collect();
        let mut redispatch: Vec<usize> = Vec::new();
        let mut running: Vec<usize> = Vec::new();
        let mut completed: Vec<usize> = Vec::new();
        let mut rejected: Vec<usize> = Vec::new();
        let mut parks_seen = 0u64;
        let mut ops = interleave.into_iter();
        loop {
            let submit = ops.next().unwrap_or(0) == 0;
            if submit && !(redispatch.is_empty() && to_submit.is_empty()) {
                let item = if let Some(item) = redispatch.pop() {
                    item
                } else {
                    to_submit.pop().expect("checked nonempty")
                };
                match gate.admit(quota, item) {
                    Admission::Granted(i) => running.push(i),
                    Admission::Parked => parks_seen += 1,
                    Admission::Rejected(i) => rejected.push(i),
                }
            } else if let Some(i) = running.pop() {
                completed.push(i);
                if let Some(parked) = gate.release() {
                    redispatch.push(parked);
                }
            } else if redispatch.is_empty() && to_submit.is_empty() {
                break;
            }
            // Step invariants.
            prop_assert!(gate.running() <= quota, "running {} > quota {quota}", gate.running());
            prop_assert_eq!(gate.running(), running.len(), "gate and scheduler agree on running");
            prop_assert!(gate.parked_len() <= max_parked);
            prop_assert_eq!(gate.queued_total(), parks_seen, "queued counter is exact");
            prop_assert_eq!(gate.rejected_total() as usize, rejected.len());
        }
        // Quiescence: nothing runs, nothing is parked, and every item is
        // accounted for exactly once (completed or rejected).
        prop_assert_eq!(gate.running(), 0);
        prop_assert_eq!(gate.parked_len(), 0, "no item may be lost in the gate");
        completed.sort_unstable();
        completed.dedup();
        prop_assert_eq!(completed.len() + rejected.len(), items);
    }
}

// ---- workload-journal round-trip (atlas-serve) -------------------------

/// A random phase schedule valid under `PhasedWorkload::try_new`.
fn arb_schedule() -> impl Strategy<Value = Vec<atlas_sim::WorkloadPhase>> {
    proptest::collection::vec(
        (0.0f64..1.0, 1usize..10, 0usize..10).prop_map(|(activity, min_len, extra)| {
            atlas_sim::WorkloadPhase {
                activity,
                min_len,
                max_len: min_len + extra,
            }
        }),
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        .. ProptestConfig::default()
    })]

    /// Rendering any workload library to journal lines and parsing them
    /// back reproduces the exact entries — names, schedules, and
    /// fingerprints — while any single corrupted fingerprint is refused.
    #[test]
    fn workload_journal_roundtrip_reproduces_fingerprints(
        schedules in proptest::collection::vec((0u32..10_000, arb_schedule()), 1..8),
        corrupt_at in 0usize..8,
    ) {
        use atlas_serve::{parse_workload_journal, render_journal_entry, WorkloadJournalEntry};

        let entries: Vec<WorkloadJournalEntry> = schedules
            .into_iter()
            .map(|(tag, phases)| WorkloadJournalEntry {
                name: format!("wl-{tag}"),
                fingerprint: atlas_sim::schedule_fingerprint(&phases),
                phases,
            })
            .collect();
        let text: String = entries
            .iter()
            .map(|e| format!("{}\n", render_journal_entry(e)))
            .collect();
        let parsed = parse_workload_journal(&text).expect("a rendered journal parses");
        prop_assert_eq!(&parsed, &entries, "replay must reproduce identical entries");
        // Fingerprints survive the text round-trip bit-exactly.
        for (parsed, original) in parsed.iter().zip(&entries) {
            prop_assert_eq!(
                parsed.fingerprint,
                atlas_sim::schedule_fingerprint(&original.phases)
            );
        }
        // Blank lines are tolerated (append crashes mid-line are not
        // silently accepted, but trailing newlines are).
        let padded = format!("\n{text}\n");
        prop_assert_eq!(parse_workload_journal(&padded).expect("padding parses"), entries.clone());
        // Corrupting one fingerprint fails the whole replay loudly.
        let mut tampered = entries;
        let at = corrupt_at % tampered.len();
        tampered[at].fingerprint ^= 1;
        let text: String = tampered
            .iter()
            .map(|e| format!("{}\n", render_journal_entry(e)))
            .collect();
        prop_assert!(parse_workload_journal(&text).is_err());
    }
}

// ---- item-granular delta reuse (atlas-serve) ---------------------------

/// One micro model shared by every delta/restore test below (training
/// per proptest case would dominate the whole suite).
fn delta_fixture() -> &'static (
    atlas_core::AtlasModel,
    atlas_core::pipeline::ExperimentConfig,
) {
    use atlas_core::pipeline::{train_atlas, ExperimentConfig};
    static FIXTURE: std::sync::OnceLock<(
        atlas_core::AtlasModel,
        atlas_core::pipeline::ExperimentConfig,
    )> = std::sync::OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut cfg = ExperimentConfig::quick();
        cfg.cycles = 12;
        cfg.scale = 0.12;
        cfg.pretrain.steps = 10;
        cfg.pretrain.hidden_dim = 12;
        cfg.finetune.cycles_per_design = 4;
        cfg.finetune.gbdt.n_estimators = 12;
        let trained = train_atlas(&cfg);
        (trained.model, cfg)
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6, // each case runs a chain of predictions on two services
        .. ProptestConfig::default()
    })]

    /// Over any chain of edits — schedule swaps and cycle-count changes
    /// landing on and off the encoder's internal chunk boundaries —
    /// `predict_delta` against the previous step's trace is bit-identical
    /// to a full recompute of the same target, at every step. Reuse is an
    /// optimization only: it must never be observable in the numbers.
    #[test]
    fn predict_delta_chains_are_bit_identical_to_full_recompute(
        steps in proptest::collection::vec((0u8..3, 1usize..20), 1..5),
    ) {
        use atlas_serve::{
            AtlasService, DeltaBase, PredictDeltaRequest, PredictRequest, ServiceConfig,
        };

        let (model, cfg) = delta_fixture();
        let start = || {
            AtlasService::start_with(
                model.clone(),
                cfg.clone(),
                ServiceConfig { workers: 2, ..ServiceConfig::default() },
            )
        };
        // One service answers the chain via deltas; a second recomputes
        // every target from scratch as the reference.
        let chained = start();
        let reference = start();
        let schedule = |tag: u8| match tag {
            0 => (Some("W1".to_owned()), None),
            1 => (Some("W2".to_owned()), None),
            _ => (
                Some("edit".to_owned()),
                Some(vec![atlas_sim::WorkloadPhase {
                    activity: 0.35,
                    min_len: 2,
                    max_len: 5,
                }]),
            ),
        };
        let mut base: Option<DeltaBase> = None;
        for (tag, cycles) in steps {
            let (workload, phases) = schedule(tag);
            let delta = chained
                .call_delta(PredictDeltaRequest {
                    id: None,
                    model: None,
                    design: "C2".to_owned(),
                    workload: workload.clone(),
                    workload_name: None,
                    cycles,
                    phases: phases.clone(),
                    base: base.clone(),
                    changed_submodules: None,
                })
                .expect("delta predicts");
            let full = reference
                .call(PredictRequest {
                    id: None,
                    model: None,
                    design: "C2".to_owned(),
                    workload: workload.clone(),
                    workload_name: None,
                    cycles,
                    phases: phases.clone(),
                })
                .expect("full predicts");
            prop_assert_eq!(
                &delta.per_cycle_total_w,
                &full.per_cycle_total_w,
                "every step of the edit chain must be bit-identical"
            );
            prop_assert_eq!(delta.mean_total_w, full.mean_total_w);
            prop_assert_eq!(delta.peak_total_w, full.peak_total_w);
            base = Some(DeltaBase {
                design: None,
                workload,
                workload_name: None,
                cycles: Some(cycles),
                phases,
            });
        }
    }
}

/// The restore side of the warm-start contract under a *shrunk* budget:
/// a snapshot taken under a large `--cache-mb` restored into a service
/// with a smaller one must keep the most recent entries that fit, count
/// the rest as skipped, and never exceed the live budget.
#[test]
fn restore_respects_the_live_cache_budget() {
    use atlas_serve::{AtlasService, PredictRequest, ServiceConfig};

    let (model, cfg) = delta_fixture();
    let big = AtlasService::start_with(
        model.clone(),
        cfg.clone(),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    );
    // Four keys, computed oldest → newest, recording each entry's weight.
    let keys = [("C1", 8), ("C2", 8), ("C3", 8), ("C2", 12)];
    let mut weights = Vec::new();
    let mut last = 0usize;
    let mut originals = Vec::new();
    for &(design, cycles) in &keys {
        originals.push(
            big.call(PredictRequest::new(design, "W1", cycles))
                .expect("predicts"),
        );
        let now = big.stats().embedding_cache.weight;
        weights.push(now - last);
        last = now;
    }
    let snap = std::env::temp_dir().join(format!(
        "atlas-budget-restore-{}.snapshot",
        std::process::id()
    ));
    assert_eq!(big.snapshot_cache(&snap).expect("snapshots"), keys.len());
    drop(big);

    // A fresh process whose budget only fits the two newest entries.
    let budget = weights[2] + weights[3];
    let small = AtlasService::start_with(
        model.clone(),
        cfg.clone(),
        ServiceConfig {
            workers: 2,
            embedding_cache_bytes: budget,
            ..ServiceConfig::default()
        },
    );
    let report = small.restore_cache(&snap);
    assert_eq!(
        report.restored, 2,
        "only the newest entries that fit restore"
    );
    assert_eq!(report.skipped, 2, "the older entries count as skipped");
    let stats = small.stats();
    assert!(
        stats.embedding_cache.weight <= budget,
        "restore must never exceed the live budget: {} > {budget}",
        stats.embedding_cache.weight
    );

    // The kept entries are exactly the two most recent — warm and
    // bit-identical...
    for (original, &(design, cycles)) in originals.iter().zip(&keys).skip(2) {
        let resp = small
            .call(PredictRequest::new(design, "W1", cycles))
            .expect("predicts");
        assert!(resp.cache_hit, "{design}/{cycles} must restore warm");
        assert_eq!(resp.per_cycle_total_w, original.per_cycle_total_w);
    }
    assert_eq!(small.stats().embeddings_computed, 0);
    // ...and a dropped one recomputes rather than erroring.
    let evicted = small
        .call(PredictRequest::new("C1", "W1", 8))
        .expect("predicts");
    assert!(!evicted.cache_hit);
    assert_eq!(evicted.per_cycle_total_w, originals[0].per_cycle_total_w);

    let _ = std::fs::remove_file(&snap);
}

// ---- warm-start cache-snapshot round-trip (atlas-serve) ----------------

/// The warm-start contract, end to end: a drained service's cache
/// snapshot, restored into a fresh process over the same model, answers
/// every snapshotted key bit-identically as a cache hit with **zero**
/// embeddings recomputed — and a single-bit-corrupted entry is skipped
/// non-fatally (that key recomputes; every other key stays warm).
///
/// One deterministic test rather than a proptest: it trains a (micro)
/// model, which is far too expensive per proptest case.
#[test]
fn cache_snapshot_roundtrip_is_bit_identical_and_corruption_is_skipped() {
    use atlas_core::pipeline::{train_atlas, ExperimentConfig};
    use atlas_serve::{AtlasService, ModelRegistry, PredictRequest, ServiceConfig};

    let mut cfg = ExperimentConfig::quick();
    cfg.cycles = 16;
    cfg.scale = 0.12;
    cfg.pretrain.steps = 14;
    cfg.pretrain.hidden_dim = 12;
    cfg.finetune.cycles_per_design = 6;
    cfg.finetune.gbdt.n_estimators = 16;
    let trained = train_atlas(&cfg);

    let dir = std::env::temp_dir().join(format!("atlas-snapshot-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let registry = ModelRegistry::open(dir.join("registry")).expect("registry opens");
    registry.save("snap", &trained.model, &cfg).expect("saves");
    let svc_cfg = || ServiceConfig {
        workers: 2,
        shard_id: Some(7),
        ..ServiceConfig::default()
    };

    // A first service computes four distinct embeddings, then drains
    // (no requests in flight) and snapshots.
    let keys = [
        ("C1", "W1", 8),
        ("C2", "W1", 8),
        ("C2", "W2", 12),
        ("C3", "W2", 8),
    ];
    let first = AtlasService::start(registry.load("snap").expect("loads"), svc_cfg());
    let originals: Vec<_> = keys
        .iter()
        .map(|&(d, w, c)| first.call(PredictRequest::new(d, w, c)).expect("predicts"))
        .collect();
    assert_eq!(first.stats().embeddings_computed, keys.len() as u64);
    let snap = dir.join("cache.snapshot");
    let entries = first.snapshot_cache(&snap).expect("snapshots");
    assert_eq!(entries, keys.len(), "one snapshot entry per cached key");
    drop(first);

    // A fresh process restores every entry and answers bit-identically
    // without recomputing anything.
    let second = AtlasService::start(registry.load("snap").expect("loads"), svc_cfg());
    let report = second.restore_cache(&snap);
    assert_eq!(report.restored, keys.len());
    assert_eq!(report.skipped, 0);
    for (&(d, w, c), original) in keys.iter().zip(&originals) {
        let warm = second.call(PredictRequest::new(d, w, c)).expect("predicts");
        assert!(warm.cache_hit, "restored {d}/{w}/{c} must be a cache hit");
        assert_eq!(
            warm.per_cycle_total_w, original.per_cycle_total_w,
            "restored {d}/{w}/{c} must be bit-identical"
        );
        assert_eq!(warm.mean_total_w, original.mean_total_w);
    }
    assert_eq!(
        second.stats().embeddings_computed,
        0,
        "a restored shard must answer its warm keys without recomputing"
    );
    drop(second);

    // Flip one bit in the middle of the last entry line (bit 0, so the
    // file stays ASCII): whether that breaks the JSON or just the
    // fingerprint, the entry must be skipped — never fatal — and every
    // intact entry still restores.
    let text = std::fs::read_to_string(&snap).expect("snapshot reads");
    let mut lines: Vec<Vec<u8>> = text.lines().map(|l| l.as_bytes().to_vec()).collect();
    assert_eq!(lines.len(), 1 + keys.len(), "header + one line per entry");
    let last = lines.len() - 1;
    let mid = lines[last].len() / 2;
    lines[last][mid] ^= 1;
    let tampered_text: Vec<u8> = lines
        .into_iter()
        .flat_map(|mut l| {
            l.push(b'\n');
            l
        })
        .collect();
    let tampered = dir.join("tampered.snapshot");
    std::fs::write(&tampered, tampered_text).expect("tampered writes");

    let third = AtlasService::start(registry.load("snap").expect("loads"), svc_cfg());
    let report = third.restore_cache(&tampered);
    assert_eq!(
        report.restored,
        keys.len() - 1,
        "intact entries still restore"
    );
    assert_eq!(
        report.skipped, 1,
        "the corrupted entry is skipped, not fatal"
    );
    // Every key still answers; only the corrupted one recomputes.
    for &(d, w, c) in &keys {
        let resp = third
            .call(PredictRequest::new(d, w, c))
            .expect("still answers");
        assert!(resp.mean_total_w > 0.0);
    }
    assert_eq!(
        third.stats().embeddings_computed,
        1,
        "exactly the corrupted entry's key recomputes"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
