//! Shard-proxy wire tests: request aliasing must never split one trace
//! key across shards (registered vs inline schedule spellings, defaulted
//! vs explicit model), and streamed verbs must pass through the proxy
//! frame by frame.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use atlas_core::pipeline::{train_atlas, ExperimentConfig};
use atlas_serve::reactor::{Reactor, ReactorConfig, ReactorHandle};
use atlas_serve::{
    AtlasService, PredictDeltaResponse, PredictResponse, ServiceConfig, ShardInfo, ShardProxy,
};

/// A configuration small enough to train inside the test suite.
fn micro_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick();
    cfg.cycles = 12;
    cfg.scale = 0.12;
    cfg.pretrain.steps = 10;
    cfg.pretrain.hidden_dim = 12;
    cfg.finetune.cycles_per_design = 4;
    cfg.finetune.gbdt.n_estimators = 12;
    cfg
}

fn ask(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    let framed = format!("{line}\n");
    stream.write_all(framed.as_bytes()).expect("writes");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("reads");
    reply
}

/// Two serve backends behind one proxy. An explicit-model request naming
/// a registered workload and the model-defaulted inline spelling of the
/// same schedule must land on the same shard's warm cache — the routing
/// bug this pins was each spelling hashing to its own shard, so the
/// "warm" request recomputed from scratch on a cold one.
#[test]
fn aliased_spellings_of_one_trace_key_share_a_shard_cache() {
    let cfg = micro_config();
    let trained = train_atlas(&cfg);
    let spawn_backend = || -> ReactorHandle {
        let service = Arc::new(AtlasService::start_with(
            trained.model.clone(),
            cfg.clone(),
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        ));
        Reactor::bind(service, "127.0.0.1:0", ReactorConfig::default())
            .expect("binds")
            .spawn()
            .expect("spawns")
    };
    let backends: Vec<ReactorHandle> = (0..2).map(|_| spawn_backend()).collect();

    // Register the same schedule on every backend — the proxy refuses
    // mutating verbs, so clients talk to the shards directly for that.
    for handle in &backends {
        let mut stream = TcpStream::connect(handle.addr()).expect("connects");
        let mut reader = BufReader::new(stream.try_clone().expect("clones"));
        let reply = ask(
            &mut stream,
            &mut reader,
            r#"{"id":1,"verb":"register_workload","name":"spiky","phases":[{"activity":0.6,"min_len":1,"max_len":3}]}"#,
        );
        assert!(reply.contains(r#""name":"spiky""#), "got: {reply}");
    }

    let shards = backends
        .iter()
        .enumerate()
        .map(|(id, handle)| ShardInfo {
            id: id as u32,
            addr: handle.addr().to_string(),
            vnodes: 16,
        })
        .collect();
    let proxy = Arc::new(
        ShardProxy::new(shards)
            .expect("proxy")
            .with_default_model("default"),
    );
    let front = Reactor::bind(proxy, "127.0.0.1:0", ReactorConfig::default())
        .expect("binds")
        .spawn()
        .expect("spawns");
    let mut stream = TcpStream::connect(front.addr()).expect("connects");
    let mut reader = BufReader::new(stream.try_clone().expect("clones"));

    // Several distinct trace keys, so a lucky hash collision cannot mask
    // a routing split: the registered-name spelling (explicit model)
    // warms each key, and the inline spelling (defaulted model) must
    // find it warm.
    for (design, cycles) in [("C1", 6), ("C2", 6), ("C2", 9)] {
        let cold = ask(
            &mut stream,
            &mut reader,
            &format!(
                r#"{{"id":1,"model":"default","design":"{design}","workload_name":"spiky","cycles":{cycles}}}"#
            ),
        );
        let cold: PredictResponse = serde_json::from_str(&cold).expect("cold parses");
        assert!(!cold.cache_hit, "{design}/{cycles} starts cold");
        let warm = ask(
            &mut stream,
            &mut reader,
            &format!(
                r#"{{"id":2,"design":"{design}","workload":"spiky","cycles":{cycles},"phases":[{{"activity":0.6,"min_len":1,"max_len":3}}]}}"#
            ),
        );
        let warm: PredictResponse = serde_json::from_str(&warm).expect("warm parses");
        assert!(
            warm.cache_hit,
            "the inline spelling of {design}/{cycles} must hit the shard the named spelling warmed"
        );
        assert_eq!(warm.per_cycle_total_w, cold.per_cycle_total_w);
    }

    // `predict_delta` forwards verbatim (a proxy that re-rendered the
    // parsed request would silently degrade it to `predict`) and routes
    // by its *base* key, so it reuses the warm base computed above.
    let delta = ask(
        &mut stream,
        &mut reader,
        r#"{"id":3,"verb":"predict_delta","design":"C2","workload":"spiky","phases":[{"activity":0.6,"min_len":1,"max_len":3}],"cycles":12,"base":{"cycles":9}}"#,
    );
    let delta: PredictDeltaResponse = serde_json::from_str(&delta).expect("delta parses");
    assert_eq!(delta.id, Some(3));
    assert_eq!(delta.verb, "predict_delta");
    assert!(
        delta.base_hit,
        "the 9-cycle base was warmed through the proxy"
    );
    assert_eq!(delta.per_cycle_total_w.len(), 12);

    // A sweep streams back through the proxy frame by frame, id intact.
    stream
        .write_all(
            b"{\"id\":7,\"verb\":\"sweep\",\"design\":\"C2\",\"cycles\":6,\"chunk_cycles\":4,\"items\":[{\"workload_name\":\"spiky\"}]}\n",
        )
        .expect("writes");
    let mut frames = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("reads a frame");
        let done = line.contains(r#""frame":"end""#);
        frames.push(line);
        if done {
            break;
        }
    }
    assert!(frames[0].contains(r#""frame":"start""#), "got: {frames:?}");
    assert_eq!(
        frames
            .iter()
            .filter(|f| f.contains(r#""frame":"item""#))
            .count(),
        1
    );
    assert_eq!(
        frames
            .iter()
            .filter(|f| f.contains(r#""frame":"series""#))
            .count(),
        2,
        "6 cycles at chunk 4 is two series frames"
    );
    for frame in &frames {
        assert!(
            frame.contains(r#""id":7"#),
            "id must survive the proxy: {frame}"
        );
    }

    for handle in backends {
        handle.shutdown().expect("backend shutdown");
    }
    front.shutdown().expect("proxy shutdown");
}
