//! CI gate: the untrusted-ingestion parse paths must stay panic-free.
//!
//! The liblite parser and the Verilog reader/writer promise to be total
//! over arbitrary bytes — every input either parses or returns a typed
//! error. A stray `.unwrap()` added to one of those files silently turns
//! a hostile input into a process abort, so this script greps the parse
//! paths for panicking constructs outside `#[cfg(test)]` code and fails
//! CI when it finds a new one.
//!
//! Deliberately dependency-free (compiled with bare `rustc` in CI, no
//! cargo/registry), like `check_bench.rs`:
//!
//! ```text
//! rustc -O scripts/check_panic_free.rs -o check_panic_free
//! ./check_panic_free            # scan the built-in parse-path list
//! ./check_panic_free FILE ...   # scan an explicit list instead
//! ```
//!
//! The scan is line-based: comments are stripped (so prose like "never
//! panics" does not trip it), everything from the first `#[cfg(test)]`
//! line onward is ignored (the repo convention keeps test modules at the
//! end of the file), and the forbidden set is `.unwrap()`, `.expect(`,
//! `panic!(`, `unreachable!(`, `todo!(`, and `unimplemented!(`. If a
//! parse-path file ever needs a genuinely unreachable panic, rewrite it
//! as a typed error instead — that is the point of the gate.

use std::process::ExitCode;

/// Files reachable from the untrusted ingestion paths: the liblite
/// lexer/parser, the Verilog reader, the writer it round-trips with, the
/// builder both parsers reconstruct through, and the serve wire protocol
/// (request parsing for every verb — including the `predict_delta` edit
/// specs and `sweep` item lists — plus error salvage, all fed raw client
/// bytes).
const PARSE_PATHS: [&str; 6] = [
    "crates/liberty/src/error.rs",
    "crates/liberty/src/format.rs",
    "crates/netlist/src/builder.rs",
    "crates/netlist/src/reader.rs",
    "crates/netlist/src/verilog.rs",
    "crates/serve/src/protocol.rs",
];

const FORBIDDEN: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Drop `//` comments, respecting string literals well enough for this
/// codebase (no raw strings containing `//` on the parse paths).
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1, // skip the escaped byte
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

fn scan(path: &str, text: &str) -> Vec<String> {
    let mut hits = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        if raw.trim_start().starts_with("#[cfg(test)]") {
            break; // test modules sit at the end of the file
        }
        let line = strip_comment(raw);
        for pat in FORBIDDEN {
            if line.contains(pat) {
                hits.push(format!("{path}:{}: `{pat}` — {}", i + 1, raw.trim()));
            }
        }
    }
    hits
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let files: Vec<String> = if args.is_empty() {
        PARSE_PATHS.iter().map(|s| (*s).to_owned()).collect()
    } else {
        args
    };

    let mut hits = Vec::new();
    for path in &files {
        match std::fs::read_to_string(path) {
            Ok(text) => hits.extend(scan(path, &text)),
            Err(e) => {
                // A moved/renamed parse-path file must update this list,
                // not silently drop out of the gate.
                eprintln!("check_panic_free: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if hits.is_empty() {
        println!(
            "check_panic_free: {} file(s) clean of panicking constructs",
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "check_panic_free: {} panicking construct(s) on the untrusted parse paths \
             (return a typed ParseLibError/NetlistParseError instead):",
            hits.len()
        );
        for hit in &hits {
            eprintln!("  {hit}");
        }
        ExitCode::FAILURE
    }
}
