//! CI perf-regression gates over the committed bench baselines.
//!
//! Deliberately dependency-free (compiled with bare `rustc` in CI, no
//! cargo/registry), so the JSON "parsing" is a targeted scan for numbers
//! inside named objects.
//!
//! ```text
//! rustc -O scripts/check_bench.rs -o check_bench
//! # serve gate: warm (cache-hit) p50 must not regress past MAX_RATIO,
//! # the fresh quota-storm scenario must keep the victim model's p50
//! # within 3x of its idle p50, and the fresh edit-loop scenario must
//! # show predict_delta at least 2x faster at p50 than a full recompute
//! ./check_bench BENCH_serve.json BENCH_serve.ci.json 2.0
//! # embed gate: batched embed throughput must not regress past
//! # MAX_RATIO; the fresh batched-vs-per-cycle speedup must stay above
//! # a floor; when the fresh run dispatched a SIMD kernel, its in-run
//! # SIMD-over-scalar speedup must clear SIMD_SPEEDUP_FLOOR; and the
//! # f32 path's accuracy delta must stay within its tolerance
//! ./check_bench --infer BENCH_infer.json BENCH_infer.ci.json 2.0
//! # shard gate: two shards behind the proxy must clear the scale-out
//! # floor over one, a shard restarted from its cache snapshot must not
//! # recompute anything, and its restored warm p50 must stay within 2x
//! # of the steady warm p50 (all measured inside the fresh run)
//! ./check_bench --shard BENCH_serve.json BENCH_serve.ci.json 2.0
//! ```
//!
//! Exits non-zero on a regression beyond the allowed factor, and on
//! malformed reports, so a bench that silently stopped emitting a
//! scenario cannot pass.
//!
//! # Baseline-refresh rule
//!
//! The committed `BENCH_*.json` baselines are **machine-class
//! artifacts**: refresh them (re-run the bench on a release build and
//! commit the new file) whenever a change intentionally moves
//! performance, and note the machine's `isa`/`kernel` fields when
//! comparing across runners — a baseline recorded on an AVX2 machine is
//! not a fair throughput bar for a scalar-only runner, which is why the
//! cross-run gates are loose ratios while the strict floors
//! (`speedup`, `simd_speedup`, `f32_max_rel_delta`) compare numbers
//! measured *inside one fresh run*. Never "fix" a gate failure by
//! refreshing the baseline without understanding the regression; the
//! refresh is for deliberate perf changes, not drift.

use std::process::ExitCode;

/// Minimum batched-over-per-cycle speedup a fresh `infer_bench` report
/// must show at its gate scale. The committed baseline demonstrates
/// >2x on the reference machine; CI runners vary, so the floor only
/// guards against the batched path losing its advantage outright.
const INFER_SPEEDUP_FLOOR: f64 = 1.2;

/// Minimum SIMD-over-forced-scalar embed speedup a fresh `infer_bench`
/// report must show at its gate scale — but only when the fresh run
/// actually dispatched a SIMD kernel (`gate.simd_active` ≥ 1). Both
/// arms run inside the same process on the same machine, so the ratio
/// is runner-class independent; a scalar-only runner skips the gate
/// (its dispatch *is* the scalar kernel — nothing to compare).
const SIMD_SPEEDUP_FLOOR: f64 = 1.5;

/// Minimum aggregate-throughput scale-out a fresh `serve_bench` report
/// must show for two shard processes over one, both serving the same
/// cache-thrashing working set through the consistent-hash proxy inside
/// one run — runner-class independent, like the other in-run ratios.
const SHARD_SCALEOUT_FLOOR: f64 = 1.6;

/// Maximum warm-p50 inflation a shard restarted from its cache snapshot
/// may show over the steady warm p50 measured just before it drained.
/// A restore that silently failed would answer cold (tens of ms vs
/// single-digit), blowing far past this.
const SHARD_RESTORE_MAX_RATIO: f64 = 2.0;

/// Minimum `full p50 / delta p50` speedup the edit-loop scenario must
/// show for a 1-sub-module edit: `predict_delta` reusing the base
/// trace's clean (sub-module × cycle) items must answer at least this
/// much faster at p50 than a cold full `predict` of the same revision.
/// Both arms are measured inside the fresh run (same machine, same
/// process), so the ratio is runner-class independent. Mirrored by
/// `DELTA_SPEEDUP_FLOOR` in `crates/serve/src/bin/serve_bench.rs`.
const DELTA_SPEEDUP_FLOOR: f64 = 2.0;

/// Maximum victim-model p50 inflation the quota-storm scenario may show:
/// while one model's cold storm saturates its quota, another model's
/// warm p50 must stay within this factor of its no-storm p50. Both
/// numbers come from the *fresh* report (same machine, same run), so the
/// ratio is runner-class independent.
const QUOTA_STORM_MAX_RATIO: f64 = 3.0;

/// Extract `field` from inside the top-level `object` of a serde-style
/// pretty-printed JSON report.
fn extract(json: &str, object: &str, field: &str) -> Result<f64, String> {
    let obj_key = format!("\"{object}\"");
    let start = json
        .find(&obj_key)
        .ok_or_else(|| format!("no `{object}` object in report"))?;
    let body = &json[start..];
    let open = body
        .find('{')
        .ok_or_else(|| format!("`{object}` is not an object"))?;
    // Scope the field search to this object (up to its closing brace).
    let mut depth = 0usize;
    let mut end = body.len();
    for (i, c) in body[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = open + i;
                    break;
                }
            }
            _ => {}
        }
    }
    let scope = &body[open..end];
    let field_key = format!("\"{field}\"");
    let at = scope
        .find(&field_key)
        .ok_or_else(|| format!("no `{field}` in `{object}`"))?;
    let after = &scope[at + field_key.len()..];
    let colon = after
        .find(':')
        .ok_or_else(|| format!("malformed `{field}`"))?;
    let rest = after[colon + 1..].trim_start();
    let number: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    number
        .parse()
        .map_err(|e| format!("bad `{object}.{field}` number `{number}`: {e}"))
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let mut first = args
        .next()
        .ok_or("usage: check_bench [--infer|--shard] BASELINE.json NEW.json [MAX_RATIO]")?;
    let infer_mode = first == "--infer";
    let shard_mode = first == "--shard";
    if infer_mode || shard_mode {
        first = args
            .next()
            .ok_or_else(|| format!("{} requires BASELINE.json", if infer_mode { "--infer" } else { "--shard" }))?;
    }
    let baseline_path = first;
    let new_path = args
        .next()
        .ok_or("usage: check_bench [--infer|--shard] BASELINE.json NEW.json [MAX_RATIO]")?;
    let max_ratio: f64 = match args.next() {
        Some(r) => r.parse().map_err(|e| format!("bad MAX_RATIO: {e}"))?,
        None => 2.0,
    };
    let baseline = std::fs::read_to_string(&baseline_path)
        .map_err(|e| format!("read {baseline_path}: {e}"))?;
    let fresh =
        std::fs::read_to_string(&new_path).map_err(|e| format!("read {new_path}: {e}"))?;

    if infer_mode {
        // Embed gate: fresh batched throughput may not fall more than
        // max_ratio below the committed baseline, and the fresh in-run
        // speedup over the per-cycle path must stay above the floor.
        let base_cps = extract(&baseline, "gate", "batched_cycles_per_s")?;
        let new_cps = extract(&fresh, "gate", "batched_cycles_per_s")?;
        let speedup = extract(&fresh, "gate", "speedup")?;
        if !(base_cps > 0.0) {
            return Err(format!("baseline embed throughput not positive: {base_cps}"));
        }
        let ratio = base_cps / new_cps.max(1e-9);
        println!(
            "embed throughput: baseline {base_cps:.1} cyc/s, new {new_cps:.1} cyc/s \
             ({ratio:.2}x slower, limit {max_ratio:.2}x); fresh speedup {speedup:.2}x \
             (floor {INFER_SPEEDUP_FLOOR:.2}x)"
        );
        if ratio > max_ratio {
            return Err(format!(
                "batched embed throughput regressed {ratio:.2}x (> {max_ratio:.2}x allowed)"
            ));
        }
        if speedup < INFER_SPEEDUP_FLOOR {
            return Err(format!(
                "batched-over-per-cycle speedup fell to {speedup:.2}x \
                 (< {INFER_SPEEDUP_FLOOR:.2}x floor)"
            ));
        }

        // SIMD gate: when the fresh run dispatched a SIMD kernel, its
        // in-run SIMD-over-scalar speedup (both arms measured in the
        // same process) must clear the floor. Scalar-only runners have
        // nothing to compare and skip it.
        let simd_active = extract(&fresh, "gate", "simd_active")?;
        let simd_speedup = extract(&fresh, "gate", "simd_speedup")?;
        if simd_active >= 1.0 {
            println!(
                "simd embed speedup over forced scalar: {simd_speedup:.2}x \
                 (floor {SIMD_SPEEDUP_FLOOR:.2}x)"
            );
            if simd_speedup < SIMD_SPEEDUP_FLOOR {
                return Err(format!(
                    "simd-over-scalar embed speedup fell to {simd_speedup:.2}x \
                     (< {SIMD_SPEEDUP_FLOOR:.2}x floor)"
                ));
            }
        } else {
            println!(
                "simd kernel not dispatched on this runner (scalar only) — \
                 skipping the {SIMD_SPEEDUP_FLOOR:.2}x simd gate"
            );
        }

        // f32 accuracy gate: the reduced-precision path's worst relative
        // delta against the f64 reference must stay within the tolerance
        // the report itself declares (shared with the nn proptests).
        let f32_delta = extract(&fresh, "gate", "f32_max_rel_delta")?;
        let f32_tolerance = extract(&fresh, "gate", "f32_tolerance")?;
        println!(
            "f32 embed accuracy: max rel delta {f32_delta:.2e} \
             (tolerance {f32_tolerance:.2e})"
        );
        if !(f32_tolerance > 0.0) {
            return Err(format!("f32 tolerance not positive: {f32_tolerance}"));
        }
        if f32_delta > f32_tolerance {
            return Err(format!(
                "f32 embed accuracy delta {f32_delta:.2e} exceeded its \
                 tolerance {f32_tolerance:.2e}"
            ));
        }
        return Ok(());
    }

    if shard_mode {
        // Cross-run gate: fresh dual-shard aggregate throughput may not
        // fall more than max_ratio below the committed baseline's.
        let base_rps = extract(&baseline, "dual_shard", "throughput_rps")?;
        let new_rps = extract(&fresh, "dual_shard", "throughput_rps")?;
        if !(base_rps > 0.0) {
            return Err(format!(
                "baseline dual-shard throughput not positive: {base_rps}"
            ));
        }
        let ratio = base_rps / new_rps.max(1e-9);
        println!(
            "dual-shard throughput: baseline {base_rps:.1} req/s, new {new_rps:.1} req/s \
             ({ratio:.2}x slower, limit {max_ratio:.2}x)"
        );
        if ratio > max_ratio {
            return Err(format!(
                "dual-shard throughput regressed {ratio:.2}x (> {max_ratio:.2}x allowed)"
            ));
        }

        // In-run gates, all runner-class independent.
        let scaleout = extract(&fresh, "shard_scaleout", "scaleout")?;
        println!("shard scale-out at 2 shards: {scaleout:.2}x (floor {SHARD_SCALEOUT_FLOOR:.2}x)");
        if scaleout < SHARD_SCALEOUT_FLOOR {
            return Err(format!(
                "two shards scaled throughput only {scaleout:.2}x over one \
                 (< {SHARD_SCALEOUT_FLOOR:.2}x floor)"
            ));
        }
        let recomputed = extract(&fresh, "shard_scaleout", "restored_embeddings_computed")?;
        if recomputed != 0.0 {
            return Err(format!(
                "a shard restarted from its snapshot recomputed {recomputed} embeddings \
                 (must be 0)"
            ));
        }
        let steady_p50 = extract(&fresh, "shard_scaleout", "steady_warm_p50_ms")?;
        let restored_p50 = extract(&fresh, "shard_scaleout", "restored_warm_p50_ms")?;
        if !(steady_p50 > 0.0) {
            return Err(format!("steady warm p50 is not positive: {steady_p50}"));
        }
        let restore_ratio = restored_p50 / steady_p50;
        println!(
            "snapshot-restored warm p50: steady {steady_p50:.3} ms, restored {restored_p50:.3} ms \
             ({restore_ratio:.2}x, limit {SHARD_RESTORE_MAX_RATIO:.2}x)"
        );
        if restore_ratio > SHARD_RESTORE_MAX_RATIO {
            return Err(format!(
                "restored warm p50 inflated {restore_ratio:.2}x over steady \
                 (> {SHARD_RESTORE_MAX_RATIO:.2}x allowed)"
            ));
        }
        return Ok(());
    }

    let base_p50 = extract(&baseline, "warm", "p50_ms")?;
    let new_p50 = extract(&fresh, "warm", "p50_ms")?;
    if !(base_p50 > 0.0) {
        return Err(format!("baseline warm p50 is not positive: {base_p50}"));
    }
    let ratio = new_p50 / base_p50;
    println!(
        "warm (cache-hit) p50: baseline {base_p50:.3} ms, new {new_p50:.3} ms \
         ({ratio:.2}x, limit {max_ratio:.2}x)"
    );
    if ratio > max_ratio {
        return Err(format!(
            "cache-hit p50 regressed {ratio:.2}x (> {max_ratio:.2}x allowed)"
        ));
    }

    // Quota-storm gate: the victim model's p50 while another model's
    // cold storm saturates its quota must stay within the allowed factor
    // of its idle p50 — both measured inside the fresh run. A report
    // missing the scenario fails, so the bench cannot silently stop
    // emitting it.
    let idle_p50 = extract(&fresh, "quota_storm", "victim_idle_p50_ms")?;
    let storm_p50 = extract(&fresh, "quota_storm", "victim_storm_p50_ms")?;
    if !(idle_p50 > 0.0) {
        return Err(format!("quota-storm idle p50 is not positive: {idle_p50}"));
    }
    let storm_ratio = storm_p50 / idle_p50;
    println!(
        "quota-storm victim p50: idle {idle_p50:.3} ms, under storm {storm_p50:.3} ms \
         ({storm_ratio:.2}x, limit {QUOTA_STORM_MAX_RATIO:.2}x)"
    );
    if storm_ratio > QUOTA_STORM_MAX_RATIO {
        return Err(format!(
            "victim p50 under a quota storm inflated {storm_ratio:.2}x \
             (> {QUOTA_STORM_MAX_RATIO:.2}x allowed)"
        ));
    }

    // Edit-loop gate: `predict_delta` on a 1-sub-module edit must beat a
    // cold full recompute of the same revision by the floor, and must
    // actually have reused base items (a delta that silently recomputed
    // everything could still "win" on noise alone). In-run numbers, so
    // runner-class independent; a report missing the scenario fails.
    let delta_speedup = extract(&fresh, "edit_loop", "delta_speedup")?;
    let reused_cycles = extract(&fresh, "edit_loop", "reused_cycles")?;
    println!(
        "edit-loop delta speedup over full recompute: {delta_speedup:.2}x \
         (floor {DELTA_SPEEDUP_FLOOR:.2}x), {reused_cycles} cycle-items reused"
    );
    if reused_cycles < 1.0 {
        return Err("edit-loop deltas reused no base items — the cache reuse path is dead".into());
    }
    if delta_speedup < DELTA_SPEEDUP_FLOOR {
        return Err(format!(
            "edit-loop delta p50 was only {delta_speedup:.2}x faster than a full \
             recompute (< {DELTA_SPEEDUP_FLOOR:.2}x floor)"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("check_bench: {msg}");
            ExitCode::FAILURE
        }
    }
}
