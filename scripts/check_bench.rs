//! CI perf-regression gate: compare the warm (cache-hit) p50 latency of
//! a fresh `serve_bench` report against the committed baseline.
//!
//! Deliberately dependency-free (compiled with bare `rustc` in CI, no
//! cargo/registry), so the JSON "parsing" is a targeted scan for the
//! `p50_ms` number inside the `"warm"` object.
//!
//! ```text
//! rustc -O scripts/check_bench.rs -o check_bench
//! ./check_bench BENCH_serve.json BENCH_serve.ci.json 2.0
//! ```
//!
//! Exits non-zero when `new_p50 > baseline_p50 * max_ratio` — i.e. the
//! cache-hit path regressed by more than the allowed factor. Also fails
//! on malformed reports, so a bench that silently stopped emitting the
//! scenario cannot pass.

use std::process::ExitCode;

/// Extract `field` from inside the top-level `object` of a serde-style
/// pretty-printed JSON report.
fn extract(json: &str, object: &str, field: &str) -> Result<f64, String> {
    let obj_key = format!("\"{object}\"");
    let start = json
        .find(&obj_key)
        .ok_or_else(|| format!("no `{object}` object in report"))?;
    let body = &json[start..];
    let open = body
        .find('{')
        .ok_or_else(|| format!("`{object}` is not an object"))?;
    // Scope the field search to this object (up to its closing brace).
    let mut depth = 0usize;
    let mut end = body.len();
    for (i, c) in body[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = open + i;
                    break;
                }
            }
            _ => {}
        }
    }
    let scope = &body[open..end];
    let field_key = format!("\"{field}\"");
    let at = scope
        .find(&field_key)
        .ok_or_else(|| format!("no `{field}` in `{object}`"))?;
    let after = &scope[at + field_key.len()..];
    let colon = after
        .find(':')
        .ok_or_else(|| format!("malformed `{field}`"))?;
    let rest = after[colon + 1..].trim_start();
    let number: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    number
        .parse()
        .map_err(|e| format!("bad `{object}.{field}` number `{number}`: {e}"))
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let (Some(baseline_path), Some(new_path)) = (args.next(), args.next()) else {
        return Err("usage: check_bench BASELINE.json NEW.json [MAX_RATIO]".into());
    };
    let max_ratio: f64 = match args.next() {
        Some(r) => r.parse().map_err(|e| format!("bad MAX_RATIO: {e}"))?,
        None => 2.0,
    };
    let baseline = std::fs::read_to_string(&baseline_path)
        .map_err(|e| format!("read {baseline_path}: {e}"))?;
    let fresh =
        std::fs::read_to_string(&new_path).map_err(|e| format!("read {new_path}: {e}"))?;

    let base_p50 = extract(&baseline, "warm", "p50_ms")?;
    let new_p50 = extract(&fresh, "warm", "p50_ms")?;
    if !(base_p50 > 0.0) {
        return Err(format!("baseline warm p50 is not positive: {base_p50}"));
    }
    let ratio = new_p50 / base_p50;
    println!(
        "warm (cache-hit) p50: baseline {base_p50:.3} ms, new {new_p50:.3} ms \
         ({ratio:.2}x, limit {max_ratio:.2}x)"
    );
    if ratio > max_ratio {
        return Err(format!(
            "cache-hit p50 regressed {ratio:.2}x (> {max_ratio:.2}x allowed)"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("check_bench: {msg}");
            ExitCode::FAILURE
        }
    }
}
